"""Cyclic data: fare-class matching over a flight network.

A travel aggregator matches *outbound* itineraries with *return*
itineraries of the same number of legs (so the fare classes line up).
The outbound network contains hub loops — Algorithm 2's territory:

* ``hop(X, X1)``   — outbound legs (cyclic: hub shuttles loop);
* ``turn(X, Y)``   — an airport where the trip can turn around;
* ``back(Y1, Y)``  — return legs.

The query ``trip(nyc, Y)`` asks which airports can end a balanced
round trip starting in NYC.  The classical counting method diverges on
the hub loop; the magic-set method works but re-joins the whole magic
set each round; Algorithm 2 terminates and wins on work.

Run with::

    python examples/cyclic_flights.py
"""

from repro import Database, optimize, parse_query
from repro.bench import matrix_table, run_matrix
from repro.exec.counting_engine import CountingEngine
from repro.rewriting.adornment import adorn_query
from repro.rewriting.canonical import canonicalize_clique, query_constants
from repro.rewriting.support import goal_clique_of

QUERY = parse_query("""
    trip(X, Y) :- turn(X, Y).
    trip(X, Y) :- hop(X, X1), trip(X1, Y1), back(Y1, Y).
    ?- trip(nyc, Y).
""")

NETWORK = """
    % outbound legs; chi <-> den is a hub shuttle loop
    hop(nyc, chi).  hop(chi, den).  hop(den, chi).
    hop(chi, sfo).  hop(den, sea).

    % turnaround airports: start the return at the paired city
    turn(sfo, oak). turn(sea, pdx).

    % return legs (a long corridor back east)
    back(oak, slc).  back(pdx, slc).
    back(slc, msp).  back(msp, det).
    back(det, pit).  back(pit, phl).
    back(phl, bos).  back(bos, jfk).
"""


def main():
    db = Database.from_text(NETWORK)

    plan = optimize(QUERY, db)
    print("optimizer chose:", plan.explain())
    result = plan.execute(db)
    print("balanced round-trip endpoints from nyc:",
          sorted(v for (v,) in result.answers))
    print("counting rows: %d (back arcs folded in: %d)" % (
        result.extras["counting_rows"], result.extras["back_arcs"]))
    print()

    # The counting set in the paper's own notation (Example 5 style),
    # plus the unwinding behind one answer.
    adorned = adorn_query(QUERY)
    clique, _support = goal_clique_of(adorned)
    engine = CountingEngine(
        canonicalize_clique(clique, adorned),
        adorned.goal.key,
        query_constants(adorned.goal),
        db.get,
    )
    engine.run()
    print("counting set (back arcs included):")
    print(engine.table.render())
    print()
    answer = sorted(result.answers)[0]
    print("how %s is reached:" % answer[0])
    for label, node, values in engine.answer_path(answer):
        print("  [%s] at %s -> %s" % (label, node[0], values[0]))
    print()

    rows = run_matrix(
        QUERY, db,
        ["naive", "magic", "classical_counting", "cyclic_counting"],
        label="flights",
    )
    print(matrix_table(
        rows,
        title="cyclic flight network: classical counting diverges, "
              "Algorithm 2 terminates",
    ))


if __name__ == "__main__":
    main()
