"""Mutually recursive predicates: academic lineage with role parity.

``advised(A, S)`` says A advised S.  Two researchers are *peers* when
they sit at the same depth of the lineage tree below a common point —
but the lineage alternates between two communities (theory/systems),
and the peer relation tracks which community the walk is in:

    peer_t(X, Y)  — X (theory) and Y same generation
    peer_s(X, Y)  — X (systems) and Y same generation

Each step up on the left side switches community, and the walk back
down must switch in the same order — a two-predicate recursive clique,
which the classical counting method cannot handle (§3.1's "more than
one mutually recursive predicate") but the extended method does: the
counting predicates c_peer_t/c_peer_s track which predicate the
binding passed through.

Run with::

    python examples/academic_lineage.py
"""

from repro import Database, optimize, parse_query
from repro.bench import matrix_table, run_matrix
from repro.datalog import format_query
from repro.rewriting import extended_counting_rewrite

QUERY = parse_query("""
    peer_t(X, Y) :- together(X, Y).
    peer_t(X, Y) :- advised_t(X, X1), peer_s(X1, Y1), mirror_s(Y1, Y).
    peer_s(X, Y) :- advised_s(X, X1), peer_t(X1, Y1), mirror_t(Y1, Y).
    ?- peer_t(ada, Y).
""")

FACTS = """
    % left side: walks up the advising chain, alternating communities
    advised_t(ada, bob).   advised_s(bob, cyd).
    advised_t(cyd, dan).   advised_s(dan, eve).

    % base case: researchers who co-authored their first paper
    together(ada, amy).    together(cyd, kim).  together(eve, lou).

    % right side: the mirrored walk back down must alternate in the
    % same order the left side did (r2 then r1, twice for eve)
    mirror_t(kim, pam).    mirror_s(pam, quin).
    mirror_t(lou, raj).    mirror_s(raj, sam).
    mirror_t(sam, tia).    mirror_s(tia, uma).
"""


def main():
    db = Database.from_text(FACTS)

    rewriting = extended_counting_rewrite(QUERY)
    print("counting predicates, one per mutually recursive predicate:")
    for key, (name, _arity) in sorted(rewriting.counting_preds.items()):
        print("  %s -> %s" % (key[0], name))
    print()
    print(format_query(rewriting.query, show_labels=True))
    print()

    plan = optimize(QUERY, db)
    print("optimizer chose:", plan.explain())
    result = plan.execute(db)
    print("peers of ada:", sorted(v for (v,) in result.answers))
    print()

    rows = run_matrix(
        QUERY, db,
        ["naive", "magic", "classical_counting", "pointer_counting"],
        label="lineage",
    )
    print(matrix_table(
        rows,
        title="two mutually recursive predicates: classical counting "
              "inapplicable, extended counting wins",
    ))


if __name__ == "__main__":
    main()
