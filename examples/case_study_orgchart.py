"""Case study: peer discovery in a large organization chart.

An HR system stores reporting edges for several subsidiaries and wants
"grade peers": employees the same number of reporting levels below
founders who started together.  This is the same-generation query at a
scale where method choice is visible — thousands of facts, one
subsidiary relevant to the query, the others dead weight for any
unfocused evaluation.

The script walks the full production flow:

1. generate the organization (deterministic, seeded);
2. validate the query (`validate_query` — safety, applicability);
3. let the optimizer pick a method and run it;
4. compare against the whole strategy matrix;
5. explain one answer with a derivation trace.

Run with::

    python examples/case_study_orgchart.py [subsidiaries]
"""

import random
import sys
import time

from repro import Database, optimize, parse_query
from repro.bench import matrix_table, run_matrix
from repro.datalog.validation import validate_query
from repro.engine import DerivationTrace, SemiNaiveEngine

QUERY = parse_query("""
    peer(X, Y) :- together(X, Y).
    peer(X, Y) :- boss(X, X1), peer(X1, Y1), below(Y1, Y).
    ?- peer(emp_0_0, Y).
""")


def build_org(subsidiaries=4, depth=7, fanout=2, seed=2024):
    """Mirrored reporting trees per subsidiary, founders linked."""
    rng = random.Random(seed)
    db = Database()
    for s in range(subsidiaries):
        def name(side, i, s=s):
            return "%s_%d_%d" % (side, s, i)

        # Left tree: boss arcs walk from the query employee downward.
        level = [0]
        counter = 1
        for _d in range(depth):
            next_level = []
            for parent in level:
                for _ in range(fanout):
                    child = counter
                    counter += 1
                    db.add_fact("boss", name("emp", parent),
                                name("emp", child))
                    next_level.append(child)
            level = next_level
        # Right tree, inverted (below walks upward).
        mirror_counter = 1
        mirror_level = [0]
        for _d in range(depth):
            next_level = []
            for parent in mirror_level:
                for _ in range(fanout):
                    child = mirror_counter
                    mirror_counter += 1
                    db.add_fact("below", name("mir", child),
                                name("mir", parent))
                    next_level.append(child)
            mirror_level = next_level
        # Founders who started together: bottom level crossings.
        for emp_leaf, mir_leaf in zip(level, mirror_level):
            if rng.random() < 0.6:
                db.add_fact("together", name("emp", emp_leaf),
                            name("mir", mir_leaf))
    return db


def main():
    subsidiaries = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    started = time.perf_counter()
    db = build_org(subsidiaries=subsidiaries)
    print("generated %d facts in %.2fs"
          % (db.total_facts(), time.perf_counter() - started))

    print()
    print("--- validation report ---")
    print(validate_query(QUERY).render())

    print()
    plan = optimize(QUERY, db)
    print("optimizer chose:", plan.explain())
    result = plan.execute(db)
    print("%d peers found; work=%d, %.3fs"
          % (len(result.answers), result.stats.total_work,
             result.elapsed))

    print()
    rows = run_matrix(
        QUERY, db,
        ["naive", "magic", "qsq", "classical_counting",
         "pointer_counting"],
        label="%d subsidiaries" % subsidiaries,
    )
    print(matrix_table(rows, title="strategy matrix"))

    print()
    print("--- why is the first answer a peer? ---")
    trace = DerivationTrace()
    engine = SemiNaiveEngine(QUERY.program, db, trace=trace)
    engine.run()
    goal = QUERY.goal
    answer = sorted(result.answers)[0][0]
    print(trace.explain(goal.key, ("emp_0_0", answer)).render())


if __name__ == "__main__":
    main()
