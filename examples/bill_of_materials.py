"""Mixed-linear optimization on a bill-of-materials query.

A manufacturing database stores ``part_of(P, A)`` (part P goes into
assembly A — traversed top-down via its inverse ``contains``),
``made_of(A, M)`` (assembly A's base material) and ``refines(M, M1)``
(material refinement steps).  The query asks which materials a given
product can end up depending on::

    needs(X, M) :- made_of(X, M).          % exit
    needs(X, M) :- contains(X, P), needs(P, M).     % right-linear
    needs(X, M) :- needs(X, M1), refines(M1, M).    % left-linear

This is exactly the paper's Example 6 shape: one right-linear rule and
one left-linear rule.  Algorithm 3 deletes the path argument entirely
and the residual program is the factorized form of Naughton et al. —
shown below, then benchmarked against magic sets.

Run with::

    python examples/bill_of_materials.py
"""

from repro import (
    Database,
    extended_counting_rewrite,
    optimize,
    parse_query,
    reduce_rewriting,
)
from repro.bench import matrix_table, run_matrix
from repro.datalog import format_query

QUERY = parse_query("""
    needs(X, M) :- made_of(X, M).
    needs(X, M) :- contains(X, P), needs(P, M).
    needs(X, M) :- needs(X, M1), refines(M1, M).
    ?- needs(bike, M).
""")

FACTS = """
    contains(bike, frame).   contains(bike, wheel).
    contains(wheel, rim).    contains(wheel, spoke).
    contains(frame, tube).

    made_of(tube, steel).    made_of(rim, alu).
    made_of(spoke, steel).   made_of(frame, carbon).

    refines(steel, alloy).   refines(alloy, chromoly).
    refines(alu, alu6061).

    % a second product line, irrelevant to the query
    contains(car, engine).   contains(engine, piston).
    made_of(piston, alu).    made_of(car, steel).
"""


def main():
    db = Database.from_text(FACTS)

    rewriting = extended_counting_rewrite(QUERY)
    reduced = reduce_rewriting(rewriting)
    print("reduced program (path argument deleted: %s/%s):"
          % (reduced.path_deleted_counting, reduced.path_deleted_answer))
    print(format_query(reduced.query))
    print()

    plan = optimize(QUERY, db)
    print("optimizer chose:", plan.explain())
    result = plan.execute(db)
    print("bike depends on:", sorted(v for (v,) in result.answers))
    print()

    rows = run_matrix(
        QUERY, db,
        ["naive", "magic", "reduced_counting", "cyclic_counting"],
        label="bom",
    )
    print(matrix_table(rows, title="bill of materials (mixed-linear)"))


if __name__ == "__main__":
    main()
