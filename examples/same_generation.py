"""Walkthrough of every rewriting on the same-generation query.

Reproduces, programmatically, the sequence of programs printed in
Section 1 of the paper: the magic-set program, the classical counting
program, and the extended counting program — then runs them all on a
mirrored-tree database and compares the work each performs.

Run with::

    python examples/same_generation.py [depth]
"""

import sys

from repro import (
    classical_counting_rewrite,
    extended_counting_rewrite,
    magic_rewrite,
    parse_query,
)
from repro.bench import matrix_table, run_matrix
from repro.datalog import format_query
from repro.data.workloads import WORKLOADS

QUERY = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")


def show(title, text):
    print("=" * 64)
    print(title)
    print("=" * 64)
    print(text)
    print()


def main():
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 6

    show("original query", format_query(QUERY))
    show(
        "magic-set rewriting (Section 1)",
        format_query(magic_rewrite(QUERY).query),
    )
    show(
        "classical counting rewriting (Example 1)",
        format_query(classical_counting_rewrite(QUERY).query),
    )
    show(
        "extended counting rewriting (Algorithm 1)",
        format_query(extended_counting_rewrite(QUERY).query,
                     show_labels=True),
    )

    workload = WORKLOADS["sg_tree"]
    db, _source = workload.make_db(fanout=2, depth=depth)
    rows = run_matrix(
        QUERY,
        db,
        ["naive", "magic", "classical_counting", "extended_counting",
         "pointer_counting"],
        label="depth=%d" % depth,
    )
    print(matrix_table(
        rows,
        title="same generation over mirrored binary trees "
              "(depth %d, %d facts)" % (depth, db.total_facts()),
    ))


if __name__ == "__main__":
    main()
