"""Quickstart: parse a query, let the optimizer pick a method, run it.

Run with::

    python examples/quickstart.py
"""

from repro import Database, optimize, parse_query

# The paper's flagship example: the same-generation program, asking for
# everything in a's generation (Example 1).
query = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")

db = Database.from_text("""
    up(a, b).    up(b, c).
    flat(c, c1). flat(b, b1).
    down(c1, d1). down(d1, e1). down(b1, f1).
""")


def main():
    # `optimize` inspects the program (linearity, left/right-linear
    # shapes) and, given a database, the data (cyclic or not), then
    # picks the strongest applicable counting variant — falling back to
    # magic sets when counting does not apply.
    plan = optimize(query, db)
    print("chosen method :", plan.method)
    print("why           :", plan.reason)

    result = plan.execute(db)
    print("answers       :", sorted(v for (v,) in result.answers))
    print("join work     :", result.stats.total_work)
    print("wall time     : %.4fs" % result.elapsed)

    # Any method can be forced for comparison:
    for method in ("naive", "magic", "classical_counting"):
        forced = optimize(query, method=method).execute(db)
        print("%-20s work=%-5d answers=%d"
              % (method, forced.stats.total_work, len(forced.answers)))


if __name__ == "__main__":
    main()
