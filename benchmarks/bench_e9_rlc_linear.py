"""E9 — §5 / Fact 1: pure right-linear and pure left-linear programs.

Fact 1's corollaries: a right-linear program reduces to the counting
clique plus the modified exit rules (reachability-style evaluation,
matching Naughton et al.'s optimized form); a left-linear program
reduces to the modified clique with the binding pushed into the exit
rule through the counting seed.

Shape asserted: both reductions leave three-rule programs, the reduced
programs beat magic at every size, and answers match naive
(cross-checked by run_matrix).
"""

import pytest

from conftest import register_table
from _common import assert_claims, make_timer, work_of

from repro import extended_counting_rewrite, reduce_rewriting
from repro.bench import matrix_table, run_matrix
from repro.data.workloads import WORKLOADS

METHODS = ["naive", "magic", "reduced_counting"]
DEPTHS = [16, 32, 64]


@pytest.fixture(scope="module")
def rows():
    collected = []
    for name in ("right_linear", "left_linear"):
        workload = WORKLOADS[name]
        for depth in DEPTHS:
            db, _source = workload.make_db(depth=depth)
            collected.extend(
                run_matrix(workload.query, db, METHODS,
                           label="%s n=%d" % (name, depth))
            )
    register_table(
        "e9_rlc_linear",
        matrix_table(
            collected,
            title="E9: pure right-linear and left-linear programs "
                  "(Fact 1 corollaries)",
        ),
    )
    return collected


@pytest.mark.parametrize("name", ["right_linear", "left_linear"])
@pytest.mark.parametrize("method", METHODS)
def test_e9_time_n32(benchmark, name, method, rows):
    workload = WORKLOADS[name]
    db, _source = workload.make_db(depth=32)
    benchmark(make_timer(workload.query, db, method))


def test_e9_reduced_programs_are_minimal(rows, benchmark):
    def check():
        for name in ("right_linear", "left_linear"):
            workload = WORKLOADS[name]
            reduced = reduce_rewriting(
                extended_counting_rewrite(workload.query)
            )
            assert reduced.path_deleted_counting
            assert reduced.path_deleted_answer
            assert len(reduced.query.program) == 3, name

    assert_claims(benchmark, check)


def test_e9_reduced_beats_magic(rows, benchmark):
    def check():
        for name in ("right_linear", "left_linear"):
            for depth in DEPTHS:
                label = "%s n=%d" % (name, depth)
                assert work_of(rows, label, "reduced_counting") \
                    < work_of(rows, label, "magic"), label

    assert_claims(benchmark, check)
