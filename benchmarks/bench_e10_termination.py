"""E10 — Theorem 2(3): Algorithm 2's fixpoint terminates, with a
predictable state budget, on arbitrary cyclic data.

The answer phase of the cyclic counting evaluator ranges over
(answer value, counting row) states, so its state count is bounded by
|answer-side nodes| x |counting rows| no matter how tangled the cycles
are.

Workload: same generation whose up relation is a random cyclic graph
of growing size, plus a fixed down corridor.

Shape asserted: every run terminates; measured answer states never
exceed the bound; counting rows equal the reachable node count
(finite despite cycles); work grows polynomially (doubling n less than
~8x work).
"""

import pytest

from conftest import register_table
from _common import assert_claims, extras_of, make_timer, work_of

from repro import parse_query
from repro.bench import matrix_table, run_matrix
from repro.data.generators import node_name, random_graph
from repro.engine.database import Database

QUERY = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")

METHODS = ["magic", "cyclic_counting"]
SIZES = [8, 16, 32]
DOWN_LENGTH = 40


def make_db(n):
    db = Database()
    for _pred, (x, y) in random_graph(n, 3 * n, seed=99, prefix="g"):
        db.add_fact("up", x, y)
    db.add_fact("up", "a", node_name("g", 0))
    db.add_fact("flat", node_name("g", 0), node_name("w", 0))
    for i in range(DOWN_LENGTH):
        db.add_fact("down", node_name("w", i), node_name("w", i + 1))
    return db


@pytest.fixture(scope="module")
def rows():
    collected = []
    for n in SIZES:
        collected.extend(
            run_matrix(QUERY, make_db(n), METHODS, label="n=%d" % n)
        )
    register_table(
        "e10_termination",
        matrix_table(
            collected,
            title="E10: Algorithm 2 on random cyclic up graphs "
                  "(3n arcs, down corridor of %d)" % DOWN_LENGTH,
            extra_columns=("counting_rows", "counting_triples",
                           "back_arcs", "answer_states"),
        ),
    )
    return collected


@pytest.mark.parametrize("method", METHODS)
def test_e10_time_n16(benchmark, method, rows):
    benchmark(make_timer(QUERY, make_db(16), method))


def test_e10_always_terminates_with_cycles(rows, benchmark):
    def check():
        for n in SIZES:
            extras = extras_of(rows, "n=%d" % n, "cyclic_counting")
            assert extras["back_arcs"] > 0  # genuinely cyclic input
            assert extras["counting_rows"] <= n + 1

    assert_claims(benchmark, check)


def test_e10_state_budget_respected(rows, benchmark):
    def check():
        answer_nodes = DOWN_LENGTH + 1
        for n in SIZES:
            extras = extras_of(rows, "n=%d" % n, "cyclic_counting")
            bound = answer_nodes * extras["counting_rows"]
            assert extras["answer_states"] <= bound

    assert_claims(benchmark, check)


def test_e10_polynomial_growth(rows, benchmark):
    def check():
        works = [work_of(rows, "n=%d" % n, "cyclic_counting")
                 for n in SIZES]
        assert works[1] <= 8 * works[0]
        assert works[2] <= 8 * works[1]

    assert_claims(benchmark, check)
