"""S8 — self-healing sharded fixpoint: crash repair vs serial restart.

Workload: the S1 cylinder evaluated by the ``parallel`` strategy with
4 workers while a :class:`~repro.engine.faults.FaultInjector` SIGKILLs
worker 1 at its second round barrier — the same drill the acceptance
suite runs, at benchmark size.

Three disturbed configurations are measured against the undisturbed
parallel oracle:

* **reassign** — the default :class:`~repro.parallel.supervisor.
  RecoveryPolicy`: the dead worker's shards are rehashed onto the three
  survivors and its checkpointed round portion re-routed; the run
  completes in parallel.
* **respawn** — a replacement is forked into the dead worker's slot
  and rebuilt from the retained spawn payload plus the replicate log.
* **serial restart** — ``RecoveryPolicy(mode="serial")`` under the
  resilient chain: the PR 9 baseline that abandons the parallel
  attempt and re-runs the query serially from scratch.

Claims asserted:

* every healed run completes *without* serial fallback, with answers
  and merged ``EvalStats`` byte-identical to the undisturbed oracle,
  and its recovery extras record exactly one crash and one repair;
* the serial-restart baseline really does degrade (the winning method
  is not ``parallel``) and re-does the rounds the parallel attempt had
  already completed;
* a straggling worker (repeating injected delay) is beaten by
  speculative re-execution — at least one speculative win, same
  answers and counters, zero repairs spent;
* (full size, >=4 cores only) crash-plus-reassign finishes faster
  than the crash-plus-serial-restart baseline — repairing in place
  beats throwing the parallel attempt away.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import gc
import os

import pytest

from conftest import register_table
from _common import assert_claims

from repro.data.workloads import WORKLOADS
from repro.engine.faults import FaultInjector
from repro.exec.resilient import PARALLEL_CHAIN, FallbackPolicy, \
    run_resilient
from repro.exec.strategies import run_strategy
from repro.parallel import RecoveryPolicy

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
WIDTH = 8 if SMOKE else 40
HEIGHT = 16 if SMOKE else 48
TRIALS = 2 if SMOKE else 3
WORKERS = 4
CRASH_WORKER = 1
CRASH_BARRIER = 2

try:
    CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    CORES = os.cpu_count() or 1

#: The repair-beats-restart wall-clock claim needs real parallelism.
MULTICORE = CORES >= 4

WORKLOAD = WORKLOADS["sg_cylinder"]


def make_db():
    db, _source = WORKLOAD.make_db(width=WIDTH, height=HEIGHT)
    return db


def _crash_injector():
    return FaultInjector(seed=0).crash_at_barrier(
        worker=CRASH_WORKER, barrier=CRASH_BARRIER
    )


def _healed_run(query, db, mode):
    with _crash_injector():
        return run_strategy(
            "parallel", query, db, workers=WORKERS,
            recovery=RecoveryPolicy(mode=mode),
        )


def _restart_run(query, db):
    with _crash_injector():
        return run_resilient(
            query, db,
            FallbackPolicy(chain=PARALLEL_CHAIN, workers=WORKERS,
                           recovery="serial"),
        )


@pytest.fixture(scope="module")
def measurements():
    """Best-of-``TRIALS`` disturbed runs against one undisturbed oracle.

    Equality of answers and merged counters is checked on *every*
    disturbed run, not just the fastest; the timing claim compares
    best against best so machine drift hits both sides equally.
    """
    db = make_db()
    query = WORKLOAD.query
    gc.collect()
    oracle = run_strategy("parallel", query, db, workers=WORKERS)
    sides = {}
    for _trial in range(TRIALS):
        for mode in ("reassign", "respawn"):
            gc.collect()
            healed = _healed_run(query, db, mode)
            assert healed.answers == oracle.answers, mode
            assert healed.stats.as_dict() == oracle.stats.as_dict(), mode
            best = sides.get(mode)
            if best is None or healed.elapsed < best.elapsed:
                sides[mode] = healed
        gc.collect()
        report = _restart_run(query, db)
        assert report.result.answers == oracle.answers
        best = sides.get("restart")
        if best is None or report.total_elapsed < best.total_elapsed:
            sides["restart"] = report
    gc.collect()
    with FaultInjector(seed=0).slow_worker(worker=1, seconds=0.2):
        straggled = run_strategy(
            "parallel", query, db, workers=WORKERS,
            recovery=RecoveryPolicy(straggler_multiple=2.0,
                                    straggler_min_seconds=0.05),
        )
    data = {
        "oracle": oracle,
        "sides": sides,
        "straggled": straggled,
        "db_facts": db.total_facts(),
    }
    register_table("s8_self_healing", _render_table(data))
    return data


def _render_table(data):
    oracle = data["oracle"]
    lines = [
        "S8: self-healing on the S1 cylinder (width %d, height %d, "
        "%d facts; %d core(s); kill worker %d at barrier %d of %d)"
        % (WIDTH, HEIGHT, data["db_facts"], CORES,
           CRASH_WORKER, CRASH_BARRIER, WORKERS),
        "undisturbed       : %.1f ms (%d answers, %d facts derived)"
        % (oracle.elapsed * 1e3, len(oracle.answers),
           oracle.stats.facts_derived),
    ]
    for mode in ("reassign", "respawn"):
        healed = data["sides"][mode]
        recovery = healed.extras["recovery"]
        lines.append(
            "crash + %-9s : %.1f ms, %d repair(s), %d round(s) "
            "replayed, recovery %.1f ms"
            % (mode, healed.elapsed * 1e3, recovery["repairs"],
               recovery["rounds_replayed"],
               recovery["recovery_seconds"] * 1e3)
        )
    report = data["sides"]["restart"]
    lines.append(
        "crash + restart   : %.1f ms total (%s after %d failed "
        "attempt(s), %d parallel round(s) thrown away)"
        % (report.total_elapsed * 1e3, report.method,
           report.fallback_depth, report.attempts[0].rounds)
    )
    recovery = data["straggled"].extras["recovery"]
    lines.append(
        "straggler         : %d speculative win(s), %d repair(s)"
        % (recovery["speculative_wins"], recovery["repairs"])
    )
    gates = []
    if SMOKE:
        gates.append("smoke size: timing claim off")
    if not MULTICORE:
        gates.append("<4 cores: timing claim off")
    if gates:
        lines.append("claims gated      : " + "; ".join(gates))
    return "\n".join(lines)


def test_s8_time_healed_reassign(benchmark, measurements):
    benchmark(lambda: _healed_run(WORKLOAD.query, make_db(),
                                  "reassign"))


def test_s8_time_serial_restart(benchmark, measurements):
    benchmark(lambda: _restart_run(WORKLOAD.query, make_db()))


def test_s8_healed_runs_match_the_oracle(measurements, benchmark):
    def check():
        oracle = measurements["oracle"]
        for mode in ("reassign", "respawn"):
            healed = measurements["sides"][mode]
            assert healed.answers == oracle.answers, mode
            assert healed.stats.as_dict() == oracle.stats.as_dict(), mode
            recovery = healed.extras["recovery"]
            assert recovery["crashes"] == 1, mode
            assert recovery["repairs"] == 1, mode
            repaired = (recovery["reassignments"]
                        if mode == "reassign"
                        else recovery["respawns"])
            assert repaired == 1, mode

    assert_claims(benchmark, check)


def test_s8_restart_baseline_really_degrades(measurements, benchmark):
    def check():
        report = measurements["sides"]["restart"]
        assert report.succeeded
        assert report.method != "parallel"
        first = report.attempts[0]
        assert first.error_class == "WorkerCrashError"
        # The rounds the parallel attempt completed before the crash
        # are exactly what the serial restart re-computes.
        assert first.rounds > 0
        assert first.recovery is not None
        assert first.recovery["crashes"] == 1

    assert_claims(benchmark, check)


def test_s8_speculation_beats_the_straggler(measurements, benchmark):
    def check():
        oracle = measurements["oracle"]
        straggled = measurements["straggled"]
        assert straggled.answers == oracle.answers
        assert straggled.stats.as_dict() == oracle.stats.as_dict()
        recovery = straggled.extras["recovery"]
        assert recovery["speculative_wins"] >= 1
        assert recovery["repairs"] == 0

    assert_claims(benchmark, check)


@pytest.mark.skipif(
    SMOKE or not MULTICORE,
    reason="repair-vs-restart timing is claimed at full size on "
           ">=4 cores only",
)
def test_s8_repair_beats_serial_restart(measurements, benchmark):
    def check():
        healed = measurements["sides"]["reassign"].elapsed
        restart = measurements["sides"]["restart"].total_elapsed
        assert healed < restart, (
            "crash+reassign %.1f ms not faster than serial restart "
            "%.1f ms" % (healed * 1e3, restart * 1e3)
        )

    assert_claims(benchmark, check)
