"""S2 (supplementary) — counting after square-rule linearization.

The paper's conclusion claims its technique "can be extended to
classes of non-linear programs".  This experiment measures the payoff
of the prototype we built for that direction: the square transitive-
closure rule is linearized to right-linear form, after which
Algorithm 3 reduces the counting program to the bare reachability
loop.

Workload: bound-source transitive closure over chains with distractor
components, plus a cyclic variant.

Shape asserted: the optimizer routes the square program through
linearization to a counting method; the linearized+reduced evaluation
beats magic on the original non-linear program at every size, and the
cyclic variant still terminates.
"""

import pytest

from conftest import register_table
from _common import assert_claims, work_of

from repro import optimize, parse_query
from repro.bench.harness import BenchRow
from repro.bench import matrix_table
from repro.data.generators import chain, node_name
from repro.engine.database import Database
from repro.exec.strategies import run_strategy

QUERY = parse_query("""
    tc(X, Y) :- arc(X, Y).
    tc(X, Y) :- tc(X, Z), tc(Z, Y).
    ?- tc(a, Y).
""")

SIZES = [16, 32, 64]
DISTRACTORS = 3


def make_db(n, cyclic=False):
    db = Database()
    facts = chain(n, "arc", "n")
    for _pred, (x, y) in facts:
        db.add_fact("arc", "a" if x == "n0" else x, y)
    if cyclic:
        db.add_fact("arc", node_name("n", n), "a")
    for d in range(DISTRACTORS):
        for _pred, (x, y) in chain(n, "arc", "d%d_" % d):
            db.add_fact("arc", x, y)
    return db


def run_method(label, method_name, query, db):
    try:
        result = run_strategy(method_name, query, db)
    except Exception as exc:  # recorded like the harness does
        return BenchRow(label, method_name, error=exc)
    return BenchRow(label, method_name, result=result)


def run_linearized(label, db):
    plan = optimize(QUERY, db)
    result = plan.execute(db)
    row = BenchRow(label, "linearized_counting", result=result)
    row.extras = dict(result.extras)
    row.extras["plan"] = plan.method
    return row


@pytest.fixture(scope="module")
def rows():
    collected = []
    for n in SIZES:
        db = make_db(n)
        label = "n=%d" % n
        collected.append(run_method(label, "naive", QUERY, db))
        collected.append(run_method(label, "magic", QUERY, db))
        collected.append(run_linearized(label, db))
    cyclic_db = make_db(24, cyclic=True)
    collected.append(run_method("cyclic", "magic", QUERY, cyclic_db))
    collected.append(run_linearized("cyclic", cyclic_db))
    register_table(
        "s2_linearized_tc",
        matrix_table(
            collected,
            title="S2: square-rule TC — magic on the non-linear program "
                  "vs linearize-then-count (%d distractor chains)"
                  % DISTRACTORS,
        ),
    )
    return collected


def test_s2_time_linearized(benchmark, rows):
    db = make_db(32)
    benchmark(lambda: optimize(QUERY, db).execute(db))


def test_s2_time_magic(benchmark, rows):
    db = make_db(32)
    benchmark(lambda: run_strategy("magic", QUERY, db))


def test_s2_optimizer_routes_through_linearization(rows, benchmark):
    def check():
        db = make_db(16)
        plan = optimize(QUERY, db)
        assert "linearization" in plan.reason
        assert plan.method in ("reduced_counting", "pointer_counting",
                               "cyclic_counting")

    assert_claims(benchmark, check)


def test_s2_linearized_counting_beats_magic(rows, benchmark):
    def check():
        for n in SIZES:
            label = "n=%d" % n
            assert work_of(rows, label, "linearized_counting") \
                < work_of(rows, label, "magic"), label

    assert_claims(benchmark, check)


def test_s2_cyclic_still_terminates(rows, benchmark):
    def check():
        cyclic = work_of(rows, "cyclic", "linearized_counting")
        magic = work_of(rows, "cyclic", "magic")
        assert cyclic < magic

    assert_claims(benchmark, check)
