"""E6 — Example 6 / §5: mixed-linear programs and Algorithm 3.

For a program of one right-linear and one left-linear rule the
reduction deletes the path argument entirely, leaving the factorized
program of Naughton et al. (Fact 1).

Shape asserted: the reduction fires (path argument gone), the reduced
program does less work than magic and than the unreduced dedicated
evaluator, and the rewritten program has exactly the four rules the
paper prints.
"""

import pytest

from conftest import register_table
from _common import assert_claims, make_timer, work_of

from repro import extended_counting_rewrite, reduce_rewriting
from repro.bench import matrix_table, run_matrix
from repro.data.workloads import WORKLOADS

WORKLOAD = WORKLOADS["mixed_linear"]
METHODS = ["naive", "magic", "reduced_counting", "cyclic_counting"]
SIZES = [8, 16, 32]


@pytest.fixture(scope="module")
def rows():
    collected = []
    for size in SIZES:
        db, _source = WORKLOAD.make_db(up_depth=size, down_depth=size)
        collected.extend(
            run_matrix(WORKLOAD.query, db, METHODS, label="n=%d" % size)
        )
    register_table(
        "e6_mixed_linear",
        matrix_table(
            collected,
            title="E6: mixed-linear program (Example 6), Algorithm 3 "
                  "reduction",
        ),
    )
    return collected


@pytest.mark.parametrize("method", METHODS)
def test_e6_time_n16(benchmark, method, rows):
    db, _source = WORKLOAD.make_db(up_depth=16, down_depth=16)
    benchmark(make_timer(WORKLOAD.query, db, method))


def test_e6_reduction_fires(rows, benchmark):
    def check():
        reduced = reduce_rewriting(
            extended_counting_rewrite(WORKLOAD.query)
        )
        assert reduced.path_deleted_counting
        assert reduced.path_deleted_answer
        assert len(reduced.query.program) == 4

    assert_claims(benchmark, check)


def test_e6_reduced_beats_magic(rows, benchmark):
    def check():
        for size in SIZES:
            label = "n=%d" % size
            assert work_of(rows, label, "reduced_counting") \
                < work_of(rows, label, "magic")

    assert_claims(benchmark, check)


def test_e6_reduced_beats_general_counting(rows, benchmark):
    def check():
        for size in SIZES:
            label = "n=%d" % size
            assert work_of(rows, label, "reduced_counting") \
                <= work_of(rows, label, "cyclic_counting")

    assert_claims(benchmark, check)
