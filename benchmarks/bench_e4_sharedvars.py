"""E4 — Example 4 / §3.2: variables shared between left and right
parts, and bound head variables used on the right.

The shared values ride the path entries ((r1, [W])); bound head
variables are recovered through the counting predicate kept in the
modified rule body (the D_r case).  Workload: Example-4-shaped chains
with decoy ``down1`` arcs carrying wrong shared values, which any
incorrect treatment of C_r would follow.

Shape asserted: extended and pointer counting agree with naive (the
run_matrix answer cross-check) and do less work than magic; decoy
answers never leak.
"""

import pytest

from conftest import register_table
from _common import assert_claims, make_timer, work_of

from repro.bench import matrix_table, run_matrix
from repro.data.workloads import WORKLOADS
from repro.exec.strategies import run_naive

WORKLOAD = WORKLOADS["shared_vars"]
METHODS = ["naive", "magic", "extended_counting", "pointer_counting"]
DEPTHS = [6, 12, 24]


@pytest.fixture(scope="module")
def rows():
    collected = []
    for depth in DEPTHS:
        db, _source = WORKLOAD.make_db(depth=depth)
        collected.extend(
            run_matrix(WORKLOAD.query, db, METHODS,
                       label="depth=%d" % depth)
        )
    register_table(
        "e4_sharedvars",
        matrix_table(
            collected,
            title="E4: shared variables between left and right parts "
                  "(Example 4) with decoy arcs",
        ),
    )
    return collected


@pytest.mark.parametrize("method", METHODS)
def test_e4_time_depth12(benchmark, method, rows):
    db, _source = WORKLOAD.make_db(depth=12)
    benchmark(make_timer(WORKLOAD.query, db, method))


def test_e4_decoys_do_not_leak(rows, benchmark):
    def check():
        db, _source = WORKLOAD.make_db(depth=12)
        answers = run_naive(WORKLOAD.query, db).answers
        assert all(not value.startswith("z") for (value,) in answers)
        # run_matrix already cross-checked every method against the
        # first; a single non-empty answer set certifies the workload
        # is non-degenerate.
        assert answers

    assert_claims(benchmark, check)


def test_e4_counting_beats_magic(rows, benchmark):
    def check():
        for depth in DEPTHS:
            label = "depth=%d" % depth
            assert work_of(rows, label, "pointer_counting") \
                < work_of(rows, label, "magic")

    assert_claims(benchmark, check)
