"""S5 — durability: WAL overhead, checkpoint recovery, torn tails.

Workload: the S1 cylinder ingested in ``add_facts`` batches, once into
a plain in-memory :class:`~repro.engine.database.Database` and once
into a :class:`~repro.durability.durable.DurableDatabase` with the
``batch`` fsync policy — the paper-engine equivalent of a bulk load
into a logged store.  The durable directory is then recovered three
ways: full WAL replay, checkpoint plus WAL-suffix replay, and replay
after the log's tail has been torn.

Claims asserted:

* the WAL's own cost (encode + write + policy fsyncs, measured inside
  the log so run-to-run machine noise cancels) stays under 10 % of the
  ingest it protects;
* full-replay recovery reproduces the ingested database byte-for-byte
  (``to_text``) with the epoch table at the WAL head;
* recovery from a checkpoint applies only the WAL suffix past the
  checkpoint's sequence number, and lands in the same state;
* a torn tail is detected, truncated, and recovery returns exactly the
  durable prefix — the torn record costs itself, never the log;
* the recovered database keeps the dead process's lineage token, so
  answer-cache entries keyed on (lineage, epochs) survive recovery.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

import pytest

from conftest import register_table
from _common import assert_claims

from repro.data.generators import cylinder
from repro.durability import DurableDatabase, WalReader, recover
from repro.engine.database import Database

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
WIDTH = 8
HEIGHT = 256 if SMOKE else 1024
BATCH = 256
TRIALS = 3 if SMOKE else 5

#: The asserted ceiling on WAL cost relative to the engine work.
OVERHEAD_CEILING = 0.10


def make_batches():
    """The S1 cylinder's facts, chunked into ingest batches."""
    facts = []
    ups, _first, last = cylinder(WIDTH, HEIGHT, "up", "u")
    for _pred, (x, y) in ups:
        facts.append(("up", (x, y)))
    downs, _d_first, d_last = cylinder(WIDTH, HEIGHT, "tmp", "d")
    for _pred, (x, y) in downs:
        facts.append(("down", (y, x)))
    for u_node, d_node in zip(last, d_last):
        facts.append(("flat", (u_node, d_node)))
    return [facts[i:i + BATCH] for i in range(0, len(facts), BATCH)]


def ingest_plain(batches):
    db = Database()
    started = time.perf_counter()
    for batch in batches:
        db.add_facts(batch)
    return db, time.perf_counter() - started


def ingest_durable(directory, batches):
    db = DurableDatabase(directory, fsync="batch")
    started = time.perf_counter()
    for batch in batches:
        db.add_facts(batch)
    db.flush()
    elapsed = time.perf_counter() - started
    stats = db.wal_stats
    db.close()
    return elapsed, stats


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    batches = make_batches()
    total_facts = sum(len(batch) for batch in batches)

    # Interleave the trials so drift hits both sides equally; the
    # asserted overhead is measured *inside* the WAL (append_seconds
    # against the rest of the same run), which single-run noise cannot
    # inflate the way a cross-run ratio can.
    plain_db = None
    plain_times, durable_times, overheads = [], [], []
    stats = None
    final_dir = None
    for trial in range(TRIALS):
        directory = str(tmp_path_factory.mktemp("s5-ingest"))
        elapsed, stats = ingest_durable(directory, batches)
        durable_times.append(elapsed)
        overheads.append(
            stats["append_seconds"]
            / max(elapsed - stats["append_seconds"], 1e-9)
        )
        final_dir = directory
        plain_db, plain_elapsed = ingest_plain(batches)
        plain_times.append(plain_elapsed)

    # Full-replay recovery of the final ingest directory.
    started = time.perf_counter()
    recovered, full_report = recover(final_dir, fsync="off")
    full_recovery_time = time.perf_counter() - started
    full_state_ok = (
        recovered.to_text() == plain_db.to_text()
        and {key: recovered.epoch_of(key) for key in recovered.keys()}
        == {key: plain_db.epoch_of(key) for key in plain_db.keys()}
    )
    lineage = recovered.lineage

    # Checkpoint, ingest a suffix, and recover again: replay must
    # start past the checkpoint.
    recovered.checkpoint()
    suffix = [[("extra", ("e%d" % i, "f%d" % i)) for i in range(32)]]
    for batch in suffix:
        recovered.add_facts(batch)
        plain_db.add_facts(batch)
    recovered.close()
    started = time.perf_counter()
    reopened, ckpt_report = recover(final_dir, fsync="off")
    ckpt_recovery_time = time.perf_counter() - started
    ckpt_state_ok = (
        reopened.to_text() == plain_db.to_text()
        and reopened.lineage == lineage
    )
    reopened.close()

    # Tear the tail: garbage past the last record must cost nothing
    # but itself.
    wal_path = os.path.join(final_dir, "wal.log")
    with open(wal_path, "ab") as handle:
        handle.write(b"\x99" * 41)
    torn_db, torn_report = recover(final_dir, fsync="off")
    torn_state_ok = torn_db.to_text() == plain_db.to_text()
    torn_db.close()
    surviving = len(WalReader(wal_path).records)

    data = {
        "batches": len(batches),
        "total_facts": total_facts,
        "plain_time": min(plain_times),
        "durable_time": min(durable_times),
        "overhead": min(overheads),
        "wal_stats": stats,
        "full_report": full_report,
        "full_recovery_time": full_recovery_time,
        "full_state_ok": full_state_ok,
        "ckpt_report": ckpt_report,
        "ckpt_recovery_time": ckpt_recovery_time,
        "ckpt_state_ok": ckpt_state_ok,
        "torn_report": torn_report,
        "torn_state_ok": torn_state_ok,
        "surviving": surviving,
        "final_dir": final_dir,
    }
    register_table("s5_recovery", _render_table(data))
    return data


def _render_table(data):
    stats = data["wal_stats"]
    lines = [
        "S5: durable ingest of %d facts in %d batches (fsync=batch)"
        % (data["total_facts"], data["batches"]),
        "plain ingest      : %.1f ms" % (data["plain_time"] * 1e3),
        "durable ingest    : %.1f ms" % (data["durable_time"] * 1e3),
        "wal cost          : %.1f ms in %d append(s), %d byte(s), "
        "%d fsync(s)"
        % (stats["append_seconds"] * 1e3, stats["appends"],
           stats["bytes"], stats["fsyncs"]),
        "wal overhead      : %.1f%% of engine work (ceiling %.0f%%)"
        % (data["overhead"] * 100, OVERHEAD_CEILING * 100),
        "recovery (replay) : %.1f ms, %d record(s) replayed"
        % (data["full_recovery_time"] * 1e3,
           data["full_report"].replayed),
        "recovery (ckpt)   : %.1f ms, checkpoint@%d + %d record(s)"
        % (data["ckpt_recovery_time"] * 1e3,
           data["ckpt_report"].checkpoint_seq,
           data["ckpt_report"].replayed),
        "torn tail         : %r, %d record(s) survive"
        % (data["torn_report"].truncated_tail, data["surviving"]),
    ]
    return "\n".join(lines)


def test_s5_time_durable_ingest(benchmark, measurements, tmp_path_factory):
    batches = make_batches()[:8]

    def ingest():
        directory = str(tmp_path_factory.mktemp("s5-timed"))
        ingest_durable(directory, batches)

    benchmark.pedantic(ingest, rounds=3, iterations=1)


def test_s5_time_recover(benchmark, measurements):
    directory = measurements["final_dir"]

    def run():
        db, _report = recover(directory, fsync="off")
        db.close()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_s5_wal_overhead_under_ceiling(measurements, benchmark):
    def check():
        assert measurements["overhead"] < OVERHEAD_CEILING, (
            "WAL cost is %.1f%% of ingest (ceiling %.0f%%)"
            % (measurements["overhead"] * 100, OVERHEAD_CEILING * 100)
        )
        # The cross-run macro ratio is noisy on shared machines, so it
        # only backstops against something categorically wrong (e.g.
        # an accidental fsync per append).
        assert (measurements["durable_time"]
                < measurements["plain_time"] * 2.0)

    assert_claims(benchmark, check)


def test_s5_full_replay_recovers_identical_state(measurements, benchmark):
    def check():
        report = measurements["full_report"]
        assert measurements["full_state_ok"]
        assert report.checkpoint_seq == 0
        assert report.replayed == measurements["batches"]
        assert report.wal_records == measurements["batches"]
        assert not report.truncated_tail

    assert_claims(benchmark, check)


def test_s5_checkpoint_skips_replayed_prefix(measurements, benchmark):
    def check():
        report = measurements["ckpt_report"]
        assert measurements["ckpt_state_ok"]
        assert report.checkpoint_seq == measurements["batches"]
        assert report.replayed == 1
        assert report.wal_records == measurements["batches"] + 1

    assert_claims(benchmark, check)


def test_s5_torn_tail_costs_only_itself(measurements, benchmark):
    def check():
        report = measurements["torn_report"]
        assert measurements["torn_state_ok"]
        assert report.truncated_tail is not None
        assert report.wal_records == measurements["batches"] + 1
        assert measurements["surviving"] == measurements["batches"] + 1

    assert_claims(benchmark, check)
