"""A2 (ablation) — semi-naive vs naive fixpoint iteration.

The engine's recursive rounds restrict one occurrence of a recursive
predicate to the facts derived in the previous round (semi-naive).
This ablation re-runs the same programs with full-relation rounds (the
textbook naive fixpoint) to quantify what the delta discipline buys —
the counting-vs-magic comparisons in E1-E10 all sit on top of it.

Shape asserted: on transitive closure over a chain, naive iteration
re-derives quadratically many duplicates while semi-naive's duplicates
stay linear; identical fixpoints either way.
"""

import pytest

from conftest import register_table
from _common import assert_claims

from repro import parse_program
from repro.bench.reporting import format_table
from repro.data.generators import chain
from repro.engine import Database, EvalStats, SemiNaiveEngine

TC = parse_program("""
    tc(X, Y) :- arc(X, Y).
    tc(X, Y) :- tc(X, Z), arc(Z, Y).
""")
SIZES = [16, 32, 64]


def run_once(n, seminaive):
    db = Database()
    db.add_facts(chain(n))
    stats = EvalStats()
    engine = SemiNaiveEngine(TC, db, stats=stats, seminaive=seminaive)
    derived = engine.run()
    return stats, len(derived[("tc", 2)])


@pytest.fixture(scope="module")
def rows():
    measurements = {}
    table_rows = []
    for n in SIZES:
        for seminaive in (True, False):
            stats, facts = run_once(n, seminaive)
            measurements[(n, seminaive)] = (stats, facts)
            table_rows.append([
                "chain n=%d" % n,
                "semi-naive" if seminaive else "naive",
                facts,
                stats.facts_duplicate,
                stats.total_work,
            ])
    register_table(
        "a2_seminaive",
        format_table(
            ["workload", "iteration", "tc facts", "duplicates", "work"],
            table_rows,
            title="A2 (ablation): semi-naive vs naive fixpoint on "
                  "transitive closure",
        ),
    )
    return measurements


def test_a2_time_seminaive(benchmark, rows):
    benchmark(lambda: run_once(32, True))


def test_a2_time_naive(benchmark, rows):
    benchmark(lambda: run_once(32, False))


def test_a2_same_fixpoint(rows, benchmark):
    def check():
        for n in SIZES:
            assert rows[(n, True)][1] == rows[(n, False)][1]
            assert rows[(n, True)][1] == n * (n + 1) // 2

    assert_claims(benchmark, check)


def test_a2_duplicate_blowup_without_deltas(rows, benchmark):
    def check():
        for n in SIZES:
            semi_dup = rows[(n, True)][0].facts_duplicate
            naive_dup = rows[(n, False)][0].facts_duplicate
            assert naive_dup > 5 * max(1, semi_dup)
        # Naive duplicates grow ~cubically with n, semi-naive ~linear.
        growth = (
            rows[(SIZES[-1], False)][0].facts_duplicate
            / rows[(SIZES[0], False)][0].facts_duplicate
        )
        assert growth > 10

    assert_claims(benchmark, check)
