"""E2 — §3.4: counting-set size, n² vs n.

Workload: same generation whose ``up`` graph is a shortcut chain
(arcs ``i -> i+1`` and ``i -> i+2``), so every node is reachable at
many distinct distances.  The paper's claim: the classical counting
set stores one tuple per (node, distance) pair — Θ(n²) worst case on an
acyclic graph of n nodes — while the pointer method keyed per node
stores n rows (plus one triple per arc, ≤ n², here ~2n), the same
order as the magic set.

Shape asserted: classical counting-set size grows quadratically while
pointer rows and the magic set grow linearly.
"""

import pytest

from conftest import register_table
from _common import assert_claims, extras_of, make_timer

from repro import parse_query
from repro.bench import matrix_table, run_matrix
from repro.data.generators import node_name, shortcut_chain
from repro.engine.database import Database

QUERY = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")

METHODS = ["magic", "classical_counting", "pointer_counting"]
SIZES = [16, 32, 64]


def make_db(n):
    db = Database()
    for _pred, (x, y) in shortcut_chain(n, "up", "s"):
        db.add_fact("up", "a" if x == "s0" else x, y)
    db.add_fact("flat", node_name("s", n), node_name("w", 0))
    for i in range(n):
        db.add_fact("down", node_name("w", i), node_name("w", i + 1))
    return db


@pytest.fixture(scope="module")
def rows():
    collected = []
    for n in SIZES:
        collected.extend(
            run_matrix(QUERY, make_db(n), METHODS, label="n=%d" % n)
        )
    register_table(
        "e2_counting_set_size",
        matrix_table(
            collected,
            title="E2: counting-set size on a shortcut chain "
                  "(classical: per (node, distance); pointer: per node)",
            extra_columns=("counting_set_size", "counting_rows",
                           "counting_triples", "magic_set_size"),
        ),
    )
    return collected


@pytest.mark.parametrize("method", METHODS)
def test_e2_time_n32(benchmark, method, rows):
    benchmark(make_timer(QUERY, make_db(32), method))


def test_e2_classical_set_quadratic(rows, benchmark):
    def check():
        sizes = [
            extras_of(rows, "n=%d" % n, "classical_counting")[
                "counting_set_size"
            ]
            for n in SIZES
        ]
        # Doubling n should roughly quadruple the (node, index) pairs.
        assert sizes[1] / sizes[0] > 3.0
        assert sizes[2] / sizes[1] > 3.0

    assert_claims(benchmark, check)


def test_e2_pointer_rows_linear(rows, benchmark):
    def check():
        for n in SIZES:
            extras = extras_of(rows, "n=%d" % n, "pointer_counting")
            assert extras["counting_rows"] == n + 1
            # One triple per reachable up arc plus the source sentinel:
            # ~2n, the paper's <= n^2 per-arc bound, far below n^2 here.
            assert extras["counting_triples"] <= 2 * n + 1

    assert_claims(benchmark, check)


def test_e2_magic_set_linear(rows, benchmark):
    def check():
        for n in SIZES:
            extras = extras_of(rows, "n=%d" % n, "magic")
            assert extras["magic_set_size"] == n + 1

    assert_claims(benchmark, check)
