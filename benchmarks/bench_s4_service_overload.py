"""S4 — the concurrent query service under overload and faults.

Workload: an open-loop burst of ``sg(c, Y)?`` bindings over a forest
database, offered to a :class:`~repro.serve.service.QueryService` far
faster than its worker pool can serve them.  The admission queue is
bounded, so the burst must shed typed — never queue without limit,
never fail untyped — while everything actually served stays correct.

Claims asserted:

* queue depth never exceeds the configured capacity, at any offered
  load;
* every shed request failed with the typed ``Overloaded`` error
  (reason ``queue_full`` at admission, ``expired`` past deadline);
* served answers are identical to single-threaded evaluation of the
  same admitted bindings — concurrency never changes an answer;
* the admission ledger balances: submitted = admitted + shed + closed,
  and every admitted request reaches exactly one terminal state;
* with a zero deadline every admitted request is shed unevaluated;
* a poisoned run (cycle closed in one tree, injected stalls, one
  worker) trips the primary strategy's breaker, degrades through the
  fallback chain, and produces an identical ``service`` counter block
  across two same-seed runs.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import os

import pytest

from conftest import register_table
from _common import assert_claims

from repro.data.workloads import (
    WORKLOADS,
    forest_bindings,
    forest_root,
    poison_forest,
    sg_forest,
)
from repro.engine.faults import FaultInjector
from repro.errors import Overloaded
from repro.exec import AnswerCache, PreparedQuery
from repro.exec.strategies import run_strategy
from repro.serve import BreakerBoard, QueryService, RetryPolicy

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
TREES = 4
DEPTH = 4 if SMOKE else 6
QUERIES = 32 if SMOKE else 128
WORKERS = 4
CAPACITY = 8

QUERY = WORKLOADS["sg_forest"].query


def _overload_burst(prepared, db, bindings):
    """Submit every binding open-loop; classify the outcomes."""
    service = QueryService(prepared, db, workers=WORKERS,
                           queue_capacity=CAPACITY)
    shed_submit, admitted = [], []
    for binding in bindings:
        try:
            admitted.append((binding, service.submit(binding)))
        except Overloaded as exc:
            shed_submit.append((binding, exc))
    served, shed_queue, failed = [], [], []
    for binding, future in admitted:
        error = future.exception(timeout=600.0)
        if error is None:
            served.append((binding, future.result(0)))
        elif isinstance(error, Overloaded):
            shed_queue.append((binding, error))
        else:  # pragma: no cover - would fail the typed-shedding claim
            failed.append((binding, error))
    service.drain()
    return {
        "service": service,
        "served": served,
        "shed_submit": shed_submit,
        "shed_queue": shed_queue,
        "failed": failed,
    }


def _poisoned_run(seed):
    """One single-worker pass over a poisoned forest under faults."""
    db, _source = sg_forest(trees=2, fanout=2, depth=3)
    # An answer cache puts the injector's "cache" stall point on the
    # serving hot path, so the fault plan actually exercises the locked
    # critical sections.
    prepared = PreparedQuery(QUERY, db, cache=AnswerCache(capacity=32))
    poison_forest(db, tree=1)
    bindings = forest_bindings(trees=2, queries=12)
    injector = FaultInjector(seed=seed)
    injector.delay_sections(0.0002, every=3)
    board = BreakerBoard(threshold=2, cooldown=1e9)
    baseline = {
        binding: run_strategy("naive", prepared.bind(binding), db).answers
        for binding in set(bindings)
    }
    with injector:
        service = QueryService(
            prepared, db, workers=1, queue_capacity=len(bindings),
            breakers=board, retry=RetryPolicy(max_attempts=2, seed=seed),
        )
        try:
            results = [service.run(binding, wait=600.0)
                       for binding in bindings]
        finally:
            service.drain()
    answers_ok = all(
        result.answers == baseline[binding]
        for binding, result in zip(bindings, results)
    )
    return service.counters(), answers_ok, injector.sections_stalled


@pytest.fixture(scope="module")
def measurements():
    db, _source = sg_forest(trees=TREES, fanout=2, depth=DEPTH)
    prepared = PreparedQuery(QUERY, db)
    bindings = forest_bindings(trees=TREES, queries=QUERIES)
    single = {
        binding: run_strategy(prepared.method, prepared.bind(binding),
                              db).answers
        for binding in set(bindings)
    }

    burst = _overload_burst(prepared, db, bindings)

    # Zero-deadline pass: whatever is admitted must be shed unevaluated.
    expired_service = QueryService(prepared, db, workers=2,
                                   queue_capacity=CAPACITY)
    expired_outcomes = []
    for binding in bindings[: CAPACITY]:
        try:
            expired_outcomes.append(
                expired_service.submit(binding, timeout=0.0)
            )
        except Overloaded:
            pass
    expired_errors = [
        future.exception(timeout=600.0) for future in expired_outcomes
    ]
    expired_service.drain()

    poisoned_first, poisoned_ok, stalls = _poisoned_run(seed=5)
    poisoned_second, _ok, _stalls = _poisoned_run(seed=5)

    data = {
        "bindings": bindings,
        "prepared": prepared,
        "single": single,
        "burst": burst,
        "expired_errors": expired_errors,
        "expired_counters": expired_service.counters(),
        "poisoned_first": poisoned_first,
        "poisoned_second": poisoned_second,
        "poisoned_ok": poisoned_ok,
        "stalls": stalls,
    }
    register_table("s4_service_overload", _render_table(data))
    return data


def _render_table(data):
    counters = data["burst"]["service"].counters()
    poisoned = data["poisoned_first"]
    lines = [
        "S4: %d-binding burst at a %d-worker service (queue capacity %d)"
        % (QUERIES, WORKERS, CAPACITY),
        "method            : %s" % data["prepared"].method,
        "offered           : %d" % counters["submitted"],
        "served            : %d" % counters["completed"],
        "shed (queue full) : %d" % counters["shed_overload"],
        "shed (expired)    : %d" % counters["shed_expired"],
        "max queue depth   : %d (cap %d)"
        % (counters["max_queue_depth"], CAPACITY),
        "poisoned run      : %d fallbacks, %d breaker trip(s), "
        "%d rejection(s), %d stall(s)"
        % (poisoned["fallbacks"], poisoned["breaker_trips"],
           poisoned["breaker_rejections"], data["stalls"]),
    ]
    return "\n".join(lines)


def test_s4_time_serve(benchmark, measurements):
    prepared = measurements["prepared"]
    db = measurements["burst"]["service"].db
    service = QueryService(prepared, db, workers=2,
                           queue_capacity=CAPACITY)
    binding = (forest_root(0),)
    try:
        benchmark(lambda: service.run(binding, wait=600.0))
    finally:
        service.drain()


def test_s4_queue_depth_bounded(measurements, benchmark):
    def check():
        counters = measurements["burst"]["service"].counters()
        assert counters["max_queue_depth"] <= CAPACITY

    assert_claims(benchmark, check)


def test_s4_sheds_typed_under_overload(measurements, benchmark):
    def check():
        burst = measurements["burst"]
        # The burst outruns the pool: admission control engaged.
        assert burst["shed_submit"], "burst never overloaded the queue"
        # Nothing failed untyped; every shed is a reasoned Overloaded.
        assert burst["failed"] == []
        for _binding, error in burst["shed_submit"]:
            assert isinstance(error, Overloaded)
            assert error.reason == "queue_full"
        for _binding, error in burst["shed_queue"]:
            assert error.reason == "expired"

    assert_claims(benchmark, check)


def test_s4_served_answers_identical_to_single_threaded(
        measurements, benchmark):
    def check():
        single = measurements["single"]
        served = measurements["burst"]["served"]
        assert served, "no requests survived admission"
        for binding, result in served:
            assert result.answers == single[binding], binding

    assert_claims(benchmark, check)


def test_s4_admission_ledger_balances(measurements, benchmark):
    def check():
        counters = measurements["burst"]["service"].counters()
        assert counters["submitted"] == QUERIES
        assert counters["submitted"] == (
            counters["admitted"] + counters["shed_overload"]
            + counters["rejected_closed"]
        )
        assert counters["admitted"] == (
            counters["completed"] + counters["failed"]
            + counters["cancelled"] + counters["shed_expired"]
        )

    assert_claims(benchmark, check)


def test_s4_zero_deadline_sheds_unevaluated(measurements, benchmark):
    def check():
        errors = measurements["expired_errors"]
        counters = measurements["expired_counters"]
        assert errors, "zero-deadline pass admitted nothing"
        for error in errors:
            assert isinstance(error, Overloaded)
            assert error.reason == "expired"
        assert counters["completed"] == 0
        assert counters["shed_expired"] == counters["admitted"]

    assert_claims(benchmark, check)


def test_s4_poisoned_run_degrades_and_answers(measurements, benchmark):
    def check():
        counters = measurements["poisoned_first"]
        assert measurements["poisoned_ok"]
        assert counters["fallbacks"] > 0
        assert counters["breaker_trips"] >= 1
        assert counters["failed"] == 0
        assert measurements["stalls"] > 0

    assert_claims(benchmark, check)


def test_s4_counters_deterministic_same_seed(measurements, benchmark):
    def check():
        assert (measurements["poisoned_first"]
                == measurements["poisoned_second"])

    assert_claims(benchmark, check)
