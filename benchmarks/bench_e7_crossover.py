"""E7 — §1 / [4, 11]: where the counting advantage erodes.

The paper (citing the Bancilhon-Ramakrishnan and Marchetti-Spaccamela
et al. comparisons) frames counting as the winner on low-duplication
data, with magic sets preferred when many distinct paths reach the
same node: counting re-derives per path position, magic collapses them.

Workload: layered same-generation DAGs with a tunable number of extra
parents per node.  At 0 extra parents the up graph is a forest of
chains; each increment multiplies the distinct source-to-node paths.

Shape asserted: the magic/counting work ratio decreases monotonically
as duplication grows, starting comfortably above 1 (counting wins) and
shrinking by at least 2x across the sweep — the crossover trend.
"""

import pytest

from conftest import register_table
from _common import assert_claims, make_timer, work_of

from repro.bench import matrix_table, run_matrix
from repro.data.generators import duplication_dag_db
from repro.data.workloads import WORKLOADS, _rename_source

WORKLOAD = WORKLOADS["sg_tree"]  # same program; data built here
QUERY = WORKLOAD.query
METHODS = ["magic", "pointer_counting"]
DUPLICATION = [0, 1, 2, 4]
LEVELS = 5
WIDTH = 6


def make_db(extra_parents):
    db, source = duplication_dag_db(
        LEVELS, WIDTH, extra_parents, seed=1234
    )
    return _rename_source(db, source, "a")


@pytest.fixture(scope="module")
def rows():
    collected = []
    for extra in DUPLICATION:
        collected.extend(
            run_matrix(QUERY, make_db(extra), METHODS,
                       label="extra_parents=%d" % extra)
        )
    register_table(
        "e7_crossover",
        matrix_table(
            collected,
            title="E7: counting advantage vs path duplication "
                  "(layered DAG, %d levels x %d nodes)" % (LEVELS, WIDTH),
            extra_columns=("counting_triples", "answer_states",
                           "magic_set_size"),
        ),
    )
    return collected


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("extra", [0, 4])
def test_e7_time(benchmark, method, extra, rows):
    benchmark(make_timer(QUERY, make_db(extra), method))


def test_e7_counting_wins_without_duplication(rows, benchmark):
    def check():
        label = "extra_parents=0"
        assert work_of(rows, label, "pointer_counting") \
            < work_of(rows, label, "magic")

    assert_claims(benchmark, check)


def test_e7_advantage_shrinks_with_duplication(rows, benchmark):
    def check():
        ratios = [
            work_of(rows, "extra_parents=%d" % extra, "magic")
            / work_of(rows, "extra_parents=%d" % extra,
                      "pointer_counting")
            for extra in DUPLICATION
        ]
        assert all(
            later <= earlier * 1.05
            for earlier, later in zip(ratios, ratios[1:])
        ), ratios
        assert ratios[-1] < ratios[0] / 2, ratios

    assert_claims(benchmark, check)
