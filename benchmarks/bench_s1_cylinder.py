"""S1 (supplementary) — the Bancilhon-Ramakrishnan cylinder.

The cylinder is the classic stress shape from the comparison framework
the paper cites [4]: every node of layer i+1 has two parents in layer
i, so the number of distinct source-to-node paths grows exponentially
with height while all paths to a node have the *same length*.  That is
counting's best non-tree case: the (node, distance) space stays linear
(one distance per node) even though paths explode, so the counting
methods keep their edge; what grows for everyone is the sheer number
of join results.

Shape asserted: pointer counting beats magic at every height; the
counting table stays linear in the node count (one row per node, two
triples per node) despite the exponential path count.
"""

import pytest

from conftest import register_table
from _common import assert_claims, extras_of, make_timer, work_of

from repro import parse_query
from repro.bench import matrix_table, run_matrix
from repro.data.generators import cylinder
from repro.engine.database import Database

QUERY = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")

METHODS = ["naive", "magic", "classical_counting", "pointer_counting"]
WIDTH = 4
HEIGHTS = [4, 8, 12]


def make_db(height):
    db = Database()
    facts, first, last = cylinder(WIDTH, height, "up", "u")
    for _pred, (x, y) in facts:
        db.add_fact("up", "a" if x == first[0] else x, y)
    down_facts, d_first, d_last = cylinder(WIDTH, height, "tmp", "d")
    for _pred, (x, y) in down_facts:
        db.add_fact("down", y, x)
    for u_node, d_node in zip(last, d_last):
        db.add_fact("flat", u_node, d_node)
    return db


@pytest.fixture(scope="module")
def rows():
    collected = []
    for height in HEIGHTS:
        collected.extend(
            run_matrix(QUERY, make_db(height), METHODS,
                       label="h=%d" % height)
        )
    register_table(
        "s1_cylinder",
        matrix_table(
            collected,
            title="S1: Bancilhon-Ramakrishnan cylinder (width %d) — "
                  "exponential paths, uniform distances" % WIDTH,
            extra_columns=("counting_set_size", "counting_rows",
                           "counting_triples"),
        ),
    )
    return collected


@pytest.mark.parametrize("method", METHODS)
def test_s1_time_h8(benchmark, method, rows):
    benchmark(make_timer(QUERY, make_db(8), method))


def test_s1_counting_beats_magic(rows, benchmark):
    def check():
        for height in HEIGHTS:
            label = "h=%d" % height
            assert work_of(rows, label, "pointer_counting") \
                < work_of(rows, label, "magic"), label

    assert_claims(benchmark, check)


def test_s1_counting_table_linear_despite_paths(rows, benchmark):
    def check():
        for height in HEIGHTS:
            label = "h=%d" % height
            extras = extras_of(rows, label, "pointer_counting")
            nodes = WIDTH * height + 1  # layers below the source + a
            assert extras["counting_rows"] <= nodes + WIDTH
            assert extras["counting_triples"] <= 2 * WIDTH * height + 2
            # Classical counting also stays linear here: one distance
            # per node (all paths to a node have equal length).
            classical = extras_of(rows, label, "classical_counting")
            assert classical["counting_set_size"] <= nodes + WIDTH

    assert_claims(benchmark, check)
