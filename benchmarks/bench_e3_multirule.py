"""E3 — Example 3 / §3.1: multiple linear recursive rules.

The classical counting method is inapplicable (two recursive rules);
the extended method's path argument records the rule sequence and
replays it in reverse.  Workload: alternating up1/up2 chains with
matching down1/down2 chains, so answers only appear when the rule
sequence is replayed exactly.

Shape asserted: classical counting raises NotApplicableError; extended
and pointer counting match naive answers and beat magic on work.
"""

import pytest

from conftest import register_table
from _common import assert_claims, error_of, make_timer, work_of

from repro.bench import matrix_table, run_matrix
from repro.data.workloads import WORKLOADS
from repro.errors import NotApplicableError

WORKLOAD = WORKLOADS["multi_rule"]
METHODS = [
    "naive", "magic", "classical_counting", "extended_counting",
    "pointer_counting",
]
DEPTHS = [8, 16, 32]


@pytest.fixture(scope="module")
def rows():
    collected = []
    for depth in DEPTHS:
        db, _source = WORKLOAD.make_db(depth=depth)
        collected.extend(
            run_matrix(WORKLOAD.query, db, METHODS,
                       label="depth=%d" % depth)
        )
    register_table(
        "e3_multirule",
        matrix_table(
            collected,
            title="E3: two recursive rules (Example 3), alternating "
                  "chains",
        ),
    )
    return collected


@pytest.mark.parametrize(
    "method",
    ["magic", "extended_counting", "pointer_counting"],
)
def test_e3_time_depth16(benchmark, method, rows):
    db, _source = WORKLOAD.make_db(depth=16)
    benchmark(make_timer(WORKLOAD.query, db, method))


def test_e3_classical_inapplicable(rows, benchmark):
    def check():
        for depth in DEPTHS:
            error = error_of(rows, "depth=%d" % depth,
                             "classical_counting")
            assert isinstance(error, NotApplicableError)

    assert_claims(benchmark, check)


def test_e3_extended_beats_magic(rows, benchmark):
    def check():
        for depth in DEPTHS:
            label = "depth=%d" % depth
            assert work_of(rows, label, "pointer_counting") \
                < work_of(rows, label, "magic")

    assert_claims(benchmark, check)
