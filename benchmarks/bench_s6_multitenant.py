"""S6 — multi-tenant serving under a noisy neighbor.

Workload: two tenants share one :class:`~repro.serve.service.
QueryService` over a forest database.  The *well-behaved* tenant
submits a bounded stream of ``sg(c, Y)?`` bindings; the *hog* floods
from a background thread as fast as Python can loop, far beyond its
token-bucket rate quota, so admission must shed it typed while the
deficit-round-robin scheduler keeps the well tenant's share of the
worker pool intact.

Claims asserted:

* the well tenant keeps >= 80 % of its fair-share goodput while the
  hog floods (fair share = ``min(rate_alone, aggregate / 2)`` — it
  can never be owed more than it achieves alone, nor more than half
  the contended capacity at equal weights);
* with the hog held to one worker slot by its concurrency quota, the
  well tenant's closed-loop p95 latency stays within 2x of its p95
  alone (with a small floor absorbing timer noise on sub-millisecond
  services);
* every answer served to either tenant is identical to single-tenant,
  single-threaded evaluation of the same binding;
* the hog's excess is shed with typed, tenant-tagged errors —
  ``QuotaExceeded`` past its rate quota, ``Overloaded`` at its full
  lane — each carrying a machine-readable ``retry_after`` hint, and
  the well tenant is never shed at all;
* the hog is throttled, not starved: it still completes requests
  while flooding;
* the per-tenant admission ledgers balance at the final snapshot.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import gc
import os
import sys
import threading
import time

import pytest

from conftest import register_table
from _common import assert_claims

from repro.data.workloads import WORKLOADS, forest_bindings, sg_forest
from repro.errors import Overloaded, QuotaExceeded
from repro.exec import PreparedQuery
from repro.exec.strategies import run_strategy
from repro.serve import QueryService
from repro.tenancy import TenantQuota

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
TREES = 4
DEPTH = 4 if SMOKE else 6
WORKERS = 4
WELL_QUERIES = 24 if SMOKE else 96
LATENCY_QUERIES = 40 if SMOKE else 60
#: Generous but finite: the flood submits in bursts of 64, far past
#: the 8-token bucket, so every burst is partly denied typed
#: (``QuotaExceeded``) while the admitted remainder — roughly the
#: refill rate — is still plenty to keep the hog's lane backlogged.
HOG_RATE = 1500.0
HOG_BURST = 8.0
HOG_LANE = 16
#: Deep enough that the well flood's backlog never hits the lane cap
#: inside the measurement window — the well tenant must finish the
#: drill with zero sheds of any kind.
WELL_LANE = 4096
DRILL_SECONDS = 0.3 if SMOKE else 0.8
#: Floor under the p95 ratio: on a sub-millisecond service the 2x
#: claim would otherwise compare two numbers inside scheduler jitter.
P95_FLOOR = 0.005

QUERY = WORKLOADS["sg_forest"].query


def _p95(latencies):
    ordered = sorted(latencies)
    index = max(0, -(-19 * len(ordered) // 20) - 1)  # ceil(0.95n) - 1
    return ordered[index]


def _timed_runs(service, bindings, tenant):
    """Closed-loop latency samples with the garbage collector parked —
    a gen-2 collection pause is several milliseconds, an order of
    magnitude above the scheduling delays under test."""
    latencies = []
    gc.collect()
    gc.disable()
    try:
        for binding in bindings[:LATENCY_QUERIES]:
            started = time.perf_counter()
            service.run(binding, tenant=tenant, wait=600.0)
            latencies.append(time.perf_counter() - started)
    finally:
        gc.enable()
    return latencies


def _flood(service, bindings, stop, record, tenant, every, pause):
    """Open-loop submit thread: flood in bursts of ``every`` until
    told to stop, keeping every admitted future and every shed error.
    The sleep between bursts keeps the attempt rate far above what the
    service can serve without monopolising the GIL — the drill
    measures scheduler fairness, not interpreter-lock contention from
    a spin loop."""
    index = 0
    while not stop.is_set():
        binding = bindings[index % len(bindings)]
        index += 1
        if index % every == 0:
            time.sleep(pause)
        try:
            record["futures"].append(
                (binding, service.submit(binding, tenant=tenant))
            )
        except QuotaExceeded as exc:
            record["quota_sheds"].append(exc)
        except Overloaded as exc:
            record["overload_sheds"].append(exc)


def _alone_pass(prepared, db, bindings):
    """The well tenant with the pool to itself: open-loop goodput and
    closed-loop latency baselines."""
    service = QueryService(
        prepared, db, workers=WORKERS, queue_capacity=WELL_QUERIES,
        tenants={"well": TenantQuota(queue_capacity=WELL_QUERIES)},
    )
    try:
        started = time.perf_counter()
        futures = [service.submit(binding, tenant="well")
                   for binding in bindings[:WELL_QUERIES]]
        results = [future.result(timeout=600.0) for future in futures]
        open_elapsed = time.perf_counter() - started
        latencies = _timed_runs(service, bindings, "well")
    finally:
        service.drain()
    return {
        "rate": WELL_QUERIES / open_elapsed,
        "p95": _p95(latencies),
        "results": list(zip(bindings[:WELL_QUERIES], results)),
    }


def _latency_pass(prepared, db, bindings):
    """Closed-loop well-tenant latency while the hog floods under a
    concurrency quota.

    The hog is held to a single worker slot, so the rest of the pool
    always stays available to other tenants — the isolation that keeps
    a neighbour's flood from stretching everyone's tail latency.  (On
    a GIL runtime every *concurrently evaluating* CPU-bound request
    stretches every other thread's wall clock, no matter how fair the
    dispatch order; the slot quota is the service's own mechanism for
    bounding exactly that.)  Each well request is submitted against an
    otherwise-empty well lane, so the measurement is scheduling delay,
    not self-queueing.
    """
    service = QueryService(
        prepared, db, workers=WORKERS, queue_capacity=WELL_LANE,
        tenants={
            "well": TenantQuota(queue_capacity=WELL_LANE),
            "hog": TenantQuota(rate=HOG_RATE, burst=HOG_BURST,
                               queue_capacity=HOG_LANE,
                               max_concurrent=1),
        },
    )
    stop = threading.Event()
    hog = {"futures": [], "quota_sheds": [], "overload_sheds": []}
    flood = threading.Thread(
        target=_flood, args=(service, bindings, stop, hog,
                             "hog", 64, 0.005),
    )
    flood.start()
    try:
        time.sleep(0.05)  # let the flood fill the hog's slot
        latencies = _timed_runs(service, bindings, "well")
    finally:
        stop.set()
        flood.join()
        service.drain()
    return {"p95": _p95(latencies)}


def _fairness_pass(prepared, db, bindings):
    """The well tenant's fair-share goodput under an uncapped hog
    flood.

    A fixed steady-state window with *both* lanes kept backlogged by
    symmetric submit threads; fairness is read off the per-tenant
    completion deltas between two atomic counter snapshots, which
    keeps the measurement independent of how fast a single Python
    client thread can push requests.
    """
    service = QueryService(
        prepared, db, workers=WORKERS, queue_capacity=WELL_LANE,
        tenants={
            "well": TenantQuota(queue_capacity=WELL_LANE),
            "hog": TenantQuota(rate=HOG_RATE, burst=HOG_BURST,
                               queue_capacity=HOG_LANE),
        },
    )
    stop_hog, stop_well = threading.Event(), threading.Event()
    hog = {"futures": [], "quota_sheds": [], "overload_sheds": []}
    well = {"futures": [], "quota_sheds": [], "overload_sheds": []}
    hog_flood = threading.Thread(
        target=_flood, args=(service, bindings, stop_hog, hog,
                             "hog", 64, 0.002),
    )
    hog_flood.start()
    try:
        time.sleep(0.05)  # let the flood backlog the hog's lane
        well_flood = threading.Thread(
            target=_flood, args=(service, bindings, stop_well, well,
                                 "well", 8, 0.002),
        )
        well_flood.start()
        time.sleep(0.05)  # let the well lane backlog too
        before = service.counters()
        started = time.perf_counter()
        time.sleep(DRILL_SECONDS)
        mid_burst = service.counters()
        elapsed = time.perf_counter() - started
        stop_well.set()
        well_flood.join()
        results = [
            (binding, future.result(timeout=600.0))
            for binding, future in well["futures"]
        ]
    finally:
        stop_hog.set()
        stop_well.set()
        hog_flood.join()
        service.drain()
    hog_results = [
        (binding, future.result(0))
        for binding, future in hog["futures"]
        if future.exception(timeout=0) is None
    ]
    well_done = (mid_burst["tenants"]["well"]["completed"]
                 - before["tenants"]["well"]["completed"])
    hog_done = (mid_burst["tenants"]["hog"]["completed"]
                - before["tenants"]["hog"]["completed"])
    return {
        "rate": well_done / elapsed,
        "elapsed": elapsed,
        "well_done": well_done,
        "hog_done": hog_done,
        "results": results,
        "hog_results": hog_results,
        "quota_sheds": hog["quota_sheds"],
        "overload_sheds": hog["overload_sheds"],
        "well_sheds": well["quota_sheds"] + well["overload_sheds"],
        "before": before,
        "mid_burst": mid_burst,
        "final": service.counters(),
    }


@pytest.fixture(scope="module")
def measurements():
    db, _source = sg_forest(trees=TREES, fanout=2, depth=DEPTH)
    prepared = PreparedQuery(QUERY, db)
    bindings = forest_bindings(trees=TREES, queries=WELL_QUERIES)
    single = {
        binding: run_strategy(prepared.method, prepared.bind(binding),
                              db).answers
        for binding in set(bindings)
    }
    # The default 5 ms GIL switch interval lets one CPU-bound worker
    # starve the latency-measuring thread for multiple slices — tail
    # noise an order of magnitude above the queueing delay under test.
    # Finer slicing keeps the drill about the scheduler, not the
    # interpreter.
    interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        alone = _alone_pass(prepared, db, bindings)
        # Two repetitions, best p95: a shared CI runner can preempt
        # the whole process for tens of milliseconds, and one such
        # stall inside a single pass would dominate the tail.
        latency = min(
            (_latency_pass(prepared, db, bindings) for _ in range(2)),
            key=lambda pass_: pass_["p95"],
        )
        contended = dict(_fairness_pass(prepared, db, bindings),
                         **latency)
    finally:
        sys.setswitchinterval(interval)
    data = {
        "prepared": prepared,
        "db": db,
        "single": single,
        "alone": alone,
        "contended": contended,
    }
    register_table("s6_multitenant", _render_table(data))
    return data


def _render_table(data):
    alone, contended = data["alone"], data["contended"]
    hog = contended["final"]["tenants"]["hog"]
    lines = [
        "S6: well tenant vs hog flood at a %d-worker service "
        "(%.1fs drill)" % (WORKERS, DRILL_SECONDS),
        "method            : %s" % data["prepared"].method,
        "well alone        : %.1f q/s, p95 %.2f ms"
        % (alone["rate"], alone["p95"] * 1e3),
        "well contended    : %.1f q/s, p95 %.2f ms (hog %d in-window)"
        % (contended["rate"], contended["p95"] * 1e3,
           contended["hog_done"]),
        "hog flood         : %d admitted, %d quota shed, %d lane shed"
        % (hog["admitted"], hog["shed_quota"], hog["shed_overload"]),
        "hog completed     : %d (throttled, not starved)"
        % hog["completed"],
    ]
    return "\n".join(lines)


def test_s6_time_contended_run(benchmark, measurements):
    """One closed-loop well-tenant request while a hog lane is
    configured (but idle) — the per-request cost of the tenancy path."""
    prepared = measurements["prepared"]
    service = QueryService(
        prepared, measurements["db"], workers=2, queue_capacity=8,
        tenants={
            "well": TenantQuota(queue_capacity=8),
            "hog": TenantQuota(rate=HOG_RATE, burst=HOG_BURST,
                               queue_capacity=HOG_LANE),
        },
    )
    binding = forest_bindings(trees=TREES, queries=1)[0]
    try:
        benchmark(lambda: service.run(binding, tenant="well",
                                      wait=600.0))
    finally:
        service.drain()


def test_s6_well_tenant_keeps_fair_share(measurements, benchmark):
    def check():
        alone = measurements["alone"]
        contended = measurements["contended"]
        well_done = contended["well_done"]
        hog_done = contended["hog_done"]
        assert well_done > 0, "well tenant served nothing in-window"
        aggregate = (well_done + hog_done) / contended["elapsed"]
        # Fair share at equal weights: half the contended capacity,
        # but never more than the tenant achieves with the pool to
        # itself.
        fair_share = min(alone["rate"], aggregate / 2.0)
        assert contended["rate"] >= 0.8 * fair_share, (
            "well tenant goodput %.1f q/s below 80%% of fair share "
            "%.1f q/s (hog completed %d in-window)"
            % (contended["rate"], fair_share, hog_done)
        )

    assert_claims(benchmark, check)


def test_s6_well_tenant_p95_bounded(measurements, benchmark):
    def check():
        alone = measurements["alone"]["p95"]
        contended = measurements["contended"]["p95"]
        assert contended <= 2.0 * max(alone, P95_FLOOR), (
            "p95 %.2f ms vs %.2f ms alone" % (contended * 1e3,
                                              alone * 1e3)
        )

    assert_claims(benchmark, check)


def test_s6_answers_identical_to_single_tenant(measurements, benchmark):
    def check():
        single = measurements["single"]
        contended = measurements["contended"]
        assert contended["results"], "no well-tenant answers"
        assert contended["hog_results"], "no hog answers survived"
        for binding, result in contended["results"]:
            assert result.answers == single[binding], binding
        for binding, result in contended["hog_results"]:
            assert result.answers == single[binding], binding
        for binding, result in measurements["alone"]["results"]:
            assert result.answers == single[binding], binding

    assert_claims(benchmark, check)


def test_s6_hog_shed_typed_with_hints(measurements, benchmark):
    def check():
        contended = measurements["contended"]
        assert contended["quota_sheds"], "flood never hit the quota"
        for error in contended["quota_sheds"]:
            assert isinstance(error, QuotaExceeded)
            assert error.tenant == "hog"
            assert error.resource == "rate"
            # The hint may be 0.0 exactly at a refill boundary, but it
            # is always present and machine-readable.
            assert error.retry_after is not None
            assert error.retry_after >= 0.0
        for error in contended["overload_sheds"]:
            assert isinstance(error, Overloaded)
            assert error.tenant == "hog"
            assert error.reason == "queue_full"

    assert_claims(benchmark, check)


def test_s6_hog_throttled_not_starved(measurements, benchmark):
    def check():
        hog = measurements["contended"]["final"]["tenants"]["hog"]
        assert hog["completed"] > 0
        assert hog["shed_quota"] == len(
            measurements["contended"]["quota_sheds"]
        )
        assert hog["queue"]["depth"] == 0  # drained clean

    assert_claims(benchmark, check)


def test_s6_well_tenant_never_shed(measurements, benchmark):
    def check():
        assert measurements["contended"]["well_sheds"] == []
        well = measurements["contended"]["final"]["tenants"]["well"]
        assert well["shed_overload"] == 0
        assert well["shed_quota"] == 0
        assert well["completed"] == well["submitted"]

    assert_claims(benchmark, check)


def test_s6_tenant_ledgers_balance(measurements, benchmark):
    def check():
        for name, block in (
                measurements["contended"]["final"]["tenants"].items()):
            assert block["submitted"] == (
                block["admitted"] + block["shed_overload"]
                + block["shed_quota"] + block["rejected_closed"]
            ), name
            assert block["admitted"] == (
                block["completed"] + block["failed"]
                + block["cancelled"] + block["shed_expired"]
                + block["inflight"]
            ), name
            assert block["inflight"] == 0, name

    assert_claims(benchmark, check)
