"""S7 — data-parallel sharded fixpoint scaling on the S1 cylinder.

Workload: the Bancilhon-Ramakrishnan cylinder (the S1 stress shape)
evaluated by the ``parallel`` strategy's partitioned plan/execute
split, against its own serial oracle — the same engine with
``inline=True``: identical plan, rounds and counters, zero processes
and zero exchange.

Claims asserted:

* answers are byte-identical and the merged ``EvalStats`` counters are
  *equal* to the serial oracle's at every pool size — parallelism
  never changes what was computed, only where;
* the round structure is worker-count invariant: every pool size
  crosses the same number of barriers;
* the coordinator accounts its exchange (routed delta bytes plus
  shipped derivations) and its plan/execute phase split on every run;
* with one worker the full multiprocess path — fork, intern-pool
  sync, columnar shard shipping, round barriers — costs at most 15 %
  over the serial oracle (claimed at full size only);
* with four workers the sharded fixpoint is at least 2.5x faster than
  the serial oracle (claimed only where four hardware cores exist —
  on fewer cores processes time-slice and wall-clock speedup is
  physically impossible, so the claim would measure the machine, not
  the executor).

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import gc
import os

import pytest

from conftest import register_table
from _common import assert_claims, make_timer, phase_split, timed_phases

from repro.data.workloads import WORKLOADS

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
WIDTH = 8 if SMOKE else 40
HEIGHT = 16 if SMOKE else 48
TRIALS = 2 if SMOKE else 3
#: Extra alternating serial/one-worker pairs backing the overhead
#: claim — per-pair noise is one-sided (it only ever adds time), so
#: the best-of over more pairs is the robust estimator.
OVERHEAD_PAIRS = 0 if SMOKE else 4
POOL_SIZES = (1, 2, 4)

try:
    CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    CORES = os.cpu_count() or 1

#: The speedup claim needs real hardware parallelism to be meaningful.
MULTICORE = CORES >= 4

#: Asserted ceilings/floors (full size only).
OVERHEAD_CEILING = 0.15
SPEEDUP_FLOOR = 2.5

WORKLOAD = WORKLOADS["sg_cylinder"]


def make_db():
    db, _source = WORKLOAD.make_db(width=WIDTH, height=HEIGHT)
    return db


@pytest.fixture(scope="module")
def measurements():
    """Interleaved best-of-``TRIALS`` timings, serial vs every pool size.

    Trials alternate sides so machine drift hits the serial oracle and
    the multiprocess runs equally; each claim compares best against
    best.  Answer and counter equality is checked on *every* run, not
    just the fastest.
    """
    db = make_db()
    query = WORKLOAD.query
    gc.collect()
    serial = timed_phases(query, db, "parallel", repeats=1,
                          workers=1, inline=True)
    sides = {}
    for _trial in range(TRIALS):
        # Collect before every timed run so cyclic-GC debt accrued by
        # one side is never paid inside the other side's timing.
        gc.collect()
        probe = timed_phases(query, db, "parallel", repeats=1,
                             workers=1, inline=True)
        if probe["total"] < serial["total"]:
            serial = probe
        for workers in POOL_SIZES:
            gc.collect()
            timed = timed_phases(query, db, "parallel", repeats=1,
                                 workers=workers)
            result = timed["result"]
            assert result.answers == serial["result"].answers, (
                "workers=%d changed the answers" % workers
            )
            assert (result.stats.as_dict()
                    == serial["result"].stats.as_dict()), (
                "workers=%d diverged from the serial counters" % workers
            )
            best = sides.get(workers)
            if best is None or timed["total"] < best["total"]:
                sides[workers] = timed
    for _pair in range(OVERHEAD_PAIRS):
        gc.collect()
        probe = timed_phases(query, db, "parallel", repeats=1,
                             workers=1, inline=True)
        if probe["total"] < serial["total"]:
            serial = probe
        gc.collect()
        timed = timed_phases(query, db, "parallel", repeats=1,
                             workers=1)
        if timed["total"] < sides[1]["total"]:
            sides[1] = timed
    data = {"serial": serial, "sides": sides, "db_facts": db.total_facts()}
    register_table("s7_parallel_scaling", _render_table(data))
    return data


def _render_table(data):
    serial = data["serial"]
    lines = [
        "S7: sharded fixpoint on the S1 cylinder "
        "(width %d, height %d, %d facts; %d core(s))"
        % (WIDTH, HEIGHT, data["db_facts"], CORES),
        "serial oracle     : %.1f ms (%d answers, %d facts derived)"
        % (serial["total"] * 1e3, len(serial["result"].answers),
           serial["result"].stats.facts_derived),
    ]
    for workers, timed in sorted(data["sides"].items()):
        extras = timed["result"].extras
        lines.append(
            "workers=%d         : %.1f ms (%.2fx), plan %.1f ms + "
            "execute %.1f ms, %d barriers, %d exchange bytes"
            % (workers, timed["total"] * 1e3,
               serial["total"] / timed["total"],
               timed["plan"] * 1e3, timed["execute"] * 1e3,
               extras["barriers"], extras["exchange_bytes"])
        )
    gates = []
    if SMOKE:
        gates.append("smoke size: speedup/overhead claims off")
    if not MULTICORE:
        gates.append("<4 cores: 4-worker speedup claim off")
    if gates:
        lines.append("claims gated      : " + "; ".join(gates))
    return "\n".join(lines)


@pytest.mark.parametrize("workers", POOL_SIZES)
def test_s7_time_parallel(benchmark, workers, measurements):
    benchmark(make_timer(WORKLOAD.query, make_db(), "parallel",
                         workers=workers))


def test_s7_time_serial_oracle(benchmark, measurements):
    benchmark(make_timer(WORKLOAD.query, make_db(), "parallel",
                         workers=1, inline=True))


def test_s7_counters_identical_at_every_pool_size(measurements,
                                                  benchmark):
    def check():
        serial = measurements["serial"]["result"]
        for workers, timed in measurements["sides"].items():
            result = timed["result"]
            assert result.answers == serial.answers, workers
            assert (result.stats.as_dict()
                    == serial.stats.as_dict()), workers

    assert_claims(benchmark, check)


def test_s7_round_structure_worker_invariant(measurements, benchmark):
    def check():
        barriers = {
            timed["result"].extras["barriers"]
            for timed in measurements["sides"].values()
        }
        assert len(barriers) == 1, barriers
        # The serial oracle crosses no process barriers and ships no
        # bytes; the multiprocess runs account both on every run.
        serial = measurements["serial"]["result"]
        assert serial.extras["exchange_bytes"] == 0
        for timed in measurements["sides"].values():
            extras = timed["result"].extras
            assert extras["barriers"] > 0
            assert extras["exchange_bytes"] > 0

    assert_claims(benchmark, check)


def test_s7_phase_split_accounts_wall_time(measurements, benchmark):
    def check():
        for timed in measurements["sides"].values():
            plan, execute = phase_split(timed["result"])
            assert plan >= 0.0 and execute > 0.0
            # The two phases are measured inside run(); together they
            # must make up essentially all of the strategy's own
            # elapsed time (result construction is the remainder).
            assert plan + execute <= timed["result"].elapsed * 1.001
            assert (plan + execute) >= timed["result"].elapsed * 0.5

    assert_claims(benchmark, check)


@pytest.mark.skipif(
    SMOKE, reason="overhead ceiling is claimed at full size only"
)
def test_s7_one_worker_overhead_bounded(measurements, benchmark):
    def check():
        serial = measurements["serial"]["total"]
        one = measurements["sides"][1]["total"]
        overhead = one / serial - 1.0
        assert overhead <= OVERHEAD_CEILING, (
            "1-worker overhead %.1f%% exceeds %.0f%%"
            % (overhead * 100, OVERHEAD_CEILING * 100)
        )

    assert_claims(benchmark, check)


@pytest.mark.skipif(
    SMOKE or not MULTICORE,
    reason="speedup is claimed at full size on >=4 cores only",
)
def test_s7_four_worker_speedup(measurements, benchmark):
    def check():
        serial = measurements["serial"]["total"]
        four = measurements["sides"][4]["total"]
        assert serial / four >= SPEEDUP_FLOOR, (
            "4-worker speedup %.2fx below %.1fx floor"
            % (serial / four, SPEEDUP_FLOOR)
        )

    assert_claims(benchmark, check)
