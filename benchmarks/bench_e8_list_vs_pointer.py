"""E8 — §3.1/§3.4: list path arguments vs the pointer implementation.

"The use of lists could result in a performance overhead ... We will
later propose a more efficient technique using pointers."  The
list-based program re-materializes each path prefix as a value; the
pointer table stores one id per node and unwinds by direct access.

Workload: the two-rule program of Example 3 over alternating chains of
growing depth (every level has a flat crossing, so answers exist at
all depths and both phases do real work).

Shape asserted: pointer counting does less work than the list-based
extended program at every depth, and the gap grows with depth.
"""

import pytest

from conftest import register_table
from _common import assert_claims, make_timer, work_of

from repro.bench import matrix_table, run_matrix
from repro.data.workloads import WORKLOADS

WORKLOAD = WORKLOADS["multi_rule"]
METHODS = ["encoded_counting", "extended_counting", "pointer_counting"]
DEPTHS = [8, 16, 32, 64]


@pytest.fixture(scope="module")
def rows():
    collected = []
    for depth in DEPTHS:
        db, _source = WORKLOAD.make_db(depth=depth)
        collected.extend(
            run_matrix(WORKLOAD.query, db, METHODS,
                       label="depth=%d" % depth)
        )
    register_table(
        "e8_list_vs_pointer",
        matrix_table(
            collected,
            title="E8: [15] integer-encoded log vs Algorithm 1 lists "
                  "vs pointer implementation (§3.4)",
            baseline="extended_counting",
            extra_columns=("max_index_bits",),
        ),
    )
    return collected


def test_e8_encoded_integers_grow_exponentially(rows, benchmark):
    """§3.4 on [15]: "the size of the number grows exponentially with
    the number of steps" — bit length grows linearly with depth, so
    the value itself is exponential, while pointer rows stay
    constant-size."""

    def check():
        from _common import extras_of

        bits = [
            extras_of(rows, "depth=%d" % depth, "encoded_counting")[
                "max_index_bits"
            ]
            for depth in DEPTHS
        ]
        for depth, measured in zip(DEPTHS, bits):
            assert measured >= depth  # one digit (>= 1 bit) per step
        assert bits[-1] >= 2 * bits[1]

    assert_claims(benchmark, check)


@pytest.mark.parametrize("method", METHODS)
def test_e8_time_depth32(benchmark, method, rows):
    db, _source = WORKLOAD.make_db(depth=32)
    benchmark(make_timer(WORKLOAD.query, db, method))


def test_e8_pointer_beats_lists(rows, benchmark):
    def check():
        for depth in DEPTHS:
            label = "depth=%d" % depth
            assert work_of(rows, label, "pointer_counting") \
                < work_of(rows, label, "extended_counting")

    assert_claims(benchmark, check)


def test_e8_list_storage_quadratic_pointer_linear(rows, benchmark):
    """The overhead §3.1 warns about: each counting tuple carries its
    whole path as a value, so total list storage is quadratic in depth,
    while the pointer table stores one fixed-size triple per arc."""

    def list_storage(depth):
        from repro import extended_counting_rewrite
        from repro.engine import SemiNaiveEngine

        db, _source = WORKLOAD.make_db(depth=depth)
        rewriting = extended_counting_rewrite(WORKLOAD.query)
        engine = SemiNaiveEngine(rewriting.query.program, db)
        derived = engine.run()
        cells = 0
        for key in rewriting.counting_preds.values():
            for row in derived.get(key, ()):
                cells += len(row[-1])  # entries in the path value
        return cells

    def check():
        small, large = DEPTHS[0], DEPTHS[-1]
        scale = large / small
        storage_growth = list_storage(large) / max(1, list_storage(small))
        # Quadratic: growth well beyond the linear scale factor.
        assert storage_growth > scale * 2
        # Pointer triples grow linearly: one per arc.
        from _common import extras_of

        small_triples = extras_of(
            rows, "depth=%d" % small, "pointer_counting"
        )["counting_triples"]
        large_triples = extras_of(
            rows, "depth=%d" % large, "pointer_counting"
        )["counting_triples"]
        assert large_triples <= scale * small_triples + 1

    assert_claims(benchmark, check)
