"""E1 — Example 1 / §1: counting vs magic vs naive on same generation.

Workload: a forest of mirrored binary trees.  Only one tree is
reachable from the query constant; the others are distractors that an
unfocused (naive) evaluation pays for.  The paper's claim: binding
propagation (magic) skips irrelevant data, and the counting method
improves on magic by joining each level only with the previous one
("often yielding an order of magnitude of improvement").

Shape asserted: pointer counting < classical counting < magic < naive
in join work, with the counting-vs-magic gap growing with depth.
"""

import pytest

from conftest import register_table
from _common import assert_claims, make_timer, work_of

from repro import parse_query
from repro.bench import matrix_table, run_matrix
from repro.data.generators import sg_tree_db
from repro.data.workloads import _rename_source

QUERY = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")

METHODS = ["naive", "magic", "sup_magic", "qsq", "classical_counting",
           "pointer_counting"]
DEPTHS = [4, 6, 8]
DISTRACTORS = 3


def make_db(depth, distractors=DISTRACTORS):
    db, root = sg_tree_db(2, depth)
    db = _rename_source(db, root, "a")
    for d in range(distractors):
        extra, extra_root = sg_tree_db(2, depth)
        for key in extra.keys():
            for row in extra.get(key):
                db.relation(key[0], key[1]).add(
                    tuple("x%d_%s" % (d, v) for v in row)
                )
    return db


@pytest.fixture(scope="module")
def rows():
    collected = []
    for depth in DEPTHS:
        db = make_db(depth)
        collected.extend(
            run_matrix(QUERY, db, METHODS, label="depth=%d" % depth)
        )
    register_table(
        "e1_sg_tree",
        matrix_table(
            collected,
            title="E1: same generation, mirrored binary trees + %d "
                  "distractor trees" % DISTRACTORS,
        ),
    )
    return collected


@pytest.mark.parametrize("method", METHODS)
def test_e1_time_depth6(benchmark, method, rows):
    benchmark(make_timer(QUERY, make_db(6), method))


def test_e1_counting_beats_magic_beats_naive(rows, benchmark):
    def check():
        for depth in DEPTHS:
            label = "depth=%d" % depth
            naive = work_of(rows, label, "naive")
            magic = work_of(rows, label, "magic")
            classical = work_of(rows, label, "classical_counting")
            pointer = work_of(rows, label, "pointer_counting")
            assert magic < naive, label
            assert classical < magic, label
            assert pointer < classical, label

    assert_claims(benchmark, check)


def test_e1_counting_beats_whole_memoing_family(rows, benchmark):
    """The counting advantage holds against every memoing-family
    baseline: basic magic, supplementary magic [6] and top-down QSQ."""

    def check():
        for depth in DEPTHS:
            label = "depth=%d" % depth
            pointer = work_of(rows, label, "pointer_counting")
            assert pointer < work_of(rows, label, "sup_magic")
            assert pointer < work_of(rows, label, "qsq")

    assert_claims(benchmark, check)


def test_e1_gap_grows_with_depth(rows, benchmark):
    def check():
        ratios = []
        for depth in DEPTHS:
            label = "depth=%d" % depth
            ratios.append(
                work_of(rows, label, "magic")
                / work_of(rows, label, "pointer_counting")
            )
        assert ratios[-1] > ratios[0]
        # The paper's "order of magnitude" regime at realistic depth.
        assert ratios[-1] > 3

    assert_claims(benchmark, check)
