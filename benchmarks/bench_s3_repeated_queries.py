"""S3 — prepared queries and cross-query caching on a repeated workload.

Workload: a forest of disjoint mirrored same-generation trees, queried
with a stream of ``sg(c, Y)?`` bindings cycling over the forest roots.
A cold client re-runs the full pipeline (adornment, rewriting, rule
compilation, evaluation) for every binding; a warm client prepares the
query form once and serves repeats from an epoch-validated answer
cache, with counting sets memoized per source node.

Claims asserted:

* the warm stream is at least 3x faster than the cold stream;
* warm answers are identical to cold answers for every binding;
* a database mutation between queries invalidates the affected cache
  entries — post-mutation prepared answers match a cold re-run;
* a second prepared client sharing only the counting-table store
  reuses the memoized counting sets (phase 1 skipped);
* ``run_batch`` returns results in binding order, deterministically.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

import pytest

from conftest import register_table
from _common import assert_claims

from repro.data.workloads import WORKLOADS, forest_bindings, sg_forest
from repro.exec import AnswerCache, CountingTableStore, PreparedQuery
from repro.exec.strategies import run_strategy

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
TREES = 4
DEPTH = 5 if SMOKE else 7
QUERIES = 24 if SMOKE else 96

QUERY = WORKLOADS["sg_forest"].query


def _cold_stream(prepared, bindings, db):
    """Baseline: full run_strategy pipeline per binding."""
    started = time.perf_counter()
    results = [
        run_strategy(prepared.method, prepared.bind(binding), db)
        for binding in bindings
    ]
    return results, time.perf_counter() - started


@pytest.fixture(scope="module")
def measurements():
    db, _source = sg_forest(trees=TREES, fanout=2, depth=DEPTH)
    bindings = forest_bindings(trees=TREES, queries=QUERIES)
    cache = AnswerCache(capacity=128)
    store = CountingTableStore(capacity=64)
    prepared = PreparedQuery(
        QUERY, db, cache=cache, counting_store=store
    )

    cold_results, cold_elapsed = _cold_stream(prepared, bindings, db)

    started = time.perf_counter()
    warm_results = prepared.run_batch(bindings, db=db)
    warm_elapsed = time.perf_counter() - started

    # A second client sharing only the counting-table store: its
    # answer cache is empty, so every binding reaches the engine, but
    # phase 1 (the left-graph DFS) is served from the store.
    reuse_client = PreparedQuery(
        QUERY, db, cache=AnswerCache(capacity=128), counting_store=store
    )
    store_hits_before = store.hits
    reuse_results = reuse_client.run_batch(bindings[:TREES], db=db)
    store_hits = store.hits - store_hits_before

    # Mutate the database between queries: sg(a, Y) gains one answer.
    db.add_fact("flat", "a", "s3_new_peer")
    post_prepared = prepared.run(("a",), db=db)
    post_cold = run_strategy(
        prepared.method, prepared.bind(("a",)), db
    )

    data = {
        "db": db,
        "bindings": bindings,
        "prepared": prepared,
        "cache": cache,
        "store": store,
        "cold_results": cold_results,
        "cold_elapsed": cold_elapsed,
        "warm_results": warm_results,
        "warm_elapsed": warm_elapsed,
        "reuse_results": reuse_results,
        "store_hits": store_hits,
        "post_prepared": post_prepared,
        "post_cold": post_cold,
    }
    register_table("s3_repeated_queries", _render_table(data))
    return data


def _render_table(data):
    lines = [
        "S3: repeated queries over a %d-tree forest (depth %d, "
        "%d queries)" % (TREES, DEPTH, QUERIES),
        "method            : %s" % data["prepared"].method,
        "cold stream       : %.4fs" % data["cold_elapsed"],
        "warm stream       : %.4fs" % data["warm_elapsed"],
        "speedup           : %.1fx"
        % (data["cold_elapsed"] / max(data["warm_elapsed"], 1e-9)),
        "cache hit rate    : %.0f%%" % (100.0 * data["cache"].hit_rate),
        "counting reuse    : %d tables" % data["store_hits"],
    ]
    return "\n".join(lines)


def test_s3_time_cold(benchmark, measurements):
    db = measurements["db"]
    prepared = measurements["prepared"]
    query = prepared.bind(("a1",))
    benchmark(lambda: run_strategy(prepared.method, query, db))


def test_s3_time_warm(benchmark, measurements):
    db = measurements["db"]
    prepared = measurements["prepared"]
    benchmark(lambda: prepared.run(("a1",), db=db))


def test_s3_warm_answers_identical(measurements, benchmark):
    def check():
        cold = measurements["cold_results"]
        warm = measurements["warm_results"]
        assert len(cold) == len(warm) == QUERIES
        for cold_result, warm_result in zip(cold, warm):
            assert warm_result.answers == cold_result.answers

    assert_claims(benchmark, check)


def test_s3_warm_at_least_3x_faster(measurements, benchmark):
    def check():
        assert (
            measurements["warm_elapsed"] * 3
            <= measurements["cold_elapsed"]
        ), (
            "warm %.4fs vs cold %.4fs"
            % (measurements["warm_elapsed"], measurements["cold_elapsed"])
        )

    assert_claims(benchmark, check)


def test_s3_cache_hit_rate(measurements, benchmark):
    def check():
        cache = measurements["cache"]
        # QUERIES bindings over TREES distinct roots: everything after
        # the first cycle is a hit.
        assert cache.hits >= QUERIES - TREES
        assert cache.hit_rate >= 0.5

    assert_claims(benchmark, check)


def test_s3_counting_table_reuse(measurements, benchmark):
    def check():
        assert measurements["store_hits"] >= TREES
        for reuse, cold in zip(
            measurements["reuse_results"], measurements["cold_results"]
        ):
            assert reuse.answers == cold.answers
            assert reuse.extras.get("counting_table_reused") is True

    assert_claims(benchmark, check)


def test_s3_mutation_invalidates(measurements, benchmark):
    def check():
        post_prepared = measurements["post_prepared"]
        post_cold = measurements["post_cold"]
        # The prepared result must see the new fact, not the cache.
        assert post_prepared.stats.cache_hits == 0
        assert post_prepared.answers == post_cold.answers
        assert ("s3_new_peer",) in post_prepared.answers
        # And the pre-mutation cold answers did not contain it.
        assert ("s3_new_peer",) not in measurements["cold_results"][0].answers

    assert_claims(benchmark, check)


def test_s3_run_batch_deterministic(measurements, benchmark):
    def check():
        db = measurements["db"]
        bindings = measurements["bindings"][:8]
        prepared = measurements["prepared"]
        first = prepared.run_batch(bindings, db=db)
        second = prepared.run_batch(bindings, db=db)
        assert [r.answers for r in first] == [r.answers for r in second]
        for binding, result in zip(bindings, first):
            cold = run_strategy(
                prepared.method, prepared.bind(binding), db
            )
            assert result.answers == cold.answers

    assert_claims(benchmark, check)
