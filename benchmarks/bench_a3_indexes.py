"""A3 (ablation) — hash indexes on relations.

The §3.4 pointer method's promise ("a direct access to the memory")
presumes indexed access; the engine's relations build hash indexes on
demand for whatever argument positions a join binds.  This ablation
disables them, turning every match into a full scan, and measures the
wall-clock cost on the magic-rewritten same-generation query.  Logical
work (facts derived) is identical — only access cost changes — so this
is asserted on time, with a conservative margin.
"""

import time

import pytest

from conftest import register_table
from _common import assert_claims

from repro.bench.reporting import format_table
from repro.data.workloads import WORKLOADS
from repro.engine import EvalStats, SemiNaiveEngine
from repro.rewriting import magic_rewrite

WORKLOAD = WORKLOADS["sg_tree"]
DEPTH = 8


def make_inputs():
    db, _source = WORKLOAD.make_db(fanout=2, depth=DEPTH)
    rewriting = magic_rewrite(WORKLOAD.query)
    return db, rewriting.query.program


def run_once(db, program, use_indexes):
    working = db.copy()
    for key in working.keys():
        working.get(key).use_indexes = use_indexes
    stats = EvalStats()
    engine = SemiNaiveEngine(program, working, stats=stats)
    if not use_indexes:
        # Derived relations must scan too: flip them as they appear.
        original = engine._relation

        def unindexed_relation(key):
            relation = original(key)
            relation.use_indexes = False
            return relation

        engine._relation = unindexed_relation
    started = time.perf_counter()
    derived = engine.run()
    elapsed = time.perf_counter() - started
    facts = sum(len(rel) for rel in derived.values())
    return elapsed, facts, stats


@pytest.fixture(scope="module")
def rows():
    db, program = make_inputs()
    measurements = {}
    table_rows = []
    for use_indexes in (True, False):
        # Best of three runs to damp scheduler noise.
        best = None
        for _ in range(3):
            elapsed, facts, stats = run_once(db, program, use_indexes)
            if best is None or elapsed < best[0]:
                best = (elapsed, facts, stats)
        measurements[use_indexes] = best
        table_rows.append([
            "magic sg depth=%d" % DEPTH,
            "indexed" if use_indexes else "full scans",
            best[1],
            best[0],
        ])
    register_table(
        "a3_indexes",
        format_table(
            ["workload", "access", "facts", "best seconds"],
            table_rows,
            title="A3 (ablation): hash indexes vs full scans",
        ),
    )
    return measurements


def test_a3_time_indexed(benchmark, rows):
    db, program = make_inputs()
    benchmark.pedantic(
        lambda: run_once(db, program, True), rounds=3, iterations=1
    )


def test_a3_same_fixpoint(rows, benchmark):
    def check():
        assert rows[True][1] == rows[False][1]

    assert_claims(benchmark, check)


def test_a3_indexes_matter(rows, benchmark):
    def check():
        indexed = rows[True][0]
        scanned = rows[False][0]
        assert scanned > 3 * indexed, (indexed, scanned)

    assert_claims(benchmark, check)
