"""E5 — Example 5 / §4: cyclic databases.

The classical counting set is infinite on cyclic left-part data; the
paper's Algorithm 2 partitions the reachable arcs into ahead and back
arcs, builds a finite counting set over the ahead arcs and folds the
back-arc links into the counting tuples.

Workload: Example-5-shaped databases — a chain feeding a cycle, with a
long down corridor — at growing cycle lengths.

Shape asserted: classical counting diverges
(CountingDivergenceError); Algorithm 2 terminates, matches magic-set
answers (cross-checked by run_matrix) and does less work.
"""

import pytest

from conftest import register_table
from _common import assert_claims, error_of, extras_of, make_timer, work_of

from repro.bench import matrix_table, run_matrix
from repro.data.workloads import WORKLOADS
from repro.errors import CountingDivergenceError

WORKLOAD = WORKLOADS["sg_cyclic"]
METHODS = ["naive", "magic", "classical_counting", "magic_counting",
           "cyclic_counting"]
CASES = [
    dict(cycle_length=3, down_length=18),
    dict(cycle_length=5, down_length=30),
    dict(cycle_length=8, down_length=48),
]


@pytest.fixture(scope="module")
def rows():
    collected = []
    for params in CASES:
        db, _source = WORKLOAD.make_db(**params)
        collected.extend(
            run_matrix(
                WORKLOAD.query, db, METHODS,
                label="cycle=%d" % params["cycle_length"],
            )
        )
    register_table(
        "e5_cyclic",
        matrix_table(
            collected,
            title="E5: cyclic up relation (Example 5 shape)",
            extra_columns=("back_arcs", "counting_rows",
                           "answer_states"),
        ),
    )
    return collected


@pytest.mark.parametrize("method", ["naive", "magic", "cyclic_counting"])
def test_e5_time_cycle5(benchmark, method, rows):
    db, _source = WORKLOAD.make_db(cycle_length=5, down_length=30)
    benchmark(make_timer(WORKLOAD.query, db, method))


def test_e5_classical_diverges(rows, benchmark):
    def check():
        for params in CASES:
            error = error_of(
                rows, "cycle=%d" % params["cycle_length"],
                "classical_counting",
            )
            assert isinstance(error, CountingDivergenceError)

    assert_claims(benchmark, check)


def test_e5_algorithm2_beats_magic(rows, benchmark):
    def check():
        for params in CASES:
            label = "cycle=%d" % params["cycle_length"]
            assert work_of(rows, label, "cyclic_counting") \
                < work_of(rows, label, "magic")

    assert_claims(benchmark, check)


def test_e5_algorithm2_beats_magic_counting_hybrid(rows, benchmark):
    """§4 positions Algorithm 2 against the earlier magic-counting
    combination [16]: the hybrid already beats pure magic, and the
    uniform rewriting-based method improves on the hybrid."""

    def check():
        for params in CASES:
            label = "cycle=%d" % params["cycle_length"]
            hybrid = work_of(rows, label, "magic_counting")
            assert hybrid < work_of(rows, label, "magic")
            assert work_of(rows, label, "cyclic_counting") < hybrid

    assert_claims(benchmark, check)


def test_e5_counting_set_stays_finite(rows, benchmark):
    def check():
        for params in CASES:
            label = "cycle=%d" % params["cycle_length"]
            extras = extras_of(rows, label, "cyclic_counting")
            # One row per reachable up node: chain entry + cycle.
            assert extras["counting_rows"] == params["cycle_length"] + 1
            assert extras["back_arcs"] >= 1

    assert_claims(benchmark, check)
