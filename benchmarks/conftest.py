"""Shared infrastructure for the experiment benchmarks.

Each experiment module computes its comparison table once (module
scope), asserts the paper's qualitative claims about it, and registers
the rendered table here.  A ``pytest_terminal_summary`` hook prints all
registered tables at the end of the run — so ``pytest benchmarks/
--benchmark-only`` emits both pytest-benchmark's timing statistics and
the paper-shaped work tables — and writes each to
``benchmarks/results/<experiment>.txt``.
"""

import os

_TABLES = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def register_table(experiment_id, text):
    """Record a rendered experiment table for the terminal summary."""
    _TABLES.append((experiment_id, text))
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, "%s.txt" % experiment_id)
    with open(path, "w") as handle:
        handle.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "experiment tables (paper shapes)")
    for experiment_id, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
