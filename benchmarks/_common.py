"""Helpers shared by the experiment benchmark modules."""

from repro.exec.strategies import run_strategy


def work_of(rows, label, method):
    """The deterministic work counter for one (label, method) cell."""
    for row in rows:
        if row.label == label and row.method == method:
            if row.work is None:
                raise AssertionError(
                    "%s/%s failed: %r" % (label, method, row.error)
                )
            return row.work
    raise AssertionError("no row for %s/%s" % (label, method))


def error_of(rows, label, method):
    """The recorded error for one cell (None if it succeeded)."""
    for row in rows:
        if row.label == label and row.method == method:
            return row.error
    raise AssertionError("no row for %s/%s" % (label, method))


def extras_of(rows, label, method):
    for row in rows:
        if row.label == label and row.method == method:
            return row.extras
    raise AssertionError("no row for %s/%s" % (label, method))


def make_timer(query, db, method):
    """A zero-argument callable for pytest-benchmark."""

    def run():
        return run_strategy(method, query, db)

    return run


def assert_claims(benchmark, check):
    """Run claim assertions once under pytest-benchmark.

    Claim tests carry no timing content of their own, but they must not
    be skipped under ``--benchmark-only``; a single pedantic round keeps
    them in that run.
    """
    benchmark.pedantic(check, rounds=1, iterations=1)
