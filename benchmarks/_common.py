"""Helpers shared by the experiment benchmark modules."""

from repro.exec.strategies import run_strategy


def work_of(rows, label, method):
    """The deterministic work counter for one (label, method) cell."""
    for row in rows:
        if row.label == label and row.method == method:
            if row.work is None:
                raise AssertionError(
                    "%s/%s failed: %r" % (label, method, row.error)
                )
            return row.work
    raise AssertionError("no row for %s/%s" % (label, method))


def error_of(rows, label, method):
    """The recorded error for one cell (None if it succeeded)."""
    for row in rows:
        if row.label == label and row.method == method:
            return row.error
    raise AssertionError("no row for %s/%s" % (label, method))


def extras_of(rows, label, method):
    for row in rows:
        if row.label == label and row.method == method:
            return row.extras
    raise AssertionError("no row for %s/%s" % (label, method))


def make_timer(query, db, method, **options):
    """A zero-argument callable for pytest-benchmark.

    Extra ``options`` are forwarded to the strategy runner — the
    ``parallel`` strategy's ``workers=N`` travels this way.
    """

    def run():
        return run_strategy(method, query, db, **options)

    return run


def phase_split(result):
    """(plan_seconds, execute_seconds) for one execution result.

    Strategies with an explicit plan/execute split (the ``parallel``
    sharded fixpoint) record a ``phase_seconds`` block in their extras;
    for everything else the whole elapsed time is execution and the
    plan phase is zero — the two components always sum to (about) the
    strategy's wall time, so phase tables stay comparable across
    methods.
    """
    phases = result.extras.get("phase_seconds") or {}
    plan = phases.get("plan", 0.0)
    execute = phases.get("execute")
    if execute is None:
        execute = max(0.0, result.elapsed - plan)
    return plan, execute


def timed_phases(query, db, method, repeats=1, **options):
    """Best-of-``repeats`` wall times, split by phase.

    Returns ``{"total": s, "plan": s, "execute": s, "result": r}``
    where the phase components belong to the fastest repeat — phases
    from different repeats never mix, so ``plan + execute`` stays
    consistent with ``total``.
    """
    best = None
    for _ in range(max(1, repeats)):
        result = run_strategy(method, query, db, **options)
        if best is None or result.elapsed < best.elapsed:
            best = result
    plan, execute = phase_split(best)
    return {
        "total": best.elapsed,
        "plan": plan,
        "execute": execute,
        "result": best,
    }


def assert_claims(benchmark, check):
    """Run claim assertions once under pytest-benchmark.

    Claim tests carry no timing content of their own, but they must not
    be skipped under ``--benchmark-only``; a single pedantic round keeps
    them in that run.
    """
    benchmark.pedantic(check, rounds=1, iterations=1)
