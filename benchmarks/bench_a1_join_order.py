"""A1 (ablation) — join ordering inside the engine.

DESIGN.md's performance model assumes index nested-loop joins driven
by bound arguments; the paper's §3.4 implementation likewise relies on
bound-first access ("a direct access to the memory").  This ablation
measures what the bound-first body planner buys on a program whose
author wrote the body in the worst order, and verifies it does not
hurt the already-well-ordered rewritten programs.

Shape asserted: planning cuts work by >10x on the badly-ordered
program and changes the magic-rewritten same-generation program's
work by less than 20% (its bodies are already guard-first).
"""

import pytest

from conftest import register_table
from _common import assert_claims

from repro import parse_program, parse_query
from repro.bench.reporting import format_table
from repro.data.workloads import WORKLOADS
from repro.engine import Database, EvalStats, evaluate_program
from repro.rewriting import magic_rewrite

BAD_ORDER = parse_program(
    "ans(X) :- big(Y, Z), sel(a, Y), pick(Z, X)."
)
SIZES = [200, 800]


def bad_order_db(n):
    db = Database()
    for i in range(n):
        db.add_fact("big", i, i * 10)
    db.add_fact("sel", "a", 3)
    db.add_fact("pick", 30, "win")
    return db


def run_once(program, db, reorder):
    stats = EvalStats()
    evaluate_program(program, db, stats=stats, reorder=reorder)
    return stats


@pytest.fixture(scope="module")
def rows():
    table_rows = []
    measurements = {}
    for n in SIZES:
        db = bad_order_db(n)
        for reorder in (False, True):
            stats = run_once(BAD_ORDER, db, reorder)
            label = "planned" if reorder else "as-written"
            table_rows.append(
                ["bad-order n=%d" % n, label, stats.tuples_scanned,
                 stats.total_work]
            )
            measurements[("bad", n, reorder)] = stats

    workload = WORKLOADS["sg_tree"]
    db, _source = workload.make_db(fanout=2, depth=6)
    rewriting = magic_rewrite(workload.query)
    for reorder in (False, True):
        stats = run_once(rewriting.query.program, db, reorder)
        label = "planned" if reorder else "as-written"
        table_rows.append(
            ["magic sg depth=6", label, stats.tuples_scanned,
             stats.total_work]
        )
        measurements[("magic", reorder)] = stats

    register_table(
        "a1_join_order",
        format_table(
            ["workload", "body order", "tuples scanned", "work"],
            table_rows,
            title="A1 (ablation): bound-first join ordering",
        ),
    )
    return measurements


def test_a1_time_planned(benchmark, rows):
    db = bad_order_db(800)
    benchmark(lambda: run_once(BAD_ORDER, db, True))


def test_a1_time_as_written(benchmark, rows):
    db = bad_order_db(800)
    benchmark(lambda: run_once(BAD_ORDER, db, False))


def test_a1_planner_rescues_bad_order(rows, benchmark):
    def check():
        for n in SIZES:
            plain = rows[("bad", n, False)].tuples_scanned
            planned = rows[("bad", n, True)].tuples_scanned
            assert planned * 10 < plain

    assert_claims(benchmark, check)


def test_a1_rewritten_programs_already_ordered(rows, benchmark):
    def check():
        plain = rows[("magic", False)].total_work
        planned = rows[("magic", True)].total_work
        assert abs(planned - plain) <= 0.2 * plain

    assert_claims(benchmark, check)
