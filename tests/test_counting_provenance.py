"""Counting-table rendering and answer provenance tests."""

import pytest

from repro import parse_query
from repro.exec.counting_engine import CountingEngine
from repro.rewriting.adornment import adorn_query
from repro.rewriting.canonical import canonicalize_clique, query_constants
from repro.rewriting.support import goal_clique_of


def make_engine(query, db, **kwargs):
    adorned = adorn_query(query)
    clique, _support = goal_clique_of(adorned)
    canonical = canonicalize_clique(clique, adorned)
    return CountingEngine(
        canonical,
        adorned.goal.key,
        query_constants(adorned.goal),
        db.get,
        **kwargs,
    )


class TestRender:
    def test_example5_table_matches_paper(self, sg_query, example5_db):
        engine = make_engine(sg_query, example5_db)
        engine.build_counting_set()
        text = engine.table.render()
        # The paper's counting set: o1..o5 with these predecessor sets.
        assert "o1 : (a, {(r0, [], nil)})" in text
        assert "o2 : (b, {(r1, [], o1)})" in text
        assert "o3 : (c, {(r1, [], o2)})" in text
        # d has o3 (ahead) and o5 (back); e has o4 and o2 (forward).
        d_line = [l for l in text.splitlines() if l.startswith("o4")][0]
        assert "o3" in d_line and "o5" in d_line
        e_line = [l for l in text.splitlines() if l.startswith("o5")][0]
        assert "o4" in e_line and "o2" in e_line

    def test_shared_values_rendered(self, example4_query, example4_db_a):
        engine = make_engine(example4_query, example4_db_a)
        engine.build_counting_set()
        text = engine.table.render()
        assert "[1]" in text  # the shared W value rides the triple


class TestAnswerPath:
    def test_path_unwinds_to_exit(self, sg_query, sg_db):
        engine = make_engine(sg_query, sg_db)
        engine.run()
        steps = engine.answer_path(("e1",))
        # Exit fired at c (two ups from a), then two down steps.
        assert len(steps) == 3
        exit_label, exit_node, exit_values = steps[0]
        assert exit_node == ("c",)
        assert exit_values == ("c1",)
        final_label, final_node, final_values = steps[-1]
        assert final_node == ("a",)
        assert final_values == ("e1",)

    def test_rule_sequence_replayed_in_reverse(self, example3_query):
        from repro.engine import Database

        db = Database.from_text("""
            up1(a, b). up2(b, c).
            flat(c, m).
            down2(m, n). down1(n, o).
        """)
        engine = make_engine(example3_query, db)
        engine.run()
        steps = engine.answer_path(("o",))
        labels = [label for label, _node, _values in steps[1:]]
        # Left applied r1 then r2; the unwinding pops r2 then r1.
        assert labels == ["r2", "r1"]

    def test_cyclic_paths(self, sg_query, example5_db):
        engine = make_engine(sg_query, example5_db)
        engine.run()
        for answer, expected_len in ((("h",), 3), (("j",), 5),
                                     (("l",), 7)):
            steps = engine.answer_path(answer)
            assert len(steps) == expected_len
            assert steps[-1][1] == ("a",)

    def test_unknown_answer_raises(self, sg_query, sg_db):
        engine = make_engine(sg_query, sg_db)
        engine.run()
        with pytest.raises(KeyError):
            engine.answer_path(("nope",))

    def test_dfs_order_also_tracks_parents(self, sg_query, sg_db):
        engine = make_engine(sg_query, sg_db, answer_order="dfs")
        engine.run()
        assert len(engine.answer_path(("e1",))) == 3
