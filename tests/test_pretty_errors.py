"""Pretty-printer edge cases and the error hierarchy."""

import pytest

from repro import errors
from repro.datalog import (
    Atom,
    format_atom,
    format_program,
    format_query,
    format_rule,
    format_term,
    parse_program,
    parse_query,
    pprint,
)
from repro.datalog.pretty import format_value
from repro.datalog.terms import Compound, Constant, Variable, cons


class TestFormatValue:
    def test_nil(self):
        assert format_value(None) == "nil"

    def test_nested_tuples(self):
        assert format_value((("r1", (1,)), ("r2", ()))) == \
            "[[r1, [1]], [r2, []]]"

    def test_frozenset_sorted(self):
        assert format_value(frozenset({"b", "a"})) == "{a, b}"

    def test_plain_identifier_unquoted(self):
        assert format_value("abc") == "abc"

    def test_non_identifier_quoted(self):
        assert format_value("Hello World") == "'Hello World'"
        assert format_value("X") == "'X'"

    def test_numbers(self):
        assert format_value(42) == "42"
        assert format_value(-3) == "-3"


class TestFormatTerm:
    def test_open_list(self):
        term = cons(Constant("a"), Variable("L"))
        assert format_term(term) == "[a | L]"

    def test_cons_onto_ground_tail(self):
        term = cons(Constant("a"), Constant(("b", "c")))
        assert format_term(term) == "[a, b, c]"

    def test_arithmetic_infix(self):
        term = Compound("+", (Variable("I"), Constant(1)))
        assert format_term(term) == "I + 1"

    def test_unary_functor(self):
        term = Compound("abs", (Variable("X"),))
        assert format_term(term) == "abs(X)"


class TestFormatStructures:
    def test_zero_arity_atom(self):
        assert format_atom(Atom("flag", ())) == "flag"

    def test_fact(self):
        rule = parse_program("p(a).").rules[0]
        assert format_rule(rule) == "p(a)."

    def test_program_with_labels(self):
        program = parse_program("p(X) :- q(X).")
        text = format_program(program, show_labels=True)
        assert text.startswith("r0:")

    def test_query(self):
        query = parse_query("p(X) :- q(X). ?- p(a).")
        text = format_query(query)
        assert text.endswith("?- p(a).")

    def test_pprint_accepts_everything(self, capsys):
        query = parse_query("p(X) :- q(X), not r(X), X != a. ?- p(a).")
        pprint(query)
        pprint(query.program)
        pprint(query.program.rules[0])
        for lit in query.program.rules[0].body:
            pprint(lit)
        pprint(Variable("X"))
        out = capsys.readouterr().out
        assert "?- p(a)." in out
        assert "not r(X)" in out


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.ParseError,
            errors.SafetyError,
            errors.AnalysisError,
            errors.NotStratifiedError,
            errors.RewritingError,
            errors.NotApplicableError,
            errors.CountingDivergenceError,
            errors.EvaluationError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_not_stratified_is_analysis_error(self):
        assert issubclass(errors.NotStratifiedError, errors.AnalysisError)

    def test_counting_divergence_is_rewriting_error(self):
        assert issubclass(
            errors.CountingDivergenceError, errors.RewritingError
        )

    def test_parse_error_position(self):
        error = errors.ParseError("boom", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3
        assert error.column == 7

    def test_parse_error_without_position(self):
        error = errors.ParseError("boom")
        assert str(error) == "boom"

    def test_parse_error_line_without_column(self):
        # Regression: line-only positions used to crash __init__ with a
        # format TypeError because column was None.
        error = errors.ParseError("boom", line=3)
        assert "line 3" in str(error)
        assert "column" not in str(error)
        assert error.line == 3
        assert error.column is None

    def test_parse_error_column_without_line(self):
        error = errors.ParseError("boom", column=7)
        assert "column 7" in str(error)
        assert "line" not in str(error)

    def test_budget_errors_are_repro_but_not_evaluation_errors(self):
        # The counting executors relabel EvaluationError as divergence;
        # budget aborts must keep their own type through that path.
        for subclass in (
            errors.BudgetExceededError,
            errors.DeadlineExceeded,
            errors.FactBudgetExceeded,
            errors.RoundBudgetExceeded,
            errors.EvaluationCancelled,
            errors.ResilienceExhaustedError,
        ):
            assert issubclass(subclass, errors.ReproError)
            assert not issubclass(subclass, errors.EvaluationError)
