"""Parser tests: syntax coverage, error reporting, round-trips."""

import pytest

from repro.datalog import (
    Atom,
    Comparison,
    Negation,
    format_program,
    format_rule,
    parse_atom,
    parse_program,
    parse_query,
)
from repro.datalog.terms import Compound, Constant, Variable
from repro.errors import ParseError


class TestBasics:
    def test_fact(self):
        program = parse_program("up(a, b).")
        assert len(program) == 1
        assert program.rules[0].is_fact()

    def test_rule(self):
        program = parse_program("p(X) :- q(X), r(X).")
        rule = program.rules[0]
        assert rule.head == Atom("p", (Variable("X"),))
        assert len(rule.body) == 2

    def test_zero_arity(self):
        program = parse_program("flag. go :- flag.")
        assert program.rules[0].head.arity == 0

    def test_comments_ignored(self):
        program = parse_program("""
            % a comment
            p(a).  % trailing comment
        """)
        assert len(program) == 1

    def test_numbers(self):
        program = parse_program("c(a, 0).")
        assert program.rules[0].head.args[1] == Constant(0)

    def test_quoted_strings(self):
        program = parse_program("name(x, 'Hello World').")
        assert program.rules[0].head.args[1] == Constant("Hello World")

    def test_variables_uppercase_and_underscore(self):
        program = parse_program("p(X, _tmp) :- q(X, _tmp).")
        args = program.rules[0].head.args
        assert args[0] == Variable("X")
        assert args[1] == Variable("_tmp")


class TestLiterals:
    def test_negation(self):
        rule = parse_program("p(X) :- q(X), not r(X).").rules[0]
        assert isinstance(rule.body[1], Negation)

    def test_comparisons(self):
        rule = parse_program("p(X) :- q(X), X != a, X >= 3.").rules[0]
        ops = [lit.op for lit in rule.body[1:]]
        assert ops == ["!=", ">="]

    def test_is_arithmetic(self):
        rule = parse_program("c(X, J) :- c(X, I), J is I + 1.").rules[0]
        cmp = rule.body[1]
        assert isinstance(cmp, Comparison)
        assert cmp.op == "is"
        assert isinstance(cmp.right, Compound)
        assert cmp.right.functor == "+"

    def test_in_membership(self):
        rule = parse_program("p(A) :- s(T), A in T.").rules[0]
        assert rule.body[1].op == "in"

    def test_constant_comparison(self):
        rule = parse_program("p(X) :- q(X), a != X.").rules[0]
        cmp = rule.body[1]
        assert cmp.left == Constant("a")


class TestStructuredTerms:
    def test_empty_list(self):
        rule = parse_program("c(a, []).").rules[0]
        assert rule.head.args[1] == Constant(())

    def test_closed_list(self):
        rule = parse_program("p([a, b, 1]).").rules[0]
        from repro.datalog.terms import ground_value

        assert ground_value(rule.head.args[0]) == ("a", "b", 1)

    def test_open_list(self):
        rule = parse_program("p(X, [H | T]) :- q(X, H, T).").rules[0]
        cell = rule.head.args[1]
        assert isinstance(cell, Compound)
        assert cell.functor == "."

    def test_path_entry_pattern(self):
        rule = parse_program(
            "p(Y, L) :- q(Y1, [(r1, [W]) | L]), d(Y1, Y, W)."
        ).rules[0]
        cell = rule.body[0].args[1]
        entry = cell.args[0]
        assert entry.functor == "tuple"
        assert entry.args[0] == Constant("r1")

    def test_nil_constant(self):
        rule = parse_program("p(nil).").rules[0]
        assert rule.head.args[0] == Constant(None)

    def test_parenthesized_expression(self):
        rule = parse_program("p(J) :- q(I), J is (I + 1) * 2.").rules[0]
        expr = rule.body[1].right
        assert expr.functor == "*"


class TestQueries:
    def test_parse_query(self):
        query = parse_query("p(X) :- q(X). ?- p(a).")
        assert query.goal == Atom("p", (Constant("a"),))
        assert len(query.program) == 1

    def test_query_required(self):
        with pytest.raises(ParseError):
            parse_query("p(X) :- q(X).")

    def test_single_query_only(self):
        with pytest.raises(ParseError):
            parse_query("?- p(a). ?- p(b).")

    def test_no_query_in_program(self):
        with pytest.raises(ParseError):
            parse_program("?- p(a).")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            parse_program("p('oops).")

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("p(a)")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            parse_program("p(a) & q(b).")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("p(a).\nq(#).")
        assert info.value.line == 2

    def test_compound_constant_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(f(a)).")


class TestParseAtom:
    def test_simple(self):
        assert parse_atom("sg(a, Y)").key == ("sg", 2)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("sg(a, Y) extra")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "p(a).",
            "p(X) :- q(X), not r(X), X != a.",
            "c(X1, J) :- c(X, I), up(X, X1), J is I + 1.",
            "p(Y, L) :- q(Y1, [(r1, [W]) | L]), d(Y1, Y, W).",
            "c(a, []).",
            "p(X) :- q(X, [a, b, 1]).",
        ],
    )
    def test_format_then_reparse(self, text):
        program = parse_program(text)
        rendered = format_program(program)
        reparsed = parse_program(rendered)
        assert reparsed.rules[0].head == program.rules[0].head
        assert reparsed.rules[0].body == program.rules[0].body

    def test_format_rule_matches_text(self):
        rule = parse_program("p(X) :- q(X), r(X).").rules[0]
        assert format_rule(rule) == "p(X) :- q(X), r(X)."
