"""Answer-phase exploration order: BFS vs Bushy-Depth-First ([7])."""

import pytest

from repro import Database, parse_query
from repro.exec.counting_engine import CountingEngine
from repro.rewriting.adornment import adorn_query
from repro.rewriting.canonical import canonicalize_clique, query_constants
from repro.rewriting.support import goal_clique_of


def make_engine(query, db, order):
    adorned = adorn_query(query)
    clique, support = goal_clique_of(adorned)
    assert not support
    canonical = canonicalize_clique(clique, adorned)
    return CountingEngine(
        canonical,
        adorned.goal.key,
        query_constants(adorned.goal),
        db.get,
        answer_order=order,
    )


SG = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")


def wide_db(width=8, depth=6):
    """Branching ``down`` relation: each unwinding step fans out, so
    breadth-first exploration carries a whole level of states at once
    while depth-first drains one branch at a time."""
    db = Database()
    prev = "a"
    for i in range(depth):
        db.add_fact("up", prev, "x%d" % i)
        prev = "x%d" % i
    db.add_fact("flat", prev, "m0")
    counter = [0]
    frontier = ["m0"]
    for _level in range(depth):
        next_frontier = []
        for node in frontier:
            for _child in range(2):
                counter[0] += 1
                child = "m%d" % counter[0]
                db.add_fact("down", node, child)
                next_frontier.append(child)
        frontier = next_frontier[: width * 4]
    return db


class TestOrders:
    def test_same_answers(self):
        db = wide_db()
        bfs = make_engine(SG, db, "bfs")
        dfs = make_engine(SG, db, "dfs")
        assert bfs.run() == dfs.run()

    def test_same_state_count(self):
        db = wide_db()
        bfs = make_engine(SG, db, "bfs")
        dfs = make_engine(SG, db, "dfs")
        bfs.run()
        dfs.run()
        assert bfs.state_count == dfs.state_count

    def test_dfs_frontier_smaller(self):
        db = wide_db(width=12, depth=8)
        bfs = make_engine(SG, db, "bfs")
        dfs = make_engine(SG, db, "dfs")
        bfs.run()
        dfs.run()
        assert dfs.max_frontier < bfs.max_frontier

    def test_same_answers_on_cycles(self, example5_db):
        bfs = make_engine(SG, example5_db, "bfs")
        dfs = make_engine(SG, example5_db, "dfs")
        assert bfs.run() == dfs.run() == frozenset(
            {("h",), ("j",), ("l",)}
        )

    def test_invalid_order_rejected(self):
        db = wide_db()
        with pytest.raises(ValueError):
            make_engine(SG, db, "random")
