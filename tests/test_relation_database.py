"""Relation storage, indexing and database tests."""

import pytest

from repro.engine.relation import WILDCARD, EmptyRelation, Relation
from repro.engine.database import Database


class TestRelation:
    def test_add_and_len(self):
        rel = Relation("p", 2)
        assert rel.add(("a", "b"))
        assert not rel.add(("a", "b"))
        assert len(rel) == 1

    def test_arity_checked(self):
        rel = Relation("p", 2)
        with pytest.raises(ValueError):
            rel.add(("a",))

    def test_match_all(self):
        rel = Relation("p", 2)
        rel.add(("a", "b"))
        rel.add(("a", "c"))
        pattern = (WILDCARD, WILDCARD)
        assert sorted(rel.match(pattern)) == [("a", "b"), ("a", "c")]

    def test_match_bound_first(self):
        rel = Relation("p", 2)
        rel.add(("a", "b"))
        rel.add(("x", "y"))
        assert list(rel.match(("a", WILDCARD))) == [("a", "b")]

    def test_match_fully_bound(self):
        rel = Relation("p", 2)
        rel.add(("a", "b"))
        assert list(rel.match(("a", "b"))) == [("a", "b")]
        assert list(rel.match(("a", "z"))) == []

    def test_index_updated_after_add(self):
        rel = Relation("p", 2)
        rel.add(("a", "b"))
        # Force index creation, then add more rows.
        list(rel.match(("a", WILDCARD)))
        rel.add(("a", "c"))
        assert sorted(rel.match(("a", WILDCARD))) == [("a", "b"), ("a", "c")]

    def test_match_pattern_arity_checked(self):
        rel = Relation("p", 2)
        with pytest.raises(ValueError):
            list(rel.match(("a",)))

    def test_none_is_a_value_not_wildcard(self):
        rel = Relation("p", 1)
        rel.add((None,))
        rel.add(("a",))
        assert list(rel.match((None,))) == [(None,)]

    def test_copy_is_independent(self):
        rel = Relation("p", 1)
        rel.add(("a",))
        clone = rel.copy()
        clone.add(("b",))
        assert len(rel) == 1
        assert len(clone) == 2

    def test_add_all_reports_new(self):
        rel = Relation("p", 1)
        rel.add(("a",))
        added = rel.add_all([("a",), ("b",)])
        assert added == [("b",)]

    def test_contains(self):
        rel = Relation("p", 1)
        rel.add(("a",))
        assert ("a",) in rel
        assert ("b",) not in rel

    def test_structured_values(self):
        rel = Relation("c", 2)
        rel.add(("a", (("r1", (1,)),)))
        assert list(rel.match(("a", WILDCARD)))

    def test_unindexed_scan_mode(self):
        rel = Relation("p", 2, use_indexes=False)
        rel.add(("a", "b"))
        rel.add(("a", "c"))
        rel.add(("z", "w"))
        assert sorted(rel.match(("a", WILDCARD))) == [("a", "b"),
                                                      ("a", "c")]
        assert list(rel.match(("a", "c"))) == [("a", "c")]
        assert rel._indexes == {}
        clone = rel.copy()
        assert not clone.use_indexes


class TestEmptyRelation:
    def test_behaves_empty(self):
        rel = EmptyRelation("p", 2)
        assert len(rel) == 0
        assert list(rel.match((WILDCARD, WILDCARD))) == []
        assert ("a", "b") not in rel


class TestDatabase:
    def test_add_fact(self):
        db = Database()
        db.add_fact("up", "a", "b")
        assert ("a", "b") in db.relation("up", 2)

    def test_from_facts(self):
        db = Database.from_facts([("up", ("a", "b")), ("up", ("b", "c"))])
        assert len(db.relation("up", 2)) == 2

    def test_from_text(self):
        db = Database.from_text("up(a, b). flat(c, 1).")
        assert ("c", 1) in db.relation("flat", 2)

    def test_from_text_rejects_rules(self):
        with pytest.raises(ValueError):
            Database.from_text("p(X) :- q(X).")

    def test_get_missing_is_empty(self):
        db = Database()
        assert len(db.get(("nope", 3))) == 0

    def test_same_name_different_arity(self):
        db = Database()
        db.add_fact("p", "a")
        db.add_fact("p", "a", "b")
        assert len(db.relation("p", 1)) == 1
        assert len(db.relation("p", 2)) == 1

    def test_constants(self):
        db = Database.from_text("up(a, b). down(b, 3).")
        assert db.constants() == {"a", "b", 3}
        assert db.constants([("up", 2)]) == {"a", "b"}

    def test_total_facts(self):
        db = Database.from_text("up(a, b). up(b, c). flat(a, a).")
        assert db.total_facts() == 3

    def test_copy_independent(self):
        db = Database.from_text("up(a, b).")
        clone = db.copy()
        clone.add_fact("up", "b", "c")
        assert db.total_facts() == 1
        assert clone.total_facts() == 2
