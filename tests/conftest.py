"""Shared fixtures: the paper's example programs and databases."""

import pytest

from repro import Database, parse_query
from repro.engine.faults import FaultInjector


@pytest.fixture
def fault_injector():
    """A fresh deterministic FaultInjector, force-uninstalled on teardown.

    Tests arm it (``raise_mid_fixpoint``/``delay_probes``/
    ``corrupt_copies``) and enter it as a context manager; the teardown
    uninstall is a safety net for tests that fail while installed.
    """
    injector = FaultInjector(seed=0)
    yield injector
    injector.uninstall()


@pytest.fixture
def sg_query():
    """Example 1: the same-generation program with query sg(a, Y)."""
    return parse_query("""
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
        ?- sg(a, Y).
    """)


@pytest.fixture
def sg_db():
    """A small acyclic same-generation database."""
    return Database.from_text("""
        up(a, b). up(b, c).
        flat(c, c1). flat(b, b1). flat(z, z1).
        down(c1, d1). down(d1, e1). down(b1, f1).
    """)


@pytest.fixture
def example3_query():
    """Example 3: two recursive rules."""
    return parse_query("""
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up1(X, X1), sg(X1, Y1), down1(Y1, Y).
        sg(X, Y) :- up2(X, X1), sg(X1, Y1), down2(Y1, Y).
        ?- sg(a, Y).
    """)


@pytest.fixture
def example4_query():
    """Example 4: shared variables between left and right parts."""
    return parse_query("""
        p(X, Y) :- flat(X, Y).
        p(X, Y) :- up1(X, X1, W), p(X1, Y1), down1(Y1, Y, W).
        p(X, Y) :- up2(X, X1), p(X1, Y1), down2(Y1, Y, X).
        ?- p(a, Y).
    """)


@pytest.fixture
def example4_db_a():
    return Database.from_text("""
        up1(a, b, 1). flat(b, c). down1(c, d, 2). down1(c, e, 1).
    """)


@pytest.fixture
def example4_db_b():
    return Database.from_text("""
        up2(a, b). flat(b, c). down2(c, d, b). down2(c, e, a).
    """)


@pytest.fixture
def example5_db():
    """The exact cyclic database of Example 5."""
    return Database.from_text("""
        up(a, b). up(b, c). up(c, d). up(d, e). up(e, d). up(b, e).
        flat(e, f).
        down(f, g). down(g, h). down(h, i). down(i, j). down(j, k).
        down(k, l).
    """)


@pytest.fixture
def example6_query():
    """Example 6: a mixed-linear program."""
    return parse_query("""
        p(X, Y) :- flat(X, Y).
        p(X, Y) :- up(X, X1), p(X1, Y).
        p(X, Y) :- p(X, Y1), down(Y1, Y).
        ?- p(a, Y).
    """)


@pytest.fixture
def example6_db():
    return Database.from_text("""
        up(a, b). up(b, c). flat(c, u). flat(b, v).
        down(u, w). down(w, x). down(v, y).
    """)
