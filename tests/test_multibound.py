"""Queries with several bound arguments: counting-set nodes are value
*tuples*, not scalars.

The canonical form allows the bound list ``X`` to have any width; the
counting table keys rows by the whole tuple.  This suite runs a
two-bound-argument same-generation variant through every strategy.
"""

import pytest

from repro import Database, parse_query
from repro.errors import ReproError
from repro.exec.strategies import STRATEGIES, run_naive, run_strategy

# Nodes are (city, line) pairs; a trip segment moves both coordinates.
QUERY = parse_query("""
    conn(C, L, Y) :- hub(C, L, Y).
    conn(C, L, Y) :- leg(C, L, C1, L1), conn(C1, L1, Y1), ret(Y1, Y).
    ?- conn(paris, metro, Y).
""")


def make_db(depth=6):
    db = Database()
    cities = ["paris", "lyon", "nice", "lille", "metz", "brest", "dijon"]
    lines = ["metro", "tgv"]
    for i in range(depth):
        db.add_fact(
            "leg",
            cities[i % len(cities)], lines[i % 2],
            cities[(i + 1) % len(cities)], lines[(i + 1) % 2],
        )
    db.add_fact("hub", cities[depth % len(cities)],
                lines[depth % 2], "h0")
    for i in range(depth):
        db.add_fact("ret", "h%d" % i, "h%d" % (i + 1))
    # Unreachable clutter.
    db.add_fact("leg", "oslo", "tram", "bergen", "tram")
    db.add_fact("hub", "oslo", "tram", "x0")
    return db


class TestTwoBoundArguments:
    @pytest.mark.parametrize(
        "method",
        ["magic", "sup_magic", "classical_counting",
         "extended_counting", "reduced_counting", "pointer_counting",
         "cyclic_counting", "magic_counting", "encoded_counting"],
    )
    def test_matches_naive(self, method):
        db = make_db()
        expected = run_naive(QUERY, db).answers
        assert expected  # non-degenerate
        result = run_strategy(method, QUERY, db)
        assert result.answers == expected

    def test_counting_rows_are_pair_nodes(self):
        from repro.exec.strategies import run_pointer_counting

        db = make_db()
        result = run_pointer_counting(QUERY, db)
        # depth legs + source: one row per (city, line) pair reached.
        assert result.extras["counting_rows"] == 7

    def test_cyclic_pairs(self):
        # leg relation cycles through (city, line) pairs.
        db = Database()
        db.add_fact("leg", "paris", "metro", "lyon", "tgv")
        db.add_fact("leg", "lyon", "tgv", "paris", "metro")
        db.add_fact("hub", "lyon", "tgv", "h0")
        for i in range(8):
            db.add_fact("ret", "h%d" % i, "h%d" % (i + 1))
        expected = run_naive(QUERY, db).answers
        assert run_strategy("cyclic_counting", QUERY, db).answers \
            == expected
        assert run_strategy("magic_counting", QUERY, db).answers \
            == expected
        with pytest.raises(ReproError):
            run_strategy("classical_counting", QUERY, db)

    def test_magic_seed_width(self):
        from repro.rewriting import magic_rewrite

        rewriting = magic_rewrite(QUERY)
        assert rewriting.seed.head.arity == 2

    def test_counting_seed_width(self):
        from repro.rewriting import extended_counting_rewrite

        rewriting = extended_counting_rewrite(QUERY)
        seed = rewriting.counting_rules[0]
        assert seed.head.arity == 3  # two bound values + path
