"""Random linear *programs* (not just random data) against naive.

Programs are assembled from a pool of rule templates — general,
right-linear, left-linear, shared-variable, bound-head-in-right —
over a shared set of base predicates, then evaluated on random
databases.  Every applicable strategy must agree with naive
evaluation; this is the broadest executable form of Theorems 1-3.
"""

import random

import pytest

from repro import Database, parse_query
from repro.exec.strategies import run_naive, run_strategy

#: Rule templates over base predicates u1/u2 (left), d1/d2 (right),
#: uw/dw (ternary, shared variable), f (exit).
TEMPLATES = [
    "p(X, Y) :- u1(X, X1), p(X1, Y1), d1(Y1, Y).",
    "p(X, Y) :- u2(X, X1), p(X1, Y1), d2(Y1, Y).",
    "p(X, Y) :- u1(X, X1), p(X1, Y).",                 # right-linear
    "p(X, Y) :- p(X, Y1), d2(Y1, Y).",                 # left-linear
    "p(X, Y) :- uw(X, X1, W), p(X1, Y1), dw(Y1, Y, W).",  # shared var
    "p(X, Y) :- u2(X, X1), p(X1, Y1), d1(Y1, Y), d2(Y, Z).",  # extra join
]

METHODS = ("magic", "sup_magic", "cyclic_counting", "magic_counting")


def build_query(rule_indexes):
    rules = ["p(X, Y) :- f(X, Y)."]
    rules.extend(TEMPLATES[i] for i in rule_indexes)
    return parse_query("\n".join(rules) + "\n?- p(a, Y).")


def build_db(rng, nodes=7):
    db = Database()

    def n(side, i):
        return "%s%d" % (side, i)

    for pred, side_a, side_b, ternary in (
        ("u1", "x", "x", False), ("u2", "x", "x", False),
        ("d1", "y", "y", False), ("d2", "y", "y", False),
        ("uw", "x", "x", True), ("dw", "y", "y", True),
    ):
        for _ in range(rng.randrange(0, 2 * nodes)):
            a = n(side_a, rng.randrange(nodes))
            b = n(side_b, rng.randrange(nodes))
            if ternary:
                db.add_fact(pred, a, b, rng.randrange(3))
            else:
                db.add_fact(pred, a, b)
    for _ in range(rng.randrange(1, nodes)):
        db.add_fact("f", n("x", rng.randrange(nodes)),
                    n("y", rng.randrange(nodes)))
    db.add_fact("u1", "a", "x0")
    db.add_fact("u2", "a", "x1")
    return db


@pytest.mark.parametrize("seed", range(30))
def test_random_program_random_data(seed):
    rng = random.Random(seed)
    rule_count = rng.randrange(1, 4)
    rule_indexes = [
        rng.randrange(len(TEMPLATES)) for _ in range(rule_count)
    ]
    query = build_query(rule_indexes)
    db = build_db(rng)
    expected = run_naive(query, db).answers
    for method in METHODS:
        result = run_strategy(method, query, db)
        assert result.answers == expected, (
            "seed=%d rules=%r method=%s" % (seed, rule_indexes, method)
        )


@pytest.mark.parametrize("seed", range(15))
def test_random_program_acyclic_data(seed):
    """Acyclic left graphs additionally exercise the list, pointer and
    reduced variants (Theorem 1 / Theorem 3)."""
    rng = random.Random(1000 + seed)
    rule_indexes = [
        rng.randrange(len(TEMPLATES))
        for _ in range(rng.randrange(1, 4))
    ]
    query = build_query(rule_indexes)
    db = Database()
    nodes = 7

    def forward_pairs(count):
        pairs = []
        for _ in range(count):
            i = rng.randrange(nodes - 1)
            j = rng.randrange(i + 1, nodes)
            pairs.append((i, j))
        return pairs

    for pred in ("u1", "u2"):
        for i, j in forward_pairs(rng.randrange(0, 2 * nodes)):
            db.add_fact(pred, "x%d" % i, "x%d" % j)
    for i, j in forward_pairs(rng.randrange(0, 2 * nodes)):
        db.add_fact("uw", "x%d" % i, "x%d" % j, rng.randrange(3))
    for pred, ternary in (("d1", False), ("d2", False), ("dw", True)):
        for _ in range(rng.randrange(0, 2 * nodes)):
            a = "y%d" % rng.randrange(nodes)
            b = "y%d" % rng.randrange(nodes)
            if ternary:
                db.add_fact(pred, a, b, rng.randrange(3))
            else:
                db.add_fact(pred, a, b)
    for _ in range(rng.randrange(1, nodes)):
        db.add_fact("f", "x%d" % rng.randrange(nodes),
                    "y%d" % rng.randrange(nodes))
    db.add_fact("u1", "a", "x0")

    expected = run_naive(query, db).answers
    # The u-side only has forward arcs, so the left graph is acyclic
    # and every counting variant must apply without a ReproError.
    for method in ("extended_counting", "reduced_counting",
                   "pointer_counting") + METHODS:
        result = run_strategy(method, query, db)
        assert result.answers == expected, (
            "seed=%d rules=%r method=%s" % (seed, rule_indexes, method)
        )
