"""``to_text``/``from_text`` round-trip over adversarial constants.

:func:`repro.datalog.pretty.format_value` promises to be the inverse
of the parser's constant syntax; these tests hold it to that over the
values an EDB can actually store — strings (quoting, doubled-quote
escapes, reserved words, embedded newlines), integers, ``nil``, and
nested tuples.  (Frozensets are internal to the Algorithm 2 evaluator
and never appear as EDB constants, so they are out of scope here.)

The property: for any database built from such values,

    ``Database.from_text(db.to_text())`` equals ``db`` relation by
    relation, and renders byte-identical text.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.datalog.pretty import RESERVED_WORDS

# Every historical offender in one list: reserved words that must stay
# *strings* when quoted, the quote/escape family, lexer specials
# (comment lead, punctuation, whitespace, newlines), shapes that look
# like other token kinds (numbers, variables), and non-ASCII.
ADVERSARIAL_STRINGS = [
    "nil", "not", "is", "in",
    "", "it's", "it''s", "'quoted'", "'", "''",
    "a,b", "a(b)", "a)b", "[brackets]", "|pipe",
    "%comment", ". dot", ":- rule", "?- query",
    "with space", "line\nbreak", "tab\there",
    "123", "123abc", "-7", "UPPER", "Xvar", "_under",
    "ünïcode", "nil ",
]

scalars = st.one_of(
    st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
    st.none(),
    st.sampled_from(ADVERSARIAL_STRINGS),
    st.text(
        alphabet=st.characters(
            min_codepoint=32, max_codepoint=0x2FF
        ),
        max_size=20,
    ),
)

values = st.recursive(
    scalars,
    lambda inner: st.tuples(inner) | st.tuples(inner, inner),
    max_leaves=4,
)

facts = st.lists(
    st.tuples(
        st.sampled_from(["p", "q", "edge"]),
        st.lists(values, min_size=1, max_size=3).map(tuple),
    ),
    max_size=12,
)


def assert_round_trips(db):
    text = db.to_text()
    parsed = Database.from_text(text)
    assert parsed.to_text() == text
    assert parsed.keys() == db.keys()
    for key in db.keys():
        assert (
            parsed.relation(*key).tuples == db.relation(*key).tuples
        ), "relation %s/%d diverged through text" % key


class TestAdversarialConstants:
    def test_every_known_offender_survives(self):
        db = Database()
        for index, value in enumerate(ADVERSARIAL_STRINGS):
            db.add_fact("p", value, index)
        assert_round_trips(db)

    def test_reserved_words_stay_strings(self):
        # The printer quotes them; the parser must NOT collapse the
        # quoted form back into the keyword (nil → None especially).
        db = Database()
        for word in sorted(RESERVED_WORDS):
            db.add_fact("w", word)
        parsed = Database.from_text(db.to_text())
        assert parsed.relation("w", 1).tuples == {
            (word,) for word in RESERVED_WORDS
        }

    def test_bare_nil_is_still_none(self):
        parsed = Database.from_text("p(nil). q('nil').")
        assert parsed.relation("p", 1).tuples == {(None,)}
        assert parsed.relation("q", 1).tuples == {("nil",)}

    def test_negative_integers_and_zero(self):
        db = Database()
        for n in (-1, 0, 7, -(10 ** 12)):
            db.add_fact("n", n)
        assert_round_trips(db)

    def test_nested_tuples(self):
        db = Database()
        db.add_fact("t", ("r1", ("w", 3), None, "nil"))
        db.add_fact("t", ((("deep",),),))
        assert_round_trips(db)


class TestRoundTripProperty:
    @settings(max_examples=150, deadline=None)
    @given(facts)
    def test_any_database_round_trips(self, fact_list):
        db = Database()
        for name, row in fact_list:
            db.add_fact(name, *row)
        assert_round_trips(db)

    @settings(max_examples=150, deadline=None)
    @given(st.lists(scalars, min_size=1, max_size=4))
    def test_single_fact_round_trips(self, row):
        db = Database()
        db.add_fact("p", *row)
        assert_round_trips(db)
