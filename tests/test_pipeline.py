"""Unified optimizer (pipeline) tests."""

import pytest

from repro import Database, optimize, parse_query
from repro.rewriting.pipeline import choose_method


class TestChooseMethod:
    def test_mixed_linear_reduces(self, example6_query, example6_db):
        name, reason, _ = choose_method(example6_query, example6_db)
        assert name == "reduced_counting"
        assert "mixed-linear" in reason

    def test_acyclic_pointer(self, sg_query, sg_db):
        name, _reason, _ = choose_method(sg_query, sg_db)
        assert name == "pointer_counting"

    def test_cyclic_algorithm2(self, sg_query, example5_db):
        name, _reason, _ = choose_method(sg_query, example5_db)
        assert name == "cyclic_counting"

    def test_no_db_defaults_to_cyclic(self, sg_query):
        name, _reason, _ = choose_method(sg_query)
        assert name == "cyclic_counting"

    def test_nonlinear_falls_back_to_magic(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        name, reason, _ = choose_method(query)
        assert name == "magic"
        assert "non-linear" in reason or "not" in reason

    def test_base_goal_naive(self):
        query = parse_query("p(X) :- q(X). ?- arc(a, Y).")
        name, _reason, _ = choose_method(query)
        assert name == "naive"

    def test_non_recursive_goal_magic(self):
        query = parse_query("""
            grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
            ?- grandparent(a, Z).
        """)
        name, _reason, _ = choose_method(query)
        assert name == "magic"

    def test_no_exit_rule_falls_back(self):
        query = parse_query("""
            p(X, Y) :- up(X, X1), p(X1, Y).
            ?- p(a, Y).
        """)
        name, _reason, _ = choose_method(query)
        assert name == "magic"

    def test_type_checked(self):
        with pytest.raises(TypeError):
            choose_method("?- p(a).")


class TestOptimize:
    def test_auto_executes(self, sg_query, sg_db):
        plan = optimize(sg_query, sg_db)
        result = plan.execute(sg_db)
        assert result.answers == {("e1",), ("f1",)}
        assert plan.explain().startswith(plan.method)

    def test_forced_method(self, sg_query, sg_db):
        plan = optimize(sg_query, method="magic")
        assert plan.method == "magic"
        assert plan.execute(sg_db).answers == {("e1",), ("f1",)}

    def test_unknown_method_rejected(self, sg_query):
        with pytest.raises(ValueError):
            optimize(sg_query, method="quantum")

    def test_auto_matches_naive_everywhere(self):
        from repro.data import WORKLOADS
        from repro.exec.strategies import run_naive

        for workload in WORKLOADS.values():
            db, _source = workload.make_db()
            plan = optimize(workload.query, db)
            result = plan.execute(db)
            naive = run_naive(workload.query, db)
            assert result.answers == naive.answers, workload.name

    def test_plan_repr(self, sg_query, sg_db):
        plan = optimize(sg_query, sg_db)
        assert "pointer_counting" in repr(plan)
