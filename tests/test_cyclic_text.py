"""Structural tests for the Algorithm 2 program rendering."""

from repro.rewriting.cyclic import cyclic_counting_program_text


class TestExample5Rendering:
    def text(self, sg_query):
        return cyclic_counting_program_text(sg_query)

    def test_seed(self, sg_query):
        assert "c_sg__bf(a, {(r0, [], nil)})." in self.text(sg_query)

    def test_counting_rule_uses_object_id(self, sg_query):
        text = self.text(sg_query)
        assert "Id : c_sg__bf(X, _)" in text
        assert "<(" in text  # grouping set term

    def test_weak_stratification_guard(self, sg_query):
        # The ¬(ahead(W, X1), W != X, ¬ c(W, _)) guard of Algorithm 2.
        text = self.text(sg_query)
        assert "not (ahead_" in text
        assert "not c_sg__bf(W, _)" in text

    def test_cycle_rule(self, sg_query):
        text = self.text(sg_query)
        assert "cycle_sg__bf" in text
        assert "back_" in text

    def test_predecessor_closure_f(self, sg_query):
        text = self.text(sg_query)
        assert "f(A, S) :-" in text
        assert "if(cycle_sg__bf(X, S2) then S = S1 + S2 else S = S1)" \
            in text

    def test_modified_rules_navigate_sets(self, sg_query):
        text = self.text(sg_query)
        assert "in T" in text
        assert "f(A, S)" in text

    def test_query_goal(self, sg_query):
        assert "?- sg__bf(Y, {(r0, [], nil)})." in self.text(sg_query)


class TestOtherPrograms:
    def test_shared_variables_rendered(self, example4_query):
        text = cyclic_counting_program_text(example4_query)
        assert "[W]" in text

    def test_bound_head_var_keeps_counting_atom(self, example4_query):
        text = cyclic_counting_program_text(example4_query)
        # The D_r != {} rule keeps an object-id counting goal in the
        # modified rule body.
        modified = [
            line for line in text.splitlines()
            if line.startswith("p__bf(") and "down2" in line
        ]
        assert modified and "A : c_p__bf(X, _)" in modified[0]

    def test_left_linear_rules_skipped_in_counting(self, example6_query):
        text = cyclic_counting_program_text(example6_query)
        counting_lines = [
            line for line in text.splitlines()
            if line.startswith("c_p__bf(") and ":-" in line
        ]
        # Only the right-linear rule contributes a counting rule.
        assert len(counting_lines) == 1
