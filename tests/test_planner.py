"""Join-order planner tests."""

import pytest

from repro import Database, parse_program
from repro.datalog import format_rule
from repro.engine import EvalStats, evaluate_program
from repro.engine.planner import reorder_body, reorder_program_rules


def rule_of(text):
    return parse_program(text).rules[0]


class TestReorderBody:
    def test_constant_atom_first(self):
        rule = rule_of("ans(X) :- big(Y, Z), sel(a, Y), pick(Z, X).")
        ordered = reorder_body(rule)
        preds = [a.pred for a in ordered.body_atoms()]
        assert preds[0] == "sel"
        # big becomes joinable through Y after sel.
        assert preds == ["sel", "big", "pick"]

    def test_comparison_placed_when_ready(self):
        rule = rule_of("p(X) :- q(X), r(X, Y), Y > 3.")
        ordered = reorder_body(rule)
        # Y > 3 must come after r (which binds Y), not at the end by
        # accident of the original order — here it already is; check a
        # shuffled variant:
        rule2 = rule_of("p(X) :- Y > 3, q(X), r(X, Y).")
        ordered2 = reorder_body(rule2)
        kinds = [type(lit).__name__ for lit in ordered2.body]
        assert kinds[-1] == "Comparison" or kinds[1] == "Comparison"
        # and the comparison never precedes r's binding of Y:
        names = [getattr(lit, "pred", "CMP") for lit in ordered2.body]
        assert names.index("CMP") > names.index("r")

    def test_negation_after_bindings(self):
        rule = rule_of("p(X) :- not bad(X), q(X).")
        ordered = reorder_body(rule)
        assert ordered.body_atoms()[0].pred == "q"

    def test_is_placed_after_right_side_bound(self):
        rule = rule_of("p(X, J) :- J is I + 1, q(X, I).")
        ordered = reorder_body(rule)
        names = [getattr(lit, "pred", "IS") for lit in ordered.body]
        assert names.index("IS") > names.index("q")

    def test_semantics_preserved(self):
        program = parse_program(
            "ans(X) :- big(Y, Z), sel(a, Y), pick(Z, X)."
        )
        db = Database.from_text("""
            big(1, 10). big(2, 20). big(3, 30).
            sel(a, 2). pick(20, win). pick(30, lose).
        """)
        plain = evaluate_program(program, db)
        planned = evaluate_program(program, db, reorder=True)
        assert plain[("ans", 1)].tuples == planned[("ans", 1)].tuples

    def test_unsafe_rule_kept_in_order(self):
        rule = rule_of("p(X) :- X > 3, q(X).")
        # Planner defers the comparison; if the rule were truly
        # unsafe (nothing can bind), original order is kept.
        from repro.datalog.atoms import Comparison
        from repro.datalog.rules import Rule
        from repro.datalog.terms import Constant, Variable

        unsafe = Rule(
            rule.head,
            (Comparison(">", Variable("Z"), Constant(1)),),
        )
        ordered = reorder_body(unsafe)
        assert ordered.body == unsafe.body

    def test_labels_preserved(self):
        rule = rule_of("p(X) :- q(X).").with_label("mine")
        assert reorder_body(rule).label == "mine"

    def test_reorder_program_rules(self):
        program = parse_program("""
            p(X) :- big(Y), sel(a, X), link(X, Y).
            q(X) :- p(X).
        """)
        rules = reorder_program_rules(program.rules)
        assert len(rules) == 2
        assert rules[0].body_atoms()[0].pred == "sel"


class TestWorkReduction:
    def test_reorder_reduces_work(self):
        program = parse_program(
            "ans(X) :- big(Y, Z), sel(a, Y), pick(Z, X)."
        )
        db = Database()
        for i in range(200):
            db.add_fact("big", i, i * 10)
        db.add_fact("sel", "a", 3)
        db.add_fact("pick", 30, "win")
        plain_stats = EvalStats()
        evaluate_program(program, db, stats=plain_stats)
        planned_stats = EvalStats()
        evaluate_program(program, db, stats=planned_stats, reorder=True)
        assert planned_stats.tuples_scanned < plain_stats.tuples_scanned
        assert planned_stats.tuples_scanned <= 5

    def test_recursive_program_unaffected_semantically(self):
        program = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- arc(Z, Y), tc(X, Z).
        """)
        db = Database.from_text("arc(a, b). arc(b, c). arc(c, d).")
        plain = evaluate_program(program, db)
        planned = evaluate_program(program, db, reorder=True)
        assert plain[("tc", 2)].tuples == planned[("tc", 2)].tuples
