"""Classical counting method tests (Example 1, §1)."""

import pytest

from repro import Database, parse_query
from repro.engine import evaluate_query
from repro.errors import CountingDivergenceError, NotApplicableError
from repro.exec.strategies import run_classical_counting
from repro.rewriting.counting import classical_counting_rewrite


class TestStructure:
    def test_example1_program(self, sg_query):
        rewriting = classical_counting_rewrite(sg_query)
        assert len(rewriting.counting_rules) == 2
        assert len(rewriting.modified_rules) == 2
        seed = rewriting.counting_rules[0]
        assert seed.head.pred == "c_sg__bf"
        assert seed.head.args[-1].value == 0

    def test_counting_rule_increments(self, sg_query):
        rewriting = classical_counting_rewrite(sg_query)
        rule = rewriting.counting_rules[1]
        body_preds = [a.pred for a in rule.body_atoms()]
        assert body_preds == ["c_sg__bf", "up"]
        assert any(c.op == "is" for c in rule.comparisons())

    def test_goal_at_level_zero(self, sg_query):
        rewriting = classical_counting_rewrite(sg_query)
        goal = rewriting.query.goal
        assert goal.args[-1].value == 0

    def test_bound_argument_dropped(self, sg_query):
        # The paper's "further optimized" form drops the redundant
        # bound argument: sg(Y, I), not sg(X, Y, I).
        rewriting = classical_counting_rewrite(sg_query)
        assert rewriting.answer_pred[1] == 2


class TestApplicability:
    def test_two_rules_rejected(self, example3_query):
        with pytest.raises(NotApplicableError):
            classical_counting_rewrite(example3_query)

    def test_shared_vars_rejected(self, example4_query):
        with pytest.raises(NotApplicableError):
            classical_counting_rewrite(example4_query)

    def test_mutual_recursion_rejected(self):
        query = parse_query("""
            even(X, Y) :- flat(X, Y).
            even(X, Y) :- up(X, X1), odd(X1, Y1), down(Y1, Y).
            odd(X, Y) :- up(X, X1), even(X1, Y1), down(Y1, Y).
            ?- even(a, Y).
        """)
        with pytest.raises(NotApplicableError):
            classical_counting_rewrite(query)

    def test_nonlinear_rejected(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        with pytest.raises(NotApplicableError):
            classical_counting_rewrite(query)


class TestSemantics:
    def test_example1_answers(self, sg_query, sg_db):
        rewriting = classical_counting_rewrite(sg_query)
        result = evaluate_query(rewriting.query, sg_db)
        assert result.answers == {("e1",), ("f1",)}

    def test_matches_naive_on_chains(self, sg_query):
        from repro.data.workloads import sg_chain

        db, _source = sg_chain(depth=10)
        rewriting = classical_counting_rewrite(sg_query)
        counting = evaluate_query(rewriting.query, db)
        naive = evaluate_query(sg_query, db)
        assert counting.answers == naive.answers

    def test_levels_recorded(self, sg_query, sg_db):
        from repro.engine import SemiNaiveEngine

        rewriting = classical_counting_rewrite(sg_query)
        engine = SemiNaiveEngine(rewriting.query.program, sg_db)
        derived = engine.run()
        counting = derived[rewriting.counting_pred]
        assert ("a", 0) in counting
        assert ("b", 1) in counting
        assert ("c", 2) in counting

    def test_divergence_on_cycle(self, sg_query, example5_db):
        with pytest.raises(CountingDivergenceError):
            run_classical_counting(sg_query, example5_db)

    def test_runner_answers(self, sg_query, sg_db):
        result = run_classical_counting(sg_query, sg_db)
        assert result.answers == {("e1",), ("f1",)}
        assert result.extras["counting_set_size"] == 3

    def test_irrelevant_facts_not_counted(self, sg_query):
        db = Database.from_text("""
            up(a, b). flat(b, b1). down(b1, c1).
            up(z, w). flat(w, w1). down(w1, w2).
        """)
        result = run_classical_counting(sg_query, db)
        # Counting set holds only a and b, not z/w.
        assert result.extras["counting_set_size"] == 2
        assert result.answers == {("c1",)}
