"""Query-subquery (top-down) evaluator tests."""

import pytest

from repro import Database, parse_query
from repro.errors import NotApplicableError
from repro.exec.qsq import QSQEngine, qsq_evaluate
from repro.exec.strategies import run_magic, run_naive, run_qsq
from repro.rewriting.adornment import adorn_query


class TestBasics:
    def test_sg_answers(self, sg_query, sg_db):
        answers, _engine = qsq_evaluate(sg_query, sg_db)
        assert answers == {("e1",), ("f1",)}

    def test_only_relevant_subqueries(self, sg_query):
        db = Database.from_text("""
            up(a, b). flat(b, b1). down(b1, c1).
            up(z, w). flat(w, w1). down(w1, w2).
        """)
        answers, engine = qsq_evaluate(sg_query, db)
        assert answers == {("c1",)}
        # Subqueries raised: a and b only — never z or w.
        bindings = engine.subqueries[("sg__bf", 2)]
        assert bindings == {("a",), ("b",)}

    def test_memo_matches_magic_set(self, sg_query, sg_db):
        qsq = run_qsq(sg_query, sg_db)
        magic = run_magic(sg_query, sg_db)
        assert qsq.answers == magic.answers
        # Subqueries correspond to magic tuples.
        assert qsq.extras["subqueries"] == \
            magic.extras["magic_set_size"]

    def test_cyclic_data_terminates(self, sg_query, example5_db):
        answers, _engine = qsq_evaluate(sg_query, example5_db)
        assert answers == {("h",), ("j",), ("l",)}

    def test_nonlinear_program(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        db = Database.from_text("arc(a, b). arc(b, c). arc(x, y).")
        answers, _engine = qsq_evaluate(query, db)
        assert answers == {("b",), ("c",)}

    def test_base_goal(self):
        query = parse_query("p(X) :- q(X). ?- arc(a, Y).")
        db = Database.from_text("arc(a, b).")
        answers, _engine = qsq_evaluate(query, db)
        assert answers == {("b",)}

    def test_matches_naive_on_all_workloads(self):
        from repro.data import WORKLOADS

        for workload in WORKLOADS.values():
            db, _source = workload.make_db()
            expected = run_naive(workload.query, db).answers
            result = run_qsq(workload.query, db)
            assert result.answers == expected, workload.name


class TestNegationPolicy:
    def test_base_negation_supported(self):
        query = parse_query("""
            ok(X) :- cand(X), not bad(X).
            ?- ok(X).
        """)
        db = Database.from_text("cand(a). cand(b). bad(b).")
        answers, _engine = qsq_evaluate(query, db)
        assert answers == {("a",)}

    def test_derived_negation_refused(self):
        query = parse_query("""
            reach(X) :- start(X).
            reach(Y) :- reach(X), arc(X, Y).
            lost(X) :- node(X), not reach(X).
            ?- lost(X).
        """)
        db = Database.from_text("start(a). arc(a, b). node(c).")
        adorned = adorn_query(query)
        with pytest.raises(NotApplicableError):
            QSQEngine(adorned, db)


class TestWorkProfile:
    def test_tracks_magic_not_counting(self, sg_query):
        from repro.data.workloads import sg_tree
        from repro.exec.strategies import run_pointer_counting

        db, _source = sg_tree(fanout=2, depth=5)
        qsq = run_qsq(sg_query, db)
        magic = run_magic(sg_query, db)
        pointer = run_pointer_counting(sg_query, db)
        # Same family as magic: within 3x either way...
        assert qsq.stats.total_work < 3 * magic.stats.total_work
        # ...and clearly above the counting method.
        assert pointer.stats.total_work < qsq.stats.total_work
