"""Multi-tenant serving: forms, quotas, fair scheduling, isolation.

The quota and scheduler primitives are tested on fake clocks and
deterministic drains; the service-level tests drive a multi-tenant
``QueryService`` with scriptable fakes (rate/concurrency/pool sheds,
per-tenant breakers and retry streams) and with real prepared queries
over ``sg_forest`` for the audit-per-tenant and atomic-counters
drills.  Hypothesis property tests pin the token bucket's
no-over-admission invariant and the scheduler's weight
proportionality under saturation.
"""

import threading
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database
from repro.data.workloads import (
    WORKLOADS,
    forest_bindings,
    forest_root,
    sg_forest,
)
from repro.durability.audit import read_audit, verify_audit
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    EvaluationCancelled,
    NotApplicableError,
    Overloaded,
    QuotaExceeded,
    ServiceClosed,
    ServiceError,
    UnknownFormError,
)
from repro.exec import AnswerCache, PreparedQuery
from repro.serve import BreakerBoard, QueryService, RetryPolicy
from repro.serve.breaker import OPEN
from repro.tenancy import (
    COST_OF,
    FairScheduler,
    FormRegistry,
    ResourcePool,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeStats:
    """Duck-types EvalStats far enough for quota charging."""

    def __init__(self, facts_derived=0):
        self.facts_derived = facts_derived


class FakeResult:
    def __init__(self, answers=frozenset(), facts=None):
        self.answers = frozenset(answers)
        self.method = "fake"
        self.extras = {}
        if facts is not None:
            self.stats = FakeStats(facts)


class FakePrepared:
    """Scriptable prepared query: per-call outcomes, optional gate."""

    method = "pointer_counting"

    def __init__(self, outcomes=((),), gate=None, facts=None,
                 clock=None, advance=0.0):
        self.outcomes = list(outcomes)
        self.gate = gate
        #: facts_derived reported per run (drives the facts pool).
        self.facts = facts
        #: Fake clock advanced by ``advance`` per run, so service-time
        #: EMAs and seconds pools see deterministic durations.
        self.clock = clock
        self.advance = advance
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def run(self, constants, db=None, budget=None):
        with self._lock:
            self.calls += 1
            outcome = (
                self.outcomes.pop(0) if len(self.outcomes) > 1
                else self.outcomes[0]
            )
            if self.clock is not None and self.advance:
                self.clock.advance(self.advance)
        self.started.set()
        if self.gate is not None:
            self.gate.wait()
        if isinstance(outcome, BaseException):
            raise outcome
        return FakeResult(outcome, facts=self.facts)

    def bind(self, constants):
        return WORKLOADS["sg_forest"].query


class CancellableFake(FakePrepared):
    """Blocks until the request's cancellation token flips."""

    def run(self, constants, db=None, budget=None):
        self.started.set()
        budget.token.wait(30.0)
        budget.check()
        raise AssertionError("token never cancelled")


def tiny_db():
    return Database.from_text("flat(a, b).")


# ---------------------------------------------------------------------
# Quota primitives
# ---------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == \
            [True, True, True, False]
        assert bucket.taken == 3
        assert bucket.denied == 1

    def test_refill_is_continuous(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.25)  # half a token: still not enough
        assert not bucket.try_take()
        clock.advance(0.25)  # a full token now
        assert bucket.try_take()

    def test_refill_after_prices_the_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.refill_after() == 0.0
        assert bucket.try_take()
        assert bucket.refill_after() == pytest.approx(0.25)
        clock.advance(0.1)
        assert bucket.refill_after() == pytest.approx(0.15)

    def test_level_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.level() == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=5, burst=0.5)


class TestResourcePool:
    def test_post_paid_debt_blocks_admission(self):
        clock = FakeClock()
        pool = ResourcePool("facts", capacity=10, refill=2.0,
                            clock=clock)
        assert pool.admits()
        pool.charge(25)  # one expensive query drives debt
        assert pool.balance() == pytest.approx(-15.0)
        assert not pool.admits()
        assert pool.denied == 1
        # retry_after pays the debt off to just above zero.
        assert pool.retry_after() == pytest.approx(7.5)
        clock.advance(7.5)
        assert pool.balance() == pytest.approx(0.0)
        clock.advance(0.1)
        assert pool.admits()

    def test_refill_clamps_at_capacity(self):
        clock = FakeClock()
        pool = ResourcePool("rounds", capacity=5, refill=100.0,
                            clock=clock)
        pool.charge(3)
        clock.advance(10.0)
        assert pool.balance() == 5.0

    def test_zero_refill_debt_is_permanent(self):
        pool = ResourcePool("facts", capacity=1, refill=0.0,
                            clock=FakeClock())
        pool.charge(2)
        assert pool.retry_after() == float("inf")

    def test_charged_counter_is_monotone(self):
        pool = ResourcePool("seconds", capacity=10, refill=1.0,
                            clock=FakeClock())
        pool.charge(3)
        pool.charge(0)  # no-op
        pool.charge(4)
        assert pool.charged == 7.0


class TestTenantQuota:
    def test_factories(self):
        clock = FakeClock()
        quota = TenantQuota(rate=5.0, burst=10, weight=2.0,
                            facts=(100, 10.0), seconds=(2.0, 0.5))
        bucket = quota.bucket(clock=clock)
        assert bucket.rate == 5.0 and bucket.burst == 10.0
        pools = quota.pools(clock=clock)
        assert sorted(pools) == ["facts", "seconds"]
        assert pools["facts"].capacity == 100.0

    def test_unlimited_quota_builds_nothing(self):
        quota = TenantQuota()
        assert quota.bucket() is None
        assert quota.pools() == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(weight=0)
        with pytest.raises(ValueError):
            TenantQuota(max_concurrent=0)
        with pytest.raises(ValueError):
            TenantQuota(queue_capacity=0)


# ---------------------------------------------------------------------
# The deficit-round-robin scheduler
# ---------------------------------------------------------------------


class TestFairScheduler:
    def test_single_lane_is_fifo(self):
        sched = FairScheduler()
        sched.add_lane(None)
        for item in "abc":
            assert sched.offer(None, item)
        assert [sched.take(block=False) for _ in range(3)] == \
            ["a", "b", "c"]
        assert sched.take(block=False) is None

    def test_capacity_sheds_only_the_full_lane(self):
        sched = FairScheduler()
        sched.add_lane("a", capacity=1)
        sched.add_lane("b", capacity=4)
        assert sched.offer("a", "a0")
        assert not sched.offer("a", "a1")  # a is full...
        assert sched.offer("b", "b0")      # ...b is untouched
        stats = sched.lane_stats()
        assert stats["a"]["refused"] == 1
        assert stats["b"]["refused"] == 0

    def test_drr_interleaves_by_weight(self):
        sched = FairScheduler()
        sched.add_lane("heavy", weight=2.0, capacity=16)
        sched.add_lane("light", weight=1.0, capacity=16)
        for index in range(8):
            sched.offer("heavy", "h%d" % index)
            sched.offer("light", "l%d" % index)
        drained = [sched.take(block=False) for _ in range(12)]
        heavies = sum(1 for item in drained if item.startswith("h"))
        lights = len(drained) - heavies
        # 2:1 weights → 2:1 long-run service, within one rotation.
        assert heavies == 8
        assert lights == 4

    def test_cost_drains_deficit_faster(self):
        sched = FairScheduler()
        sched.add_lane("cheap", weight=1.0, capacity=16)
        sched.add_lane("pricey", weight=1.0, capacity=16)
        for index in range(8):
            sched.offer("cheap", "c%d" % index, cost=1.0)
            sched.offer("pricey", "p%d" % index, cost=4.0)
        drained = [sched.take(block=False) for _ in range(10)]
        cheap = sum(1 for item in drained if item.startswith("c"))
        # Equal weights but 4x cost: the pricey lane gets ~1/4 the
        # items for the same served *cost*.
        assert cheap == 8
        assert drained.count(None) == 0
        stats = sched.lane_stats()
        assert stats["cheap"]["served_cost"] == pytest.approx(8.0)
        assert stats["pricey"]["served_cost"] == pytest.approx(8.0)

    def test_emptied_lane_forfeits_deficit(self):
        sched = FairScheduler()
        sched.add_lane("a", weight=8.0, capacity=16)
        sched.add_lane("b", weight=1.0, capacity=16)
        sched.offer("a", "a0")
        assert sched.take(block=False) == "a0"
        # Lane a went idle; its banked deficit must not let it burst
        # past its weight when it comes back.
        for index in range(4):
            sched.offer("a", "a%d" % (index + 1), cost=8.0)
            sched.offer("b", "b%d" % index, cost=1.0)
        first_b = next(
            index
            for index in range(8)
            if (sched.take(block=False) or "").startswith("b")
        )
        assert first_b <= 2

    def test_close_drains_then_releases(self):
        sched = FairScheduler()
        sched.add_lane(None)
        sched.offer(None, "queued")
        sched.close()
        assert not sched.offer(None, "late")
        assert sched.take() == "queued"  # accepted work still runs
        assert sched.take() is None      # then workers are released

    def test_blocked_take_wakes_on_close(self):
        sched = FairScheduler()
        sched.add_lane(None)
        results = []

        def taker():
            results.append(sched.take())

        thread = threading.Thread(target=taker)
        thread.start()
        sched.close()
        thread.join(5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_validation(self):
        sched = FairScheduler()
        sched.add_lane("a")
        with pytest.raises(ValueError):
            sched.add_lane("a")
        with pytest.raises(ValueError):
            sched.add_lane("b", weight=0)
        with pytest.raises(ValueError):
            sched.add_lane("c", capacity=0)
        with pytest.raises(ValueError):
            sched.offer("a", "x", cost=0)
        with pytest.raises(ValueError):
            FairScheduler(quantum=0)


# ---------------------------------------------------------------------
# The form registry
# ---------------------------------------------------------------------


class TestFormRegistry:
    def test_register_resolve_and_versions(self):
        db, _ = sg_forest(trees=1, fanout=2, depth=2)
        registry = FormRegistry(db)
        first = registry.register("sg", WORKLOADS["sg_forest"].query)
        assert first.version == 1
        second = registry.register("sg", WORKLOADS["sg_forest"].query)
        assert second.version == 2
        assert registry.get("sg") is second
        assert registry.get("sg", version=1) is first
        assert "sg" in registry and len(registry) == 1
        assert registry.names() == ["sg"]

    def test_unknown_form_and_version_raise_typed(self):
        registry = FormRegistry(tiny_db())
        with pytest.raises(UnknownFormError):
            registry.get("nope")
        registry.register("sg", WORKLOADS["sg_forest"].query)
        with pytest.raises(UnknownFormError):
            registry.get("sg", version=7)
        assert issubclass(UnknownFormError, ServiceError)

    def test_cost_class_from_size_bound(self):
        db, _ = sg_forest(trees=1, fanout=2, depth=2)
        registry = FormRegistry(db, light_bound=10, medium_bound=20)
        form = registry.register("sg", WORKLOADS["sg_forest"].query)
        assert form.cost_class == registry.classify(form.size_bound)
        assert form.cost == COST_OF[form.cost_class]

    def test_explicit_cost_class_override(self):
        registry = FormRegistry(tiny_db())
        query = WORKLOADS["sg_forest"].query
        form = registry.register("sg", query, cost_class="heavy")
        assert form.cost == 4.0
        with pytest.raises(ValueError):
            registry.register("sg", query, cost_class="enormous")

    def test_describe_block(self):
        db, _ = sg_forest(trees=1, fanout=2, depth=2)
        registry = FormRegistry(db)
        registry.register("sg", WORKLOADS["sg_forest"].query)
        block = registry.describe()["sg"]
        assert block["version"] == 1
        assert block["adornment"] == "bf"
        assert block["cost_class"] in COST_OF

    def test_size_bound_scales_with_edb_and_frees(self):
        small, _ = sg_forest(trees=1, fanout=2, depth=2)
        big, _ = sg_forest(trees=4, fanout=3, depth=4)
        query = WORKLOADS["sg_forest"].query
        bound_small = PreparedQuery(query, small).size_bound(small)
        bound_big = PreparedQuery(query, big).size_bound(big)
        assert bound_big > bound_small >= 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FormRegistry(light_bound=20, medium_bound=10)


# ---------------------------------------------------------------------
# Multi-tenant QueryService
# ---------------------------------------------------------------------


class TestTenantAdmission:
    def test_unknown_tenant_is_a_value_error(self):
        service = QueryService(FakePrepared(), tiny_db(), workers=1,
                               tenants={"acme": TenantQuota()})
        try:
            with pytest.raises(ValueError):
                service.submit(tenant="ghost")
            assert service.counters()["submitted"] == 0
        finally:
            service.drain()

    def test_rate_quota_sheds_typed_with_refill_hint(self):
        clock = FakeClock()
        gate = threading.Event()
        prepared = FakePrepared(gate=gate)
        service = QueryService(
            prepared, tiny_db(), workers=1, clock=clock,
            tenants={"acme": TenantQuota(rate=2.0, burst=1)},
        )
        try:
            service.submit(tenant="acme")
            with pytest.raises(QuotaExceeded) as info:
                service.submit(tenant="acme")
            assert info.value.tenant == "acme"
            assert info.value.resource == "rate"
            assert info.value.retry_after == pytest.approx(0.5)
            clock.advance(0.5)
            service.submit(tenant="acme")  # refilled
            counters = service.counters()
            assert counters["shed_quota"] == 1
            assert counters["tenants"]["acme"]["shed_quota"] == 1
        finally:
            gate.set()
            service.drain()

    def test_concurrency_cap_counts_queued_plus_inflight(self):
        gate = threading.Event()
        prepared = FakePrepared(gate=gate)
        service = QueryService(
            prepared, tiny_db(), workers=2,
            tenants={"acme": TenantQuota(max_concurrent=2)},
        )
        try:
            futures = [service.submit(tenant="acme") for _ in range(2)]
            with pytest.raises(QuotaExceeded) as info:
                service.submit(tenant="acme")
            assert info.value.resource == "concurrency"
            gate.set()
            for future in futures:
                future.result(30.0)
            # Slots freed: admission works again.
            service.submit(tenant="acme").result(30.0)
        finally:
            gate.set()
            service.drain()

    def test_resource_pool_debt_blocks_next_admission(self):
        clock = FakeClock()
        prepared = FakePrepared(facts=8)
        service = QueryService(
            prepared, tiny_db(), workers=1, clock=clock,
            tenants={"acme": TenantQuota(facts=(10, 2.0))},
        )
        try:
            service.submit(tenant="acme").result(30.0)  # balance 2
            service.submit(tenant="acme").result(30.0)  # balance -6
            with pytest.raises(QuotaExceeded) as info:
                service.submit(tenant="acme")
            assert info.value.resource == "facts"
            assert info.value.retry_after == pytest.approx(3.0)
            clock.advance(3.1)
            service.submit(tenant="acme").result(30.0)
            block = service.counters()["tenants"]["acme"]
            assert block["quota"]["pools"]["facts"]["charged"] == 24.0
            assert block["quota"]["pools"]["facts"]["denied"] >= 1
        finally:
            service.drain()

    def test_quota_shed_never_burns_a_rate_token(self):
        clock = FakeClock()
        gate = threading.Event()
        prepared = FakePrepared(gate=gate)
        service = QueryService(
            prepared, tiny_db(), workers=1, clock=clock,
            tenants={"acme": TenantQuota(rate=100.0, burst=100,
                                         max_concurrent=1)},
        )
        try:
            service.submit(tenant="acme")
            for _ in range(5):
                with pytest.raises(QuotaExceeded):
                    service.submit(tenant="acme")
            # Five concurrency sheds, zero tokens consumed by them.
            quota = service.counters()["tenants"]["acme"]["quota"]
            assert quota["rate_tokens"] == pytest.approx(99.0)
        finally:
            gate.set()
            service.drain()

    def test_one_tenant_full_lane_never_sheds_another(self):
        gate = threading.Event()
        prepared = FakePrepared(gate=gate)
        service = QueryService(
            prepared, tiny_db(), workers=1, queue_capacity=2,
            tenants={
                "hog": TenantQuota(queue_capacity=1),
                "well": TenantQuota(queue_capacity=4),
            },
        )
        try:
            hog_futures = [service.submit(tenant="hog")]
            prepared.started.wait(30.0)  # one hog request in flight
            hog_futures.append(service.submit(tenant="hog"))  # queued
            with pytest.raises(Overloaded) as info:
                service.submit(tenant="hog")
            assert info.value.tenant == "hog"
            assert info.value.reason == "queue_full"
            # The well-behaved tenant's lane is independent.
            well = [service.submit(tenant="well") for _ in range(4)]
            gate.set()
            for future in hog_futures + well:
                assert future.result(30.0) is not None
        finally:
            gate.set()
            service.drain()

    def test_default_lane_still_serves_untenanted_submits(self):
        service = QueryService(FakePrepared(), tiny_db(), workers=1,
                               tenants={"acme": TenantQuota()})
        try:
            assert service.submit().result(30.0) is not None
        finally:
            service.drain()


class TestRetryAfterHints:
    def test_queue_full_hint_tracks_service_time_ema(self):
        clock = FakeClock()
        gate = threading.Event()
        prepared = FakePrepared(gate=gate, clock=clock, advance=0.1)
        service = QueryService(prepared, tiny_db(), workers=1,
                               queue_capacity=1, clock=clock)
        try:
            gate.set()
            service.submit().result(30.0)  # EMA seeded at ~0.1s
            gate.clear()
            prepared.started.clear()
            service.submit()
            prepared.started.wait(30.0)  # in flight, lane empty again
            service.submit()             # fills the 1-deep lane
            # The shed hint prices draining depth+1 requests at the
            # observed ~0.1s each over one worker.
            with pytest.raises(Overloaded) as info:
                service.submit()
            assert info.value.retry_after == pytest.approx(0.2)
        finally:
            gate.set()
            service.drain()

    def test_hint_is_none_before_first_completion(self):
        gate = threading.Event()
        prepared = FakePrepared(gate=gate)
        service = QueryService(prepared, tiny_db(), workers=1,
                               queue_capacity=1)
        try:
            service.submit()
            prepared.started.wait(30.0)
            service.submit()
            with pytest.raises(Overloaded) as info:
                service.submit()
            assert info.value.retry_after is None
        finally:
            gate.set()
            service.drain()


class TestTenantIsolation:
    def test_per_tenant_breaker_boards(self):
        prepared = FakePrepared(
            outcomes=[NotApplicableError("poisoned"),
                      NotApplicableError("poisoned"), ()],
        )
        service = QueryService(
            prepared, tiny_db(), workers=1, fallback=False,
            breakers=BreakerBoard(threshold=2),
            tenants={"poison": TenantQuota(), "healthy": TenantQuota()},
        )
        try:
            for _ in range(2):
                with pytest.raises(NotApplicableError):
                    service.run(tenant="poison", wait=30.0)
            counters = service.counters()
            assert counters["tenants"]["poison"]["breaker_states"][
                "pointer_counting"] == OPEN
            # The poisoned tenant is now rejected by its own breaker...
            with pytest.raises(CircuitOpenError):
                service.run(tenant="poison", wait=30.0)
            # ...while the healthy tenant's board never tripped.
            assert service.run(tenant="healthy",
                               wait=30.0) is not None
            counters = service.counters()
            assert counters["tenants"]["healthy"]["breaker_trips"] == 0
            assert counters["tenants"]["poison"]["breaker_trips"] == 1
        finally:
            service.drain()

    def test_per_tenant_retry_streams_are_independent(self):
        sleeps = []
        retry = RetryPolicy(max_attempts=3, base_delay=0.05, seed=9)
        prepared = FakePrepared(
            outcomes=[DeadlineExceeded("slow"), DeadlineExceeded("slow"),
                      ()],
        )
        service = QueryService(
            prepared, tiny_db(), workers=1, retry=retry,
            sleep=sleeps.append,
            tenants={"acme": TenantQuota()},
        )
        try:
            service.run(tenant="acme", wait=30.0)
        finally:
            service.drain()
        stream = zlib.crc32(b"acme")
        assert sleeps == list(retry.backoff(0, stream=stream))
        assert sleeps != list(retry.backoff(0))  # not the default stream

    def test_default_stream_reproduces_untenanted_delays(self):
        retry = RetryPolicy(max_attempts=4, seed=3)
        assert list(retry.backoff(7)) == list(retry.backoff(7, stream=0))


class TestRegistryService:
    def _registry(self, db):
        registry = FormRegistry(db)
        registry.register("sg", WORKLOADS["sg_forest"].query)
        return registry

    def test_submit_by_form_name(self):
        db, _ = sg_forest(trees=1, fanout=2, depth=2)
        registry = self._registry(db)
        service = QueryService(None, db, workers=1, registry=registry)
        try:
            result = service.run((forest_root(0),), form="sg",
                                 wait=30.0)
            baseline = registry.get("sg").prepared.run(
                (forest_root(0),), db=db
            )
            assert result.answers == baseline.answers
            assert "sg" in service.counters()["forms"]
        finally:
            service.drain()

    def test_unknown_form_is_typed_and_not_submitted(self):
        db, _ = sg_forest(trees=1, fanout=2, depth=2)
        service = QueryService(None, db, workers=1,
                               registry=self._registry(db))
        try:
            with pytest.raises(UnknownFormError):
                service.submit(form="nope")
            assert service.counters()["submitted"] == 0
        finally:
            service.drain()

    def test_formless_submit_requires_default_prepared(self):
        db, _ = sg_forest(trees=1, fanout=2, depth=2)
        service = QueryService(None, db, workers=1,
                               registry=self._registry(db))
        try:
            with pytest.raises(ValueError):
                service.submit()
        finally:
            service.drain()

    def test_version_pinning_survives_reregistration(self):
        db, _ = sg_forest(trees=1, fanout=2, depth=2)
        registry = self._registry(db)
        first = registry.get("sg")
        registry.register("sg", WORKLOADS["sg_forest"].query,
                          method="magic")
        service = QueryService(None, db, workers=1, registry=registry)
        try:
            pinned = service.run((forest_root(0),), form="sg",
                                 version=1, wait=30.0)
            latest = service.run((forest_root(0),), form="sg",
                                 wait=30.0)
            assert pinned.answers == latest.answers
            assert pinned.method == first.prepared.method
            assert latest.method == "magic"
        finally:
            service.drain()

    def test_service_without_prepared_or_registry_rejected(self):
        with pytest.raises(ValueError):
            QueryService(None, tiny_db(), workers=1)


class TestTenantAudit:
    def test_audit_entries_carry_tenant_and_replay_per_tenant(
            self, tmp_path):
        from repro.durability.audit import AuditLog

        db, _ = sg_forest(trees=2, fanout=2, depth=3)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        path = str(tmp_path / "audit.jsonl")
        audit = AuditLog(path, flush_every=1)
        service = QueryService(
            prepared, db, workers=2, audit=audit,
            tenants={"a": TenantQuota(), "b": TenantQuota()},
        )
        try:
            for index, binding in enumerate(
                forest_bindings(trees=2, queries=6)
            ):
                service.run(binding, tenant="a" if index % 2 else "b",
                            wait=60.0)
        finally:
            service.drain()
            audit.close()
        entries, torn = read_audit(path)
        assert torn is None
        assert sorted({entry["tenant"] for entry in entries}) == \
            ["a", "b"]
        report = verify_audit(path, prepared, db)
        assert report["mismatched"] == []
        assert report["checked"] == 6
        assert set(report["by_tenant"]) == {"a", "b"}
        only_a = verify_audit(path, prepared, db, tenant="a")
        assert only_a["mismatched"] == []
        assert only_a["checked"] == \
            report["by_tenant"]["a"]["checked"]
        assert set(only_a["by_tenant"]) == {"a"}

    def test_verify_resolves_forms_through_registry(self, tmp_path):
        from repro.durability.audit import AuditLog

        db, _ = sg_forest(trees=1, fanout=2, depth=3)
        registry = FormRegistry(db)
        registry.register("sg", WORKLOADS["sg_forest"].query)
        path = str(tmp_path / "audit.jsonl")
        audit = AuditLog(path, flush_every=1)
        service = QueryService(None, db, workers=1, registry=registry,
                               audit=audit,
                               tenants={"a": TenantQuota()})
        try:
            service.run((forest_root(0),), tenant="a", form="sg",
                        wait=60.0)
        finally:
            service.drain()
            audit.close()
        report = verify_audit(path, None, db, registry=registry)
        assert report["checked"] == 1
        assert report["mismatched"] == []


# ---------------------------------------------------------------------
# Satellite: atomic counter snapshots under injected stalls
# ---------------------------------------------------------------------


class TestAtomicCounters:
    def _assert_ledger(self, counters):
        assert counters["submitted"] == (
            counters["admitted"] + counters["shed_overload"]
            + counters["shed_quota"] + counters["rejected_closed"]
        )
        assert counters["admitted"] == (
            counters["completed"] + counters["failed"]
            + counters["cancelled"] + counters["shed_expired"]
            + counters["inflight"]
        )

    def test_every_snapshot_is_a_consistent_cut(self, fault_injector):
        db, _source = sg_forest(trees=2, fanout=2, depth=3)
        cache = AnswerCache(capacity=8)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db,
                                 cache=cache)
        bindings = forest_bindings(trees=2, queries=8)
        fault_injector.delay_sections(0.0005, every=3)
        service = QueryService(
            prepared, db, workers=3, queue_capacity=64,
            tenants={"a": TenantQuota(weight=2.0),
                     "b": TenantQuota(weight=1.0)},
        )
        violations = []
        samples = [0]
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                counters = service.counters()
                samples[0] += 1
                try:
                    self._assert_ledger(counters)
                    for block in counters["tenants"].values():
                        self._assert_ledger(block)
                except AssertionError as exc:
                    violations.append(str(exc))

        def submitter(tenant):
            for round_index in range(6):
                for binding in bindings:
                    try:
                        service.run(binding, tenant=tenant, wait=60.0)
                    except (Overloaded, QuotaExceeded):
                        pass

        threads = [threading.Thread(target=sampler)] + [
            threading.Thread(target=submitter, args=(tenant,))
            for tenant in ("a", "b", "a", "b")
        ]
        try:
            with fault_injector:
                for thread in threads:
                    thread.start()
                for thread in threads[1:]:
                    thread.join(120.0)
        finally:
            stop.set()
            threads[0].join(30.0)
            service.drain()
        assert samples[0] > 0
        assert violations == []
        self._assert_ledger(service.counters())


# ---------------------------------------------------------------------
# Satellite: drain(grace=) resolves every request exactly once
# ---------------------------------------------------------------------


class TestDrainExactlyOnce:
    def test_concurrent_burst_drain_loses_nothing(self):
        prepared = CancellableFake()
        service = QueryService(
            prepared, tiny_db(), workers=2, queue_capacity=8,
            tenants={"a": TenantQuota(), "b": TenantQuota(),
                     "c": TenantQuota(weight=2.0)},
        )
        futures = []
        futures_lock = threading.Lock()
        sheds = [0]
        start = threading.Barrier(4)

        def submitter(tenant):
            start.wait()
            for _ in range(20):
                try:
                    future = service.submit(tenant=tenant)
                except (Overloaded, QuotaExceeded, ServiceClosed):
                    with futures_lock:
                        sheds[0] += 1
                    continue
                with futures_lock:
                    futures.append(future)

        threads = [
            threading.Thread(target=submitter, args=(tenant,))
            for tenant in ("a", "b", "c")
        ]
        for thread in threads:
            thread.start()
        start.wait()
        prepared.started.wait(30.0)
        # Drain mid-burst with a short grace: in-flight requests must
        # be cancelled at their next budget checkpoint, queued ones
        # resolved as cancelled at dequeue, and late submits rejected
        # as closed — never lost.
        graceful = service.drain(grace=0.2)
        for thread in threads:
            thread.join(30.0)
        assert graceful is False
        outcomes = {"completed": 0, "cancelled": 0, "other": 0}
        for future in futures:
            assert future.done()  # resolved exactly once, none hang
            error = future.exception(0.0)
            if error is None:
                outcomes["completed"] += 1
            elif isinstance(error, EvaluationCancelled):
                outcomes["cancelled"] += 1
            else:
                outcomes["other"] += 1
        counters = service.counters()
        # Every submitted request is accounted for: admitted futures
        # we hold, plus typed sheds/rejections the submitters counted.
        assert counters["submitted"] == len(futures) + sheds[0]
        assert counters["admitted"] == len(futures)
        assert counters["inflight"] == 0
        assert counters["completed"] == outcomes["completed"]
        assert counters["cancelled"] == outcomes["cancelled"]
        assert outcomes["other"] == 0
        assert outcomes["cancelled"] > 0

    def test_drain_without_grace_completes_all_tenants(self):
        prepared = FakePrepared()
        service = QueryService(
            prepared, tiny_db(), workers=2, queue_capacity=32,
            tenants={"a": TenantQuota(), "b": TenantQuota()},
        )
        futures = [
            service.submit(tenant=tenant)
            for tenant in ("a", "b") * 8
        ]
        assert service.drain() is True
        for future in futures:
            assert future.result(0.0) is not None
        counters = service.counters()
        assert counters["completed"] == 16
        assert counters["inflight"] == 0


# ---------------------------------------------------------------------
# Satellite: property tests for bucket and scheduler
# ---------------------------------------------------------------------


class TestQuotaProperties:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        rate=st.floats(min_value=0.5, max_value=50.0),
        burst=st.integers(min_value=1, max_value=20),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1, max_size=40,
        ),
    )
    def test_token_bucket_never_over_admits(self, rate, burst, steps):
        """Admissions over any run never exceed burst + rate * time."""
        clock = FakeClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        admitted = 0
        for advance, takes in steps:
            clock.advance(advance)
            for _ in range(takes):
                if bucket.try_take():
                    admitted += 1
            assert admitted <= burst + rate * clock.now + 1e-6

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        weights=st.lists(
            st.floats(min_value=1.0, max_value=8.0),
            min_size=2, max_size=4,
        ),
        quantum=st.floats(min_value=0.5, max_value=2.0),
    )
    def test_drr_service_proportional_to_weights(self, weights,
                                                 quantum):
        """Under saturation, served work per unit weight stays within
        one quantum of equal across lanes (the classic DRR bound)."""
        sched = FairScheduler(quantum=quantum)
        fill = 200
        total_weight = sum(weights)
        for index, weight in enumerate(weights):
            sched.add_lane(index, weight=weight, capacity=fill)
            for item in range(fill):
                sched.offer(index, (index, item))
        # Stop while every lane is still backlogged (the heaviest
        # lane's fair share stays under its fill), so the measured
        # interval is saturated for all of them.
        budget = int(0.8 * fill * total_weight / max(weights))
        served = [0.0] * len(weights)
        for _take in range(budget):
            lane, _item = sched.take(block=False)
            served[lane] += 1.0
        normalized = [
            served[i] / weights[i] for i in range(len(weights))
        ]
        spread = max(normalized) - min(normalized)
        assert spread <= 2.0 * quantum + 2.0
        assert all(count > 0 for count in served)
