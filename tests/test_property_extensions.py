"""Property-based tests for the extension strategies and the planner.

Complements ``test_property_based.py``: the hybrid (magic-counting),
supplementary magic and the join-order planner must preserve answers
on arbitrary random databases, cyclic or not.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, parse_program, parse_query
from repro.engine import evaluate_program
from repro.exec.strategies import run_naive, run_strategy

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

node_ids = st.integers(min_value=0, max_value=8)
arc_lists = st.lists(
    st.tuples(node_ids, node_ids), min_size=0, max_size=20
)
shared_values = st.integers(min_value=0, max_value=3)

SG = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")

SHARED = parse_query("""
    p(X, Y) :- flat(X, Y).
    p(X, Y) :- up(X, X1, W), p(X1, Y1), down(Y1, Y, W).
    ?- p(a, Y).
""")

MIXED = parse_query("""
    p(X, Y) :- flat(X, Y).
    p(X, Y) :- up(X, X1), p(X1, Y).
    p(X, Y) :- p(X, Y1), down(Y1, Y).
    ?- p(a, Y).
""")


def node(i):
    return "n%d" % i


def sg_db(ups, flats, downs):
    db = Database()
    for i, j in ups:
        db.add_fact("up", node(i), node(j))
    for i, j in flats:
        db.add_fact("flat", node(i), "m%d" % j)
    for i, j in downs:
        db.add_fact("down", "m%d" % i, "m%d" % j)
    db.add_fact("up", "a", node(0))
    return db


class TestHybridProperties:
    @SLOW
    @given(arc_lists, arc_lists, arc_lists)
    def test_magic_counting_matches_naive(self, ups, flats, downs):
        db = sg_db(ups, flats, downs)
        expected = run_naive(SG, db).answers
        assert run_strategy("magic_counting", SG, db).answers == expected

    @SLOW
    @given(
        st.lists(
            st.tuples(node_ids, node_ids, shared_values), max_size=16
        ),
        arc_lists,
        st.lists(
            st.tuples(node_ids, node_ids, shared_values), max_size=16
        ),
    )
    def test_hybrid_with_shared_variables(self, ups, flats, downs):
        db = Database()
        for i, j, w in ups:
            db.add_fact("up", node(i), node(j), w)
        for i, j in flats:
            db.add_fact("flat", node(i), "m%d" % j)
        for i, j, w in downs:
            db.add_fact("down", "m%d" % i, "m%d" % j, w)
        db.add_fact("up", "a", node(0), 0)
        expected = run_naive(SHARED, db).answers
        assert run_strategy("magic_counting", SHARED, db).answers \
            == expected
        assert run_strategy("cyclic_counting", SHARED, db).answers \
            == expected


class TestSupMagicProperties:
    @SLOW
    @given(arc_lists, arc_lists, arc_lists)
    def test_sup_magic_matches_naive(self, ups, flats, downs):
        db = sg_db(ups, flats, downs)
        expected = run_naive(SG, db).answers
        assert run_strategy("sup_magic", SG, db).answers == expected

    @SLOW
    @given(arc_lists, arc_lists, arc_lists)
    def test_sup_magic_on_mixed_linear(self, ups, flats, downs):
        db = sg_db(ups, flats, downs)
        expected = run_naive(MIXED, db).answers
        assert run_strategy("sup_magic", MIXED, db).answers == expected


class TestPlannerProperty:
    @settings(max_examples=40, deadline=None)
    @given(arc_lists, st.permutations(["arc1", "arc2", "filter"]))
    def test_reordered_bodies_preserve_fixpoints(self, arcs, order):
        body = {
            "arc1": "e(X, Z)",
            "arc2": "f(Z, Y)",
            "filter": "g(Y)",
        }
        text = "p(X, Y) :- %s.\n" % ", ".join(body[k] for k in order)
        program = parse_program(text)
        db = Database()
        for i, j in arcs:
            db.add_fact("e", node(i), node(j))
            db.add_fact("f", node(j), "m%d" % i)
            db.add_fact("g", "m%d" % i)
        plain = evaluate_program(program, db)
        planned = evaluate_program(program, db, reorder=True)
        plain_p = plain.get(("p", 2))
        planned_p = planned.get(("p", 2))
        assert (plain_p.tuples if plain_p else set()) \
            == (planned_p.tuples if planned_p else set())
