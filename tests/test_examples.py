"""The example scripts must run and print their headline results."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)


def run_example(name, *args):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "pointer_counting" in out
        assert "['e1', 'f1']" in out

    def test_same_generation(self):
        out = run_example("same_generation.py", "4")
        assert "magic-set rewriting" in out
        assert "extended counting rewriting" in out
        assert "c_sg__bf(a, [])." in out
        assert "depth=4" in out

    def test_cyclic_flights(self):
        out = run_example("cyclic_flights.py")
        assert "cyclic_counting" in out
        assert "CountingDivergenceError" in out
        assert "bos" in out

    def test_bill_of_materials(self):
        out = run_example("bill_of_materials.py")
        assert "reduced_counting" in out
        assert "chromoly" in out
        # The reduced program must have lost the path argument.
        assert "needs__bf(M) :- c_needs__bf(X), made_of(X, M)." in out

    def test_academic_lineage(self):
        out = run_example("academic_lineage.py")
        assert "c_peer_s__bf" in out
        assert "['amy', 'quin', 'uma']" in out
        assert "NotApplicableError" in out

    def test_case_study(self):
        out = run_example("case_study_orgchart.py", "2")
        assert "optimizer chose" in out
        assert "pointer_counting" in out
        assert "together(" in out  # derivation reaches a base fact

    def test_every_example_has_docstring_and_main(self):
        for name in os.listdir(EXAMPLES_DIR):
            if not name.endswith(".py"):
                continue
            with open(os.path.join(EXAMPLES_DIR, name)) as handle:
                source = handle.read()
            assert source.lstrip().startswith('"""'), name
            assert '__name__ == "__main__"' in source, name
