"""Supplementary magic-set rewriting tests."""

import pytest

from repro import Database, parse_query
from repro.engine import SemiNaiveEngine, evaluate_query
from repro.exec.strategies import run_magic, run_naive, run_sup_magic
from repro.rewriting.supplementary import supplementary_magic_rewrite


class TestStructure:
    def test_linear_rule_gets_one_sup(self, sg_query):
        rewriting = supplementary_magic_rewrite(sg_query)
        assert len(rewriting.sup_rules) == 1
        sup = rewriting.sup_rules[0]
        assert sup.head.pred.startswith("sup_")

    def test_sup_keeps_only_needed_vars(self, sg_query):
        rewriting = supplementary_magic_rewrite(sg_query)
        sup = rewriting.sup_rules[0]
        # After up(X, X1), sg(X1, Y1): only Y1 is still needed (by
        # down(Y1, Y) and the head's Y comes from down); X is needed by
        # the head. Hence {X, Y1}.
        names = {arg.name for arg in sup.head.args}
        assert names == {"X", "Y1"}

    def test_modified_rule_uses_sup(self, sg_query):
        rewriting = supplementary_magic_rewrite(sg_query)
        rec = [
            rule for rule in rewriting.modified_rules
            if any(a.pred == "down" for a in rule.body_atoms())
        ][0]
        assert rec.body[0].pred.startswith("sup_")
        assert rec.body[1].pred == "down"

    def test_exit_rule_guarded_not_supped(self, sg_query):
        rewriting = supplementary_magic_rewrite(sg_query)
        exit_rule = [
            rule for rule in rewriting.modified_rules
            if any(a.pred == "flat" for a in rule.body_atoms())
        ][0]
        assert exit_rule.body[0].pred == "m_sg__bf"

    def test_nonlinear_rule_gets_two_sups(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        rewriting = supplementary_magic_rewrite(query)
        assert len(rewriting.sup_rules) == 2

    def test_distinct_sup_names_across_adornments(self):
        # Both adorned variants of the recursive rule keep the source
        # label; sup predicates must still be distinct.
        query = parse_query("""
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, X1), sg(Y1, X1), down(Y1, Y).
            ?- sg(a, Y).
        """)
        rewriting = supplementary_magic_rewrite(query)
        names = [rule.head.pred for rule in rewriting.sup_rules]
        assert len(names) == len(set(names))

    def test_base_goal_noop(self):
        query = parse_query("p(X) :- q(X). ?- base(a, Y).")
        rewriting = supplementary_magic_rewrite(query)
        assert rewriting.sup_rules == ()
        assert rewriting.query.goal == query.goal


class TestSemantics:
    def test_sg_answers(self, sg_query, sg_db):
        rewriting = supplementary_magic_rewrite(sg_query)
        result = evaluate_query(rewriting.query, sg_db)
        assert result.answers == {("e1",), ("f1",)}

    def test_matches_basic_magic_everywhere(self):
        from repro.data import WORKLOADS

        for workload in WORKLOADS.values():
            db, _source = workload.make_db()
            basic = run_magic(workload.query, db)
            sup = run_sup_magic(workload.query, db)
            assert sup.answers == basic.answers, workload.name

    def test_prefix_not_reevaluated(self):
        # With two derived body occurrences the basic rewriting
        # re-evaluates a growing prefix for the second magic rule and
        # once more in the modified rule; the sup chain evaluates each
        # segment once.
        query = parse_query("""
            q(X, Y) :- link(X, Y).
            p(X, Y) :- big1(X, A), q(A, B), big2(B, C), q(C, Y).
            ?- p(a, Y).
        """)
        db = Database.from_text("big2(b, c). link(c, win).")
        for i in range(50):
            db.add_fact("big1", "a", "k%d" % i)
            db.add_fact("link", "k%d" % i, "b")
        basic = run_magic(query, db)
        sup = run_sup_magic(query, db)
        assert sup.answers == basic.answers == {("win",)}
        assert sup.stats.tuples_scanned < basic.stats.tuples_scanned

    def test_negation_supported(self):
        query = parse_query("""
            good(X) :- cand(X), not bad(X).
            reach(X, Y) :- good(Y), arc(X, Y).
            reach(X, Y) :- reach(X, Z), arc(Z, Y), good(Y).
            ?- reach(a, Y).
        """)
        db = Database.from_text("""
            cand(b). cand(c). bad(c).
            arc(a, b). arc(b, c).
        """)
        sup = run_sup_magic(query, db)
        naive = run_naive(query, db)
        assert sup.answers == naive.answers

    def test_counting_still_beats_sup_magic(self, sg_query):
        from repro.data.workloads import sg_tree
        from repro.exec.strategies import run_pointer_counting

        db, _source = sg_tree(fanout=2, depth=5)
        sup = run_sup_magic(sg_query, db)
        pointer = run_pointer_counting(sg_query, db)
        assert pointer.stats.total_work < sup.stats.total_work
