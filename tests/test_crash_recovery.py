"""End-to-end ``kill -9`` drill, in-process entry to the CI check.

The drill proper lives in :mod:`repro.durability.crashdrill`: a child
process ingests tree batches and serves query bursts through a
:class:`~repro.serve.service.QueryService` over a
:class:`~repro.durability.DurableDatabase` (fsync ``always``, audit
write-through, periodic checkpoints), the parent SIGKILLs it mid-burst,
recovers the directory, and compares epochs / facts / rendered answers
against an uncrashed control built by replaying the surviving WAL.
These tests run the same parent with small parameters so a durability
regression fails the unit suite, not just the CI drill step.
"""

import io
import os

import pytest

from repro.durability.crashdrill import parent_main

posix_only = pytest.mark.skipif(
    os.name != "posix", reason="SIGKILL drill needs POSIX signals"
)


@posix_only
def test_kill9_drill_recovers_byte_identical_state(tmp_path):
    out = io.StringIO()
    # kill_after=3 means the checkpoint at batch 2 (every 3rd) has been
    # cut, so recovery exercises checkpoint-plus-WAL-suffix, not just a
    # full replay; batches is set high enough that the child can only
    # exit by being killed.
    rc = parent_main(
        str(tmp_path / "drill"), kill_after=3, batches=64, out=out
    )
    text = out.getvalue()
    assert rc == 0, text
    assert "PASS" in text
    assert "byte-identical to uncrashed control" in text
    assert "checkpoint@" in text


@posix_only
def test_drill_detects_child_finishing_unkilled(tmp_path):
    # The drill is only meaningful if the death is real: a child that
    # completes its batches before the kill threshold is a test-harness
    # failure, and the parent must say so rather than "pass".
    out = io.StringIO()
    rc = parent_main(
        str(tmp_path / "drill"), kill_after=5, batches=2, out=out
    )
    assert rc == 1
    assert "child exited" in out.getvalue()
