"""Parser fuzzing: arbitrary text must raise ParseError or parse —
never crash with anything else."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import parse_program, parse_query
from repro.errors import ParseError

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=120,
)

tokens = st.lists(
    st.sampled_from([
        "p", "q", "Xvar", "Y", "(", ")", "[", "]", "|", ",", ".",
        ":-", "?-", "not", "is", "in", "=", "!=", "<", "+", "-",
        "42", "'str'", "nil", "%c",
    ]),
    max_size=30,
).map(" ".join)


class TestNoCrash:
    @settings(max_examples=200, deadline=None)
    @given(printable)
    def test_random_text(self, text):
        try:
            parse_program(text)
        except ParseError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(tokens)
    def test_token_soup(self, text):
        try:
            parse_program(text)
        except ParseError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(printable)
    def test_parse_query_random_text(self, text):
        try:
            parse_query(text)
        except ParseError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(printable)
    def test_errors_carry_positions(self, text):
        try:
            parse_program(text)
        except ParseError as exc:
            assert exc.line is None or exc.line >= 1
            assert str(exc)
