"""Tests for the [15] integer-encoded counting method."""

import pytest

from repro import Database, parse_query
from repro.engine import SemiNaiveEngine
from repro.errors import CountingDivergenceError, NotApplicableError
from repro.exec.strategies import run_encoded_counting, run_naive
from repro.rewriting.encoded import encoded_counting_rewrite


class TestStructure:
    def test_base_is_rule_count(self, example3_query):
        rewriting = encoded_counting_rewrite(example3_query)
        assert rewriting.base == 2

    def test_seed_is_one(self, example3_query):
        rewriting = encoded_counting_rewrite(example3_query)
        seed = rewriting.counting_rules[0]
        assert seed.head.args[-1].value == 1

    def test_goal_at_one(self, example3_query):
        rewriting = encoded_counting_rewrite(example3_query)
        assert rewriting.query.goal.args[-1].value == 1

    def test_one_push_and_pop_per_rule(self, example3_query):
        rewriting = encoded_counting_rewrite(example3_query)
        assert len(rewriting.counting_rules) == 3  # seed + 2
        assert len(rewriting.modified_rules) == 3  # exit + 2


class TestApplicability:
    def test_shared_vars_rejected(self, example4_query):
        with pytest.raises(NotApplicableError):
            encoded_counting_rewrite(example4_query)

    def test_left_linear_rejected(self, example6_query):
        with pytest.raises(NotApplicableError):
            encoded_counting_rewrite(example6_query)

    def test_mutual_recursion_rejected(self):
        query = parse_query("""
            even(X, Y) :- flat(X, Y).
            even(X, Y) :- up(X, X1), odd(X1, Y1), down(Y1, Y).
            odd(X, Y) :- up(X, X1), even(X1, Y1), down(Y1, Y).
            ?- even(a, Y).
        """)
        with pytest.raises(NotApplicableError):
            encoded_counting_rewrite(query)


class TestSemantics:
    def test_two_rule_log_replayed(self, example3_query):
        from repro.data.workloads import multi_rule_chain

        db, _source = multi_rule_chain(depth=9)
        result = run_encoded_counting(example3_query, db)
        naive = run_naive(example3_query, db)
        assert result.answers == naive.answers
        assert result.answers

    def test_wrong_rule_order_rejected_by_log(self, example3_query):
        # down2 then down1 does NOT reverse up1 then up2.
        db = Database.from_text("""
            up1(a, b). up2(b, c).
            flat(c, c).
            down1(c, d). down2(d, e).
        """)
        result = run_encoded_counting(example3_query, db)
        naive = run_naive(example3_query, db)
        assert result.answers == naive.answers == frozenset()

    def test_encoded_values_recorded(self, sg_query, sg_db):
        rewriting = encoded_counting_rewrite(sg_query)
        engine = SemiNaiveEngine(rewriting.query.program, sg_db)
        derived = engine.run()
        counting = derived[rewriting.counting_pred]
        values = {row[-1] for row in counting}
        # a at 1, b at 1*2+0, c at (1*2)*2+0 — single rule, digit 0.
        assert values == {1, 2, 4}

    def test_bits_grow_linearly_with_depth(self, sg_query):
        from repro.data.workloads import sg_chain

        bits = []
        for depth in (8, 16, 32):
            db, _source = sg_chain(depth)
            result = run_encoded_counting(sg_query, db)
            bits.append(result.extras["max_index_bits"])
        # Linear bit growth = exponential value growth (§3.4 critique).
        assert bits[0] >= 8
        assert bits[1] - bits[0] == 8
        assert bits[2] - bits[1] == 16

    def test_diverges_on_cycles(self, sg_query, example5_db):
        with pytest.raises(CountingDivergenceError):
            run_encoded_counting(sg_query, example5_db)
