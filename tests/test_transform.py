"""Unfolding and renaming transformation tests."""

import pytest

from repro import Database, parse_program, parse_query
from repro.datalog.transform import (
    rename_predicates,
    unfold_all_nonrecursive,
    unfold_predicate,
)
from repro.engine import evaluate_program
from repro.errors import AnalysisError


def models_equal(p1, p2, db, keys):
    d1 = evaluate_program(p1, db)
    d2 = evaluate_program(p2, db)
    for key in keys:
        t1 = d1[key].tuples if key in d1 else set()
        t2 = d2[key].tuples if key in d2 else set()
        assert t1 == t2, key


class TestUnfoldPredicate:
    def test_single_definition(self):
        program = parse_program("""
            hop(X, Y) :- up(X, Y).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- hop(X, X1), sg(X1, Y1), down(Y1, Y).
        """)
        unfolded = unfold_predicate(program, ("hop", 2))
        preds = {rule.head.key for rule in unfolded}
        assert preds == {("sg", 2)}
        body_preds = {
            a.pred for r in unfolded for a in r.body_atoms()
        }
        assert "hop" not in body_preds
        assert "up" in body_preds

    def test_multiple_definitions_multiply_rules(self):
        program = parse_program("""
            hop(X, Y) :- up(X, Y).
            hop(X, Y) :- lift(X, Y).
            p(X, Y) :- hop(X, Y).
        """)
        unfolded = unfold_predicate(program, ("hop", 2))
        assert len(unfolded) == 2

    def test_two_occurrences_cartesian(self):
        program = parse_program("""
            hop(X, Y) :- up(X, Y).
            hop(X, Y) :- lift(X, Y).
            p(X, Z) :- hop(X, Y), hop(Y, Z).
        """)
        unfolded = unfold_predicate(program, ("hop", 2))
        assert len(unfolded) == 4

    def test_semantics_preserved(self):
        program = parse_program("""
            hop(X, Y) :- up(X, Y).
            hop(X, Y) :- lift(X, Y).
            tc(X, Y) :- hop(X, Y).
            tc(X, Y) :- tc(X, Z), hop(Z, Y).
        """)
        db = Database.from_text("""
            up(a, b). lift(b, c). up(c, d).
        """)
        unfolded = unfold_predicate(program, ("hop", 2))
        models_equal(program, unfolded, db, [("tc", 2)])

    def test_constants_in_definition_heads(self):
        program = parse_program("""
            special(a, Y) :- tag(Y).
            p(X, Y) :- special(X, Y).
        """)
        unfolded = unfold_predicate(program, ("special", 2))
        db = Database.from_text("tag(t1). tag(t2).")
        models_equal(program, unfolded, db, [("p", 2)])

    def test_constant_clash_prunes_rule(self):
        program = parse_program("""
            special(a, Y) :- tag(Y).
            p(Y) :- special(b, Y).
        """)
        unfolded = unfold_predicate(program, ("special", 2))
        # The call special(b, Y) cannot match head special(a, Y).
        assert len(unfolded.rules_for(("p", 1))) == 0

    def test_recursive_rejected(self):
        program = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
        """)
        with pytest.raises(AnalysisError):
            unfold_predicate(program, ("tc", 2))

    def test_negated_rejected(self):
        program = parse_program("""
            bad(X) :- flagged(X).
            ok(X) :- cand(X), not bad(X).
        """)
        with pytest.raises(AnalysisError):
            unfold_predicate(program, ("bad", 1))

    def test_base_predicate_rejected(self):
        program = parse_program("p(X) :- q(X).")
        with pytest.raises(AnalysisError):
            unfold_predicate(program, ("q", 1))

    def test_no_capture_between_rule_and_definition(self):
        # Both the rule and the definition use the name Y1.
        program = parse_program("""
            hop(X, Y) :- mid(X, Y1), fin(Y1, Y).
            p(X, Y) :- hop(X, Y1), last(Y1, Y).
        """)
        unfolded = unfold_predicate(program, ("hop", 2))
        db = Database.from_text("""
            mid(a, m). fin(m, f). last(f, z).
        """)
        models_equal(program, unfolded, db, [("p", 2)])


class TestUnfoldAll:
    def test_flattens_helper_chain(self):
        program = parse_program("""
            a(X, Y) :- b(X, Y).
            b(X, Y) :- c(X, Y).
            c(X, Y) :- base(X, Y).
            tc(X, Y) :- a(X, Y).
            tc(X, Y) :- tc(X, Z), a(Z, Y).
        """)
        flattened = unfold_all_nonrecursive(program, keep=[("tc", 2)])
        body_preds = {
            atom.pred
            for rule in flattened
            for atom in rule.body_atoms()
        }
        assert body_preds <= {"base", "tc"}
        db = Database.from_text("base(a, b). base(b, c).")
        models_equal(program, flattened, db, [("tc", 2)])

    def test_keeps_negated_helpers(self):
        program = parse_program("""
            bad(X) :- flagged(X).
            ok(X) :- cand(X), not bad(X).
        """)
        result = unfold_all_nonrecursive(program, keep=[("ok", 1)])
        assert ("bad", 1) in {r.head.key for r in result}


class TestRenamePredicates:
    def test_heads_and_bodies(self):
        program = parse_program("""
            p(X) :- q(X), not r(X).
        """)
        renamed = rename_predicates(
            program, {"p": "out", "q": "in1", "r": "blocked"}
        )
        rule = renamed.rules[0]
        assert rule.head.pred == "out"
        assert rule.body_atoms()[0].pred == "in1"
        assert rule.negated_atoms()[0].pred == "blocked"

    def test_semantics_modulo_renaming(self):
        program = parse_program("tc(X, Y) :- arc(X, Y).")
        renamed = rename_predicates(program, {"tc": "reach"})
        db = Database.from_text("arc(a, b).")
        d = evaluate_program(renamed, db)
        assert d[("reach", 2)].tuples == {("a", "b")}
