"""The CI benchmark smoke pass and its JSON artifact."""

import json

from repro.bench.smoke import SMOKE_CELLS, run_smoke, write_smoke


def test_run_smoke_covers_every_cell():
    records = run_smoke()
    expected = sum(len(methods) for _, _, methods in SMOKE_CELLS)
    assert len(records) == expected
    for record in records:
        assert record["error"] is None
        assert record["work"] > 0
        assert record["elapsed"] >= 0.0


def test_write_smoke_artifact(tmp_path):
    path = write_smoke(str(tmp_path), tag="test")
    assert path.endswith("BENCH_test.json")
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["tag"] == "test"
    assert payload["total_elapsed"] >= 0.0
    labels = {record["label"] for record in payload["records"]}
    assert labels == {name for name, _, _ in SMOKE_CELLS}
    cache_block = payload["query_cache"]
    assert cache_block["answers_match"] is True
    assert cache_block["cache_hits"] > 0
    assert 0.0 < cache_block["hit_rate"] <= 1.0
    assert cache_block["counting_table_reuse"] > 0
    storage = payload["storage"]
    assert storage["counters_match"] is True
    assert {r["backend"] for r in storage["rows"]} == {"rows"}
    assert {r["backend"] for r in storage["columnar"]} == {"columnar"}
    for record in storage["columnar"]:
        assert record["column_bytes"] > 0
        assert record["elapsed"] >= 0.0
    healing = payload["self_healing"]
    assert healing["answers_match"] is True
    assert healing["counters_match"] is True
    assert healing["crashes"] == 1
    assert healing["repairs"] == 1
    assert healing["rounds_replayed"] == 1
    assert healing["recovery_seconds"] >= 0.0
