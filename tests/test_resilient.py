"""The resilient fallback runner: degradation, isolation, reporting."""

import pytest

from repro import FallbackPolicy, run_resilient, run_strategy
from repro.errors import (
    BudgetExceededError,
    CountingDivergenceError,
    FactBudgetExceeded,
    NotApplicableError,
    ReproError,
    ResilienceExhaustedError,
)
from repro.exec.resilient import DEFAULT_CHAIN, ExecutionReport


class TestHappyPath:
    def test_first_stage_wins_on_acyclic_data(self, sg_query, sg_db):
        report = run_resilient(sg_query, sg_db)
        assert report.succeeded
        assert report.method == DEFAULT_CHAIN[0]
        assert report.fallback_depth == 0
        assert report.budget_aborts == 0
        assert len(report.attempts) == 1
        assert not report.attempts[0].failed

    def test_report_matches_direct_run(self, sg_query, sg_db):
        direct = run_strategy("pointer_counting", sg_query, sg_db)
        report = run_resilient(sg_query, sg_db)
        assert report.result.answers == direct.answers


class TestDegradation:
    def test_cyclic_data_degrades_observably(self, sg_query, example5_db):
        report = run_resilient(sg_query, example5_db)
        assert report.succeeded
        # pointer and extended counting both fail typed on cyclic data.
        assert report.fallback_depth >= 2
        errors = [a.error for a in report.attempts if a.failed]
        assert any(isinstance(e, NotApplicableError) for e in errors)
        assert any(isinstance(e, CountingDivergenceError) for e in errors)
        # Answers still correct: compare against the naive baseline.
        naive = run_strategy("naive", sg_query, example5_db)
        assert report.result.answers == naive.answers

    def test_every_counting_stage_fails_naive_still_answers(
            self, sg_query, example5_db):
        # Acceptance scenario: a chain whose every counting stage
        # diverges or is inapplicable on cyclic data must still return
        # correct answers through the terminal naive stage, with each
        # failure recorded and typed.
        policy = FallbackPolicy(
            chain=("pointer_counting", "extended_counting",
                   "classical_counting", "naive"),
        )
        report = run_resilient(sg_query, example5_db, policy)
        assert report.method == "naive"
        assert report.fallback_depth == 3
        classes = [a.error_class for a in report.attempts]
        assert classes == [
            "NotApplicableError",
            "CountingDivergenceError",
            "CountingDivergenceError",
            None,
        ]
        naive = run_strategy("naive", sg_query, example5_db)
        assert report.result.answers == naive.answers

    def test_budget_abort_degrades_to_cheaper_stage(self, sg_query,
                                                    sg_db):
        # Starve the first stages with a zero fact budget... every
        # stage shares the same per-attempt limits, so only stages
        # deriving nothing can win; use max_rounds to let naive's few
        # rounds through while killing multi-phase strategies.
        policy = FallbackPolicy(
            chain=("classical_counting", "naive"),
            max_facts=3,
        )
        with pytest.raises(ResilienceExhaustedError) as info:
            run_resilient(sg_query, sg_db, policy)
        report = info.value.report
        assert report.budget_aborts == 2
        assert all(
            isinstance(a.error, BudgetExceededError)
            for a in report.attempts
        )

    def test_budget_aborts_counted(self, sg_query, sg_db):
        policy = FallbackPolicy(
            chain=("classical_counting", "magic", "naive"),
            max_facts=4,
        )
        try:
            report = run_resilient(sg_query, sg_db, policy)
        except ResilienceExhaustedError as exc:
            report = exc.report
        assert report.budget_aborts >= 1
        for attempt in report.attempts:
            if isinstance(attempt.error, FactBudgetExceeded):
                # Budget errors carry the partial stats.
                assert attempt.stats is not None
                assert attempt.stats.facts_derived > 4


class TestIsolation:
    def test_injected_fault_leaves_database_byte_identical(
            self, sg_query, sg_db, fault_injector):
        # Acceptance: a mid-fixpoint fault plus corrupted snapshot
        # copies; after the resilient run the caller's database must be
        # byte-identical to its pre-attempt snapshot.
        snapshot = sg_db.to_text()
        fault_injector.raise_mid_fixpoint(after=1)
        fault_injector.corrupt_copies(every=3)
        with fault_injector:
            try:
                run_resilient(sg_query, sg_db)
            except ReproError:
                pass  # exhaustion is acceptable; mutation is not
        assert sg_db.to_text() == snapshot

    def test_fault_then_fallback_still_correct(self, sg_query, sg_db,
                                               fault_injector):
        baseline = run_strategy("naive", sg_query, sg_db)
        snapshot = sg_db.to_text()
        # One-shot fault at the first unwind checkpoint: kills the
        # pointer stage mid-answer-phase, then the chain recovers.
        fault_injector.raise_mid_fixpoint(after=1, points=("unwind",))
        with fault_injector:
            report = run_resilient(sg_query, sg_db)
        assert report.fallback_depth >= 1
        assert report.attempts[0].error_class == "InjectedFault"
        assert report.result.answers == baseline.answers
        assert sg_db.to_text() == snapshot

    def test_unisolated_policy_skips_snapshots(self, sg_query, sg_db,
                                               fault_injector):
        fault_injector.corrupt_copies(every=1)
        policy = FallbackPolicy(chain=("naive",), isolate=False)
        with fault_injector:
            report = run_resilient(sg_query, sg_db, policy)
        # No snapshot copy was taken, so nothing got corrupted.
        assert fault_injector.copies_corrupted == 0
        assert report.succeeded


class TestPolicyAndReport:
    def test_unknown_strategy_rejected_up_front(self):
        with pytest.raises(ValueError):
            FallbackPolicy(chain=("no_such_method",))

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackPolicy(chain=())

    def test_type_errors_propagate(self, sg_query, sg_db):
        with pytest.raises(TypeError):
            run_resilient("not a query", sg_db)
        with pytest.raises(TypeError):
            run_resilient(sg_query, "not a database")

    def test_exhaustion_error_carries_report(self, sg_query, sg_db):
        policy = FallbackPolicy(chain=("pointer_counting",),
                                max_facts=0)
        with pytest.raises(ResilienceExhaustedError) as info:
            run_resilient(sg_query, sg_db, policy)
        report = info.value.report
        assert isinstance(report, ExecutionReport)
        assert not report.succeeded
        assert report.method is None
        assert report.fallback_depth == 1

    def test_render_lists_every_attempt(self, sg_query, example5_db):
        report = run_resilient(sg_query, example5_db)
        text = report.render()
        for attempt in report.attempts:
            assert attempt.method in text
        assert "NotApplicableError" in text

    def test_fresh_budget_per_attempt(self, sg_query, example5_db):
        # A shared budget would charge stage N for stage N-1's rounds;
        # each attempt must get its own allowance.
        policy = FallbackPolicy(chain=DEFAULT_CHAIN, timeout=30.0)
        report = run_resilient(sg_query, example5_db, policy)
        assert report.succeeded
        assert report.budget_aborts == 0
