"""Prepared queries, the answer cache, and epoch-based invalidation."""

import io

import pytest

from repro.cli import main as cli_main
from repro.data.workloads import (
    WORKLOADS,
    forest_bindings,
    forest_root,
    sg_forest,
)
from repro.engine.database import Database
from repro.engine.instrumentation import EvalStats
from repro.engine.relation import EmptyRelation, Relation
from repro.exec import (
    AnswerCache,
    CountingTableStore,
    PreparedQuery,
    run_strategy,
)


def make_chain(depth=10):
    db, _source = WORKLOADS["sg_chain"].make_db(depth=depth)
    return db


# -- epochs on relations and databases ---------------------------------

class TestEpochs:
    def test_epoch_counts_new_rows_only(self):
        rel = Relation("up", 2)
        assert rel.epoch == 0
        assert rel.add(("a", "b"))
        assert rel.epoch == 1
        assert not rel.add(("a", "b"))  # duplicate: no bump
        assert rel.epoch == 1
        rel.add(("b", "c"))
        assert rel.epoch == 2

    def test_copy_preserves_epoch(self):
        rel = Relation("up", 2)
        rel.add(("a", "b"))
        clone = rel.copy()
        assert clone.epoch == rel.epoch
        clone.add(("b", "c"))
        assert clone.epoch == rel.epoch + 1
        assert rel.epoch == 1  # original untouched

    def test_database_epoch_of_and_snapshot(self):
        db = Database()
        assert db.epoch_of(("up", 2)) == 0  # absent relation
        db.add_fact("up", "a", "b")
        assert db.epoch_of(("up", 2)) == 1
        snapshot = db.epochs((("up", 2), ("down", 2)))
        assert snapshot == (1, 0)
        db.add_fact("down", "x", "y")
        assert db.epochs((("up", 2), ("down", 2))) == (1, 1)

    def test_empty_relation_has_epoch(self):
        assert EmptyRelation("up", 2).epoch == 0


# -- satellite fixes ---------------------------------------------------

class TestSatelliteFixes:
    def test_ensure_index_counts_builds(self):
        rel = Relation("up", 2)
        rel.add(("a", "b"))
        stats = EvalStats()
        rel.ensure_index([0], stats=stats)
        assert stats.index_builds == 1
        rel.ensure_index([0], stats=stats)  # cached: no rebuild
        assert stats.index_builds == 1

    def test_empty_relation_lookup_validates_positions(self):
        empty = EmptyRelation("up", 2)
        assert empty.lookup((0,), ("a",)) == ()
        with pytest.raises(ValueError):
            empty.lookup((2,), ("a",))
        with pytest.raises(ValueError):
            empty.lookup((-1,), ("a",))


# -- warm == cold across every applicable strategy ---------------------

class TestWarmEqualsCold:
    @pytest.mark.parametrize(
        "method", WORKLOADS["sg_chain"].applicable
    )
    def test_acyclic_workload(self, method):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        prepared = PreparedQuery(
            workload.query, db, method=method,
            cache=AnswerCache(), counting_store=CountingTableStore(),
        )
        for constant in ("a", "x1", "x2", "a"):
            cold = run_strategy(
                method, prepared.bind((constant,)), db
            )
            warm = prepared.run((constant,), db=db)
            assert warm.answers == cold.answers, (method, constant)

    @pytest.mark.parametrize(
        "method", WORKLOADS["sg_cyclic"].applicable
    )
    def test_cyclic_workload(self, method):
        workload = WORKLOADS["sg_cyclic"]
        db, _source = workload.make_db()
        prepared = PreparedQuery(
            workload.query, db, method=method,
            cache=AnswerCache(), counting_store=CountingTableStore(),
        )
        cold = run_strategy(method, prepared.bind(), db)
        warm = prepared.run(db=db)
        assert warm.answers == cold.answers

    def test_auto_method_matches_plan(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        prepared = PreparedQuery(workload.query, db)
        assert prepared.method == "pointer_counting"
        cold = run_strategy(prepared.method, prepared.bind(), db)
        assert prepared.run(db=db).answers == cold.answers


# -- answer cache behaviour --------------------------------------------

class TestAnswerCache:
    def test_repeat_is_a_hit(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        cache = AnswerCache()
        prepared = PreparedQuery(workload.query, db, cache=cache)
        first = prepared.run(db=db)
        second = prepared.run(db=db)
        assert first.stats.cache_hits == 0
        assert first.stats.cache_misses == 1
        assert second.stats.cache_hits == 1
        assert second.extras["cache_hit"] is True
        assert second.answers == first.answers
        assert cache.hits == 1 and cache.misses == 1

    def test_mutation_invalidates_dependent_entries(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        cache = AnswerCache()
        prepared = PreparedQuery(workload.query, db, cache=cache)
        before = prepared.run(db=db)
        db.add_fact("flat", "a", "fresh_peer")
        after = prepared.run(db=db)
        cold = run_strategy(prepared.method, prepared.bind(), db)
        assert after.stats.cache_hits == 0  # stale entry not served
        assert after.answers == cold.answers
        assert ("fresh_peer",) in after.answers
        assert ("fresh_peer",) not in before.answers

    def test_unrelated_mutation_keeps_entries_valid(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        cache = AnswerCache()
        prepared = PreparedQuery(workload.query, db, cache=cache)
        prepared.run(db=db)
        db.add_fact("unrelated_pred", "x", "y")
        again = prepared.run(db=db)
        assert again.stats.cache_hits == 1

    def test_lru_eviction_bounds_size(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        cache = AnswerCache(capacity=2)
        prepared = PreparedQuery(workload.query, db, cache=cache)
        for constant in ("a", "x1", "x2"):
            prepared.run((constant,), db=db)
        assert len(cache) == 2
        assert cache.evictions == 1
        # "a" was evicted (least recently used): re-running misses but
        # still answers correctly.
        result = prepared.run(("a",), db=db)
        assert result.stats.cache_hits == 0
        cold = run_strategy(prepared.method, prepared.bind(("a",)), db)
        assert result.answers == cold.answers

    def test_cache_rejects_entry_from_other_database(self):
        workload = WORKLOADS["sg_chain"]
        db_one = make_chain()
        db_two = make_chain()  # same facts, same epochs, different db
        cache = AnswerCache()
        prepared = PreparedQuery(workload.query, db_one, cache=cache)
        prepared.run(db=db_one)
        result = prepared.run(db=db_two)
        assert result.stats.cache_hits == 0
        assert cache.invalidations == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AnswerCache(capacity=0)

    def test_stats_snapshot_is_consistent(self):
        cache = AnswerCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        snap = cache.stats()
        assert snap == {
            "size": 2, "capacity": 2, "lookups": 2, "hits": 1,
            "misses": 1, "evictions": 1, "invalidations": 0,
            "hit_rate": 0.5,
        }
        assert cache.hit_rate == 0.5

    def test_stats_never_torn_under_contention(self):
        # hit_rate and stats() read multiple counters; each snapshot
        # must satisfy hits + misses == lookups even while other
        # threads are mid-lookup.
        import threading

        cache = AnswerCache(capacity=8)
        stop = threading.Event()
        torn = []

        def mutate():
            i = 0
            while not stop.is_set():
                cache.put(i % 16, i)
                cache.get((i + 3) % 16)
                i += 1

        def observe():
            for _ in range(2000):
                snap = cache.stats()
                if snap["hits"] + snap["misses"] != snap["lookups"]:
                    torn.append(snap)
                    break
                if not 0.0 <= cache.hit_rate <= 1.0:  # pragma: no cover
                    torn.append("hit_rate")
                    break

        workers = [threading.Thread(target=mutate) for _ in range(3)]
        watcher = threading.Thread(target=observe)
        for thread in workers:
            thread.start()
        watcher.start()
        watcher.join(timeout=60.0)
        stop.set()
        for thread in workers:
            thread.join(timeout=60.0)
        assert not torn
        cache.assert_consistent()

    def test_prepare_reuse_counter(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        prepared = PreparedQuery(workload.query, db)
        first = prepared.run(("a",), db=db)
        second = prepared.run(("x1",), db=db)
        assert first.stats.prepare_reuse == 0
        assert second.stats.prepare_reuse == 1
        assert second.extras["prepared"] is True


# -- counting-table memoization ----------------------------------------

class TestCountingTableStore:
    def test_warm_repeat_skips_phase_one(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        store = CountingTableStore()
        prepared = PreparedQuery(
            workload.query, db, method="pointer_counting",
            counting_store=store,
        )
        first = prepared.run(db=db)
        second = prepared.run(db=db)
        assert first.extras["counting_table_reused"] is False
        assert second.extras["counting_table_reused"] is True
        assert second.answers == first.answers
        assert store.hits == 1

    def test_mutation_invalidates_stored_table(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        store = CountingTableStore()
        prepared = PreparedQuery(
            workload.query, db, method="pointer_counting",
            counting_store=store,
        )
        prepared.run(db=db)
        db.add_fact("up", "x9", "x_extra")
        result = prepared.run(db=db)
        assert result.extras["counting_table_reused"] is False
        assert store.invalidations == 1
        cold = run_strategy("pointer_counting", prepared.bind(), db)
        assert result.answers == cold.answers

    def test_store_shared_across_prepared_instances(self):
        workload = WORKLOADS["sg_chain"]
        db = make_chain()
        store = CountingTableStore()
        first = PreparedQuery(
            workload.query, db, method="pointer_counting",
            counting_store=store,
        )
        first.run(db=db)
        second = PreparedQuery(
            workload.query, db, method="pointer_counting",
            counting_store=store,
        )
        result = second.run(db=db)
        assert result.extras["counting_table_reused"] is True

    def test_store_stats_snapshot(self):
        store = CountingTableStore(capacity=1)
        epochs = (("up", 2, 1),)
        store.put("n1", epochs, "table-one")
        assert store.get("n1", epochs) == "table-one"
        assert store.get("n1", (("up", 2, 9),)) is None  # stale
        store.put("n2", epochs, "table-two")
        snap = store.stats()
        assert snap == {
            "size": 1, "capacity": 1, "lookups": 2, "hits": 1,
            "misses": 1, "evictions": 0, "invalidations": 1,
            "hit_rate": 0.5,
        }
        assert store.hit_rate == 0.5
        assert "1 hits" in repr(store)
        store.assert_consistent()


# -- batches and the forest workload -----------------------------------

class TestRunBatch:
    def test_results_follow_binding_order(self):
        db, _source = sg_forest(trees=3, fanout=2, depth=3)
        bindings = forest_bindings(trees=3, queries=9)
        prepared = PreparedQuery(
            WORKLOADS["sg_forest"].query, db, cache=AnswerCache(),
        )
        results = prepared.run_batch(bindings, db=db)
        assert len(results) == len(bindings)
        for binding, result in zip(bindings, results):
            cold = run_strategy(
                prepared.method, prepared.bind(binding), db
            )
            assert result.answers == cold.answers

    def test_batch_is_deterministic(self):
        db, _source = sg_forest(trees=3, fanout=2, depth=3)
        bindings = forest_bindings(trees=3, queries=6)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        first = [
            r.answers for r in prepared.run_batch(bindings, db=db)
        ]
        second = [
            r.answers for r in prepared.run_batch(bindings, db=db)
        ]
        assert first == second

    def test_forest_roots_are_disjoint(self):
        db, _source = sg_forest(trees=3, fanout=2, depth=3)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        answer_sets = [
            prepared.run((forest_root(i),), db=db).answers
            for i in range(3)
        ]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (answer_sets[i] & answer_sets[j])
            assert answer_sets[i]

    def test_binding_arity_checked(self):
        db = make_chain()
        prepared = PreparedQuery(WORKLOADS["sg_chain"].query, db)
        with pytest.raises(ValueError):
            prepared.run(("a", "b"), db=db)
        with pytest.raises(TypeError):
            prepared.run(("a",))  # no database


# -- CLI ---------------------------------------------------------------

class TestCli:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "sg.dl"
        path.write_text("""
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
            ?- sg(a, Y).
        """)
        return str(path)

    @pytest.fixture
    def db_file(self, tmp_path):
        path = tmp_path / "facts.dl"
        path.write_text("""
            up(a, b). up(b, c).
            flat(c, c1). flat(b, b1).
            down(c1, d1). down(d1, e1). down(b1, f1).
        """)
        return str(path)

    def run_cli(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_cache_flag(self, program_file, db_file):
        code, text = self.run_cli(
            "run", program_file, "--db", db_file, "--cache"
        )
        assert code == 0
        assert "(prepared)" in text
        assert "cache  :" in text

    def test_batch_flag_marks_repeats(self, program_file, db_file):
        code, text = self.run_cli(
            "run", program_file, "--db", db_file, "--cache",
            "--batch", "a,b,a",
        )
        assert code == 0
        assert text.count("(cached)") == 1
        assert "1 hits, 2 misses" in text

    def test_cache_conflicts_with_resilient(self, program_file, db_file):
        code, text = self.run_cli(
            "run", program_file, "--db", db_file, "--cache",
            "--resilient",
        )
        assert code == 1
        assert "cannot be combined" in text
