"""Property-based tests (hypothesis) for the core invariants.

* Theorem 1/2/3 equivalence: on random databases every applicable
  strategy computes the same answers as naive evaluation — for acyclic
  and cyclic data, shared variables, multiple rules and mixed-linear
  programs.
* DFS classification: tree+forward+cross+back is a partition of the
  reachable arcs and the ahead subgraph is acyclic.
* Unification: substitution soundness and list decomposition
  round-trips.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, parse_query
from repro.datalog.terms import Constant, Variable, make_list
from repro.datalog.unify import resolve, unify
from repro.exec.strategies import run_naive, run_strategy
from repro.graph import adjacency_successors, classify_arcs
from repro.graph.dfs import Arc

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

node_ids = st.integers(min_value=0, max_value=9)
arc_lists = st.lists(
    st.tuples(node_ids, node_ids), min_size=0, max_size=25
)


def node(i):
    return "n%d" % i


def build_sg_db(up_arcs, flat_pairs, down_arcs):
    db = Database()
    for i, j in up_arcs:
        db.add_fact("up", node(i), node(j))
    for i, j in flat_pairs:
        db.add_fact("flat", node(i), "m%d" % j)
    for i, j in down_arcs:
        db.add_fact("down", "m%d" % i, "m%d" % j)
    db.add_fact("up", "a", node(0))
    return db


SG = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")


class TestEquivalenceSG:
    @SLOW
    @given(arc_lists, arc_lists, arc_lists)
    def test_magic_and_cyclic_match_naive(self, ups, flats, downs):
        db = build_sg_db(ups, flats, downs)
        expected = run_naive(SG, db).answers
        assert run_strategy("magic", SG, db).answers == expected
        assert run_strategy("cyclic_counting", SG, db).answers == expected

    @SLOW
    @given(
        st.lists(st.tuples(node_ids, node_ids), max_size=20).map(
            lambda pairs: [(i, j) for i, j in pairs if i < j]
        ),
        arc_lists,
        arc_lists,
    )
    def test_acyclic_methods_match_naive(self, ups, flats, downs):
        # Up arcs i -> j with i < j: guaranteed acyclic left graph.
        db = build_sg_db(ups, flats, downs)
        expected = run_naive(SG, db).answers
        for method in ("classical_counting", "extended_counting",
                       "reduced_counting", "pointer_counting"):
            assert run_strategy(method, SG, db).answers == expected, method


MIXED = parse_query("""
    p(X, Y) :- flat(X, Y).
    p(X, Y) :- up(X, X1), p(X1, Y).
    p(X, Y) :- p(X, Y1), down(Y1, Y).
    ?- p(a, Y).
""")


class TestEquivalenceMixed:
    @SLOW
    @given(arc_lists, arc_lists, arc_lists)
    def test_reduced_matches_naive_even_cyclic(self, ups, flats, downs):
        db = build_sg_db(ups, flats, downs)
        expected = run_naive(MIXED, db).answers
        assert run_strategy("reduced_counting", MIXED, db).answers \
            == expected
        assert run_strategy("cyclic_counting", MIXED, db).answers \
            == expected


MULTI = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up1(X, X1), sg(X1, Y1), down1(Y1, Y).
    sg(X, Y) :- up2(X, X1), sg(X1, Y1), down2(Y1, Y).
    ?- sg(a, Y).
""")


class TestEquivalenceMultiRule:
    @SLOW
    @given(arc_lists, arc_lists, arc_lists, arc_lists, arc_lists)
    def test_cyclic_counting_matches_naive(self, u1, u2, flats, d1, d2):
        db = Database()
        for pred, pairs in (("up1", u1), ("up2", u2), ("down1", d1),
                            ("down2", d2)):
            side = "m" if pred.startswith("down") else "n"
            for i, j in pairs:
                db.add_fact(pred, "%s%d" % (side, i), "%s%d" % (side, j))
        for i, j in flats:
            db.add_fact("flat", node(i), "m%d" % j)
        db.add_fact("up1", "a", node(0))
        expected = run_naive(MULTI, db).answers
        assert run_strategy("cyclic_counting", MULTI, db).answers \
            == expected
        assert run_strategy("magic", MULTI, db).answers == expected


class TestDFSInvariants:
    @settings(max_examples=60, deadline=None)
    @given(arc_lists)
    def test_partition_and_ahead_acyclicity(self, pairs):
        arcs = [Arc(node(i), node(j)) for i, j in pairs]
        arcs.append(Arc("a", node(0)))
        succ = adjacency_successors(arcs)
        classification = classify_arcs("a", succ)
        # Partition: every reachable arc classified exactly once.
        reachable = [
            arc for arc in arcs if arc.source in classification.nodes
        ]
        assert len(classification.arcs) == len(reachable)
        # Ahead subgraph acyclic.
        ahead_succ = adjacency_successors(classification.ahead)
        assert classify_arcs("a", ahead_succ).is_acyclic()

    @settings(max_examples=60, deadline=None)
    @given(arc_lists)
    def test_order_covers_reachable_nodes(self, pairs):
        arcs = [Arc(node(i), node(j)) for i, j in pairs]
        arcs.append(Arc("a", node(0)))
        succ = adjacency_successors(arcs)
        classification = classify_arcs("a", succ)
        reached = {"a"}
        frontier = ["a"]
        while frontier:
            current = frontier.pop()
            for target, _label in succ(current):
                if target not in reached:
                    reached.add(target)
                    frontier.append(target)
        assert classification.nodes == reached


values = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from(["a", "b", "c"]),
)


class TestUnifyProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(values, max_size=5))
    def test_list_pattern_decomposition(self, items):
        # [H | T] matches any non-empty ground list, splitting it.
        from repro.datalog.terms import cons

        pattern = cons(Variable("H"), Variable("T"))
        ground = Constant(tuple(items))
        subst = unify(pattern, ground, {})
        if not items:
            assert subst is None
        else:
            assert subst["H"].value == items[0]
            assert subst["T"].value == tuple(items[1:])

    @settings(max_examples=100, deadline=None)
    @given(st.lists(values, max_size=4), st.lists(values, max_size=4))
    def test_unify_ground_lists_iff_equal(self, xs, ys):
        left = make_list([Constant(v) for v in xs])
        right = make_list([Constant(v) for v in ys])
        subst = unify(left, right, {})
        assert (subst is not None) == (xs == ys)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(values, min_size=1, max_size=5))
    def test_resolve_rebuilds_value(self, items):
        term = make_list([Constant(v) for v in items])
        resolved = resolve(term, {})
        assert resolved.value == tuple(items)

    @settings(max_examples=100, deadline=None)
    @given(values)
    def test_unify_is_symmetric_for_var_binding(self, value):
        a = unify(Variable("X"), Constant(value), {})
        b = unify(Constant(value), Variable("X"), {})
        assert a == b


class TestParserRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["p", "q", "r"]),
                st.lists(values, min_size=1, max_size=3),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_fact_round_trip(self, facts):
        from repro.datalog import format_program, parse_program
        from repro.datalog.pretty import format_value

        text = "\n".join(
            "%s(%s)." % (pred, ", ".join(format_value(v) for v in args))
            for pred, args in facts
        )
        program = parse_program(text)
        again = parse_program(format_program(program))
        assert again.rules == program.rules
