"""Magic-counting hybrid tests ([16], discussed in §4)."""

import random

import pytest

from repro import Database, parse_query
from repro.exec.magic_counting import recurring_nodes
from repro.exec.strategies import (
    run_cyclic_counting,
    run_magic,
    run_magic_counting,
    run_naive,
)
from repro.graph import Arc, adjacency_successors, classify_arcs


class TestRecurringNodes:
    def classify(self, pairs, source="a"):
        arcs = [Arc(x, y) for x, y in pairs]
        return classify_arcs(source, adjacency_successors(arcs))

    def test_acyclic_graph_has_none(self):
        classification = self.classify([("a", "b"), ("b", "c")])
        assert recurring_nodes(classification) == set()

    def test_cycle_and_descendants(self):
        classification = self.classify([
            ("a", "b"), ("b", "c"), ("c", "b"), ("c", "d"),
        ])
        assert recurring_nodes(classification) == {"b", "c", "d"}

    def test_self_loop(self):
        classification = self.classify([("a", "b"), ("b", "b")])
        assert recurring_nodes(classification) == {"b"}

    def test_nodes_before_cycle_not_recurring(self):
        classification = self.classify([
            ("a", "b"), ("b", "c"), ("c", "d"), ("d", "c"),
        ])
        recurring = recurring_nodes(classification)
        assert "a" not in recurring
        assert "b" not in recurring
        assert recurring == {"c", "d"}


class TestHybridSemantics:
    def test_example5(self, sg_query, example5_db):
        result = run_magic_counting(sg_query, example5_db)
        assert result.answers == {("h",), ("j",), ("l",)}
        # Nodes d and e are recurring; a, b, c stay in the counting part.
        assert result.extras["recurring_nodes"] == 2
        assert result.extras["counting_rows"] == 3

    def test_acyclic_degenerates_to_counting(self, sg_query, sg_db):
        result = run_magic_counting(sg_query, sg_db)
        assert result.answers == {("e1",), ("f1",)}
        assert result.extras["recurring_nodes"] == 0

    def test_source_in_cycle_degenerates_to_magic(self, sg_query):
        db = Database.from_text("""
            up(a, b). up(b, a).
            flat(a, x0). flat(b, y0).
            down(x0, x1). down(x1, x2). down(x2, x3). down(x3, x4).
            down(y0, y1). down(y1, y2). down(y2, y3).
        """)
        result = run_magic_counting(sg_query, db)
        naive = run_naive(sg_query, db)
        assert result.answers == naive.answers
        assert result.extras["counting_rows"] == 0

    def test_sits_between_magic_and_algorithm2(self, sg_query,
                                               example5_db):
        hybrid = run_magic_counting(sg_query, example5_db)
        magic = run_magic(sg_query, example5_db)
        algorithm2 = run_cyclic_counting(sg_query, example5_db)
        assert hybrid.stats.total_work < magic.stats.total_work
        assert algorithm2.stats.total_work < hybrid.stats.total_work

    def test_shared_vars_across_boundary(self):
        # The boundary arc carries a shared value the right part needs.
        query = parse_query("""
            p(X, Y) :- flat(X, Y).
            p(X, Y) :- up(X, X1, W), p(X1, Y1), down(Y1, Y, W).
            ?- p(a, Y).
        """)
        db = Database.from_text("""
            up(a, k0, 7). up(k0, k1, 8). up(k1, k0, 9).
            flat(k0, f).
            down(f, g, 8). down(g, h, 7).
            down(f, zz, 5).
        """)
        hybrid = run_magic_counting(query, db)
        naive = run_naive(query, db)
        assert hybrid.answers == naive.answers

    def test_mutual_recursion_cyclic(self):
        query = parse_query("""
            even(X, Y) :- flat(X, Y).
            even(X, Y) :- up(X, X1), odd(X1, Y1), down(Y1, Y).
            odd(X, Y) :- up(X, X1), even(X1, Y1), down(Y1, Y).
            ?- even(a, Y).
        """)
        db = Database.from_text("""
            up(a, b). up(b, c). up(c, b).
            flat(b, m0). flat(c, n0).
            down(m0, m1). down(m1, m2). down(m2, m3). down(m3, m4).
            down(n0, n1). down(n1, n2). down(n2, n3).
        """)
        hybrid = run_magic_counting(query, db)
        naive = run_naive(query, db)
        assert hybrid.answers == naive.answers


class TestHybridRandom:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_naive_on_random_cyclic_data(self, sg_query, seed):
        rng = random.Random(seed)
        db = Database()
        n = rng.randrange(4, 10)
        for _ in range(rng.randrange(4, 3 * n)):
            db.add_fact("up", "n%d" % rng.randrange(n),
                        "n%d" % rng.randrange(n))
        db.add_fact("up", "a", "n0")
        for _ in range(rng.randrange(1, n)):
            db.add_fact("flat", "n%d" % rng.randrange(n),
                        "m%d" % rng.randrange(n))
        for _ in range(rng.randrange(2, 3 * n)):
            db.add_fact("down", "m%d" % rng.randrange(n),
                        "m%d" % rng.randrange(n))
        hybrid = run_magic_counting(sg_query, db)
        naive = run_naive(sg_query, db)
        assert hybrid.answers == naive.answers
