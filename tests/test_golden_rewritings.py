"""Golden-file tests: rewritten programs are textually stable.

Each golden file under ``tests/golden/`` holds the exact rendered
output of one rewriting on a reference query.  A diff here means the
rewriting (or the printer) changed observable behaviour — fine if
intentional, but it must be a conscious decision: regenerate with
``python tests/golden/regen.py`` after reviewing the diff.
"""

import os

import pytest

from repro import parse_query
from repro.datalog import format_query
from repro.rewriting import (
    classical_counting_rewrite,
    cyclic_counting_program_text,
    encoded_counting_rewrite,
    extended_counting_rewrite,
    magic_rewrite,
    reduce_rewriting,
    supplementary_magic_rewrite,
)

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "golden")

SG = parse_query("""
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
?- sg(a, Y).
""")
MULTI = parse_query("""
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up1(X, X1), sg(X1, Y1), down1(Y1, Y).
sg(X, Y) :- up2(X, X1), sg(X1, Y1), down2(Y1, Y).
?- sg(a, Y).
""")
MIXED = parse_query("""
p(X, Y) :- flat(X, Y).
p(X, Y) :- up(X, X1), p(X1, Y).
p(X, Y) :- p(X, Y1), down(Y1, Y).
?- p(a, Y).
""")

CASES = {
    "sg_magic.txt": lambda: format_query(
        magic_rewrite(SG).query, show_labels=True),
    "sg_sup_magic.txt": lambda: format_query(
        supplementary_magic_rewrite(SG).query, show_labels=True),
    "sg_classical.txt": lambda: format_query(
        classical_counting_rewrite(SG).query, show_labels=True),
    "sg_extended.txt": lambda: format_query(
        extended_counting_rewrite(SG).query, show_labels=True),
    "sg_cyclic_program.txt": lambda: cyclic_counting_program_text(SG),
    "multi_extended.txt": lambda: format_query(
        extended_counting_rewrite(MULTI).query, show_labels=True),
    "multi_encoded.txt": lambda: format_query(
        encoded_counting_rewrite(MULTI).query, show_labels=True),
    "mixed_reduced.txt": lambda: format_query(
        reduce_rewriting(extended_counting_rewrite(MIXED)).query,
        show_labels=True),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_rewriting_matches_golden(name):
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        expected = handle.read().rstrip("\n")
    actual = CASES[name]().rstrip("\n")
    assert actual == expected, (
        "%s drifted from its golden file; review the diff and "
        "regenerate deliberately if intended" % name
    )


def test_goldens_are_paper_shaped():
    """Spot checks tying the goldens back to the paper's figures."""
    with open(os.path.join(GOLDEN_DIR, "sg_classical.txt")) as handle:
        classical = handle.read()
    assert "c_sg__bf(a, 0)." in classical
    with open(os.path.join(GOLDEN_DIR, "mixed_reduced.txt")) as handle:
        reduced = handle.read()
    assert "CNT_PATH" not in reduced  # Algorithm 3 deleted the path
    with open(os.path.join(GOLDEN_DIR,
                           "sg_cyclic_program.txt")) as handle:
        cyclic = handle.read()
    assert "cycle_sg__bf" in cyclic
