"""Parser precedence and builtin operator matrix tests."""

import pytest

from repro import Database, evaluate, parse_program, parse_query
from repro.datalog.terms import Compound, Constant


def expr_of(text):
    rule = parse_program("p(J) :- q(I), J is %s." % text).rules[0]
    return rule.body[1].right


class TestPrecedence:
    def test_multiplication_binds_tighter(self):
        expr = expr_of("I + 2 * 3")
        assert expr.functor == "+"
        assert expr.args[1].functor == "*"

    def test_left_associativity_of_addition(self):
        expr = expr_of("I + 1 + 2")
        assert expr.functor == "+"
        assert expr.args[0].functor == "+"

    def test_parentheses_override(self):
        expr = expr_of("(I + 1) * 2")
        assert expr.functor == "*"
        assert expr.args[0].functor == "+"

    def test_subtraction_chains(self):
        expr = expr_of("I - 1 - 2")
        # (I - 1) - 2
        assert expr.functor == "-"
        assert expr.args[0].functor == "-"
        assert expr.args[1] == Constant(2)

    def test_mixed_evaluates_correctly(self):
        query = parse_query("""
            r(J) :- v(I), J is I + 2 * 3 - 1.
            ?- r(J).
        """)
        db = Database.from_text("v(10).")
        assert evaluate(query, db).answers == {(15,)}

    def test_unary_minus_in_expression(self):
        query = parse_query("""
            r(J) :- v(I), J is I + -3.
            ?- r(J).
        """)
        db = Database.from_text("v(10).")
        assert evaluate(query, db).answers == {(7,)}


OPS_TRUTH = [
    ("=", 3, 3, True), ("=", 3, 4, False),
    ("!=", 3, 4, True), ("!=", 3, 3, False),
    ("<", 3, 4, True), ("<", 4, 3, False), ("<", 3, 3, False),
    ("<=", 3, 3, True), ("<=", 4, 3, False),
    (">", 4, 3, True), (">", 3, 4, False),
    (">=", 3, 3, True), (">=", 3, 4, False),
]


class TestComparisonMatrix:
    @pytest.mark.parametrize("op,a,b,expected", OPS_TRUTH)
    def test_numeric(self, op, a, b, expected):
        query = parse_query("""
            r(ok) :- v(A, B), A %s B.
            ?- r(X).
        """ % op)
        db = Database()
        db.add_fact("v", a, b)
        result = evaluate(query, db)
        assert bool(result.answers) is expected

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("<", "apple", "banana", True),
            (">", "apple", "banana", False),
            ("=", "x", "x", True),
            ("!=", "x", "y", True),
        ],
    )
    def test_strings(self, op, a, b, expected):
        query = parse_query("""
            r(ok) :- v(A, B), A %s B.
            ?- r(X).
        """ % op)
        db = Database()
        db.add_fact("v", a, b)
        assert bool(evaluate(query, db).answers) is expected


class TestIsAndIn:
    def test_is_chain(self):
        query = parse_query("""
            r(K) :- v(I), J is I * 2, K is J + 1.
            ?- r(K).
        """)
        db = Database.from_text("v(5).")
        assert evaluate(query, db).answers == {(11,)}

    def test_in_over_list_value(self):
        query = parse_query("""
            set3(S) :- tag(S).
            r(A) :- set3(S), A in S, A > 1.
            ?- r(A).
        """)
        db = Database()
        db.add_fact("tag", (1, 2, 3))
        assert evaluate(query, db).answers == {(2,), (3,)}

    def test_in_deduplicates_via_set_semantics(self):
        query = parse_query("""
            r(A) :- v(S), A in S.
            ?- r(A).
        """)
        db = Database()
        db.add_fact("v", (1, 1, 2))
        assert evaluate(query, db).answers == {(1,), (2,)}

    def test_eq_as_generator_from_bound_side(self):
        query = parse_query("""
            r(B) :- v(A), B = A.
            ?- r(B).
        """)
        db = Database.from_text("v(7).")
        assert evaluate(query, db).answers == {(7,)}
