"""Targeted tests for small helpers not exercised elsewhere."""

import pytest

from repro import Database, parse_program, parse_query
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import resolve_value
from repro.errors import EvaluationError


class TestResolveValue:
    def test_ground(self):
        from repro.datalog.terms import make_list

        term = make_list([Constant(1), Variable("X")])
        assert resolve_value(term, {"X": Constant(2)}) == (1, 2)

    def test_unbound_raises(self):
        with pytest.raises(EvaluationError):
            resolve_value(Variable("X"), {})


class TestElementaryCyclesLimit:
    def test_limit_respected(self):
        from repro.graph import adjacency_successors, elementary_cycles
        from repro.graph.dfs import Arc

        # Complete digraph over 5 nodes: many elementary cycles.
        arcs = [
            Arc("n%d" % i, "n%d" % j)
            for i in range(5) for j in range(5) if i != j
        ]
        arcs.append(Arc("a", "n0"))
        cycles = elementary_cycles(
            "a", adjacency_successors(arcs), limit=7
        )
        assert len(cycles) == 7


class TestGeneratorsLeftovers:
    def test_chain_with_back_arcs(self):
        from repro.data.generators import chain_with_back_arcs
        from repro.graph import adjacency_successors, is_acyclic
        from repro.graph.dfs import Arc

        facts = chain_with_back_arcs(5, [(3, 1)])
        arcs = [Arc(a, b) for _p, (a, b) in facts]
        assert not is_acyclic("b0", adjacency_successors(arcs))

    def test_inverted_tree_reaches_root(self):
        from repro.data.generators import inverted_tree
        from repro.graph import adjacency_successors, classify_arcs
        from repro.graph.dfs import Arc

        facts, root, leaves = inverted_tree(2, 3)
        arcs = [Arc(a, b) for _p, (a, b) in facts]
        classification = classify_arcs(
            leaves[0], adjacency_successors(arcs)
        )
        assert root in classification.nodes


class TestStrategySupportMaterialization:
    def test_counting_over_derived_left_part(self):
        # Non-recursive derived predicates inside left AND right parts
        # force support materialization in the dedicated evaluators.
        query = parse_query("""
            hop(X, Y) :- up(X, Y).
            hop(X, Y) :- lift(X, Y).
            drop2(X, Y) :- down(X, Y).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- hop(X, X1), sg(X1, Y1), drop2(Y1, Y).
            ?- sg(a, Y).
        """)
        db = Database.from_text("""
            up(a, b). lift(b, c).
            flat(c, c1).
            down(c1, d1). down(d1, e1).
        """)
        from repro.exec.strategies import (
            run_cyclic_counting,
            run_magic_counting,
            run_naive,
            run_pointer_counting,
        )

        expected = run_naive(query, db).answers
        assert expected == {("e1",)}
        for runner in (run_pointer_counting, run_cyclic_counting,
                       run_magic_counting):
            assert runner(query, db).answers == expected


class TestOptimizePlanWithExtensions:
    @pytest.mark.parametrize(
        "method", ["magic_counting", "sup_magic", "qsq",
                   "encoded_counting"]
    )
    def test_forced_extension_methods(self, sg_query, sg_db, method):
        from repro import optimize

        plan = optimize(sg_query, method=method)
        assert plan.execute(sg_db).answers == {("e1",), ("f1",)}


class TestProgramAnalysisEdge:
    def test_zero_arity_recursion(self):
        from repro.datalog import ProgramAnalysis

        program = parse_program("""
            tick :- tock.
            tock :- tick.
            tick :- seed.
        """)
        analysis = ProgramAnalysis(program)
        clique = analysis.clique_of(("tick", 0))
        assert clique.predicates == {("tick", 0), ("tock", 0)}
        assert clique.is_linear()

    def test_self_recursive_single_rule(self):
        from repro.datalog import ProgramAnalysis

        program = parse_program("p(X) :- p(X).")
        analysis = ProgramAnalysis(program)
        clique = analysis.clique_of(("p", 1))
        assert clique.is_recursive()
        assert not clique.exit_rules


class TestRelationIndexVariety:
    def test_multiple_index_position_sets(self):
        from repro.engine.relation import Relation, WILDCARD

        rel = Relation("t", 3)
        for i in range(20):
            rel.add((i % 4, i % 5, i))
        a = sorted(rel.match((1, WILDCARD, WILDCARD)))
        b = sorted(rel.match((WILDCARD, 2, WILDCARD)))
        c = sorted(rel.match((1, 2, WILDCARD)))
        assert set(c) == set(a) & set(b)
        # Indexes stay current across later inserts.
        rel.add((1, 2, 99))
        assert (1, 2, 99) in list(rel.match((1, 2, WILDCARD)))
