"""Dedicated counting evaluator tests (§3.4 pointer method and
Algorithm 2), anchored on the paper's Example 5 walkthrough."""

import pytest

from repro import Database, parse_query
from repro.errors import NotApplicableError
from repro.exec.counting_engine import SOURCE_TRIPLE, CountingEngine
from repro.exec.strategies import (
    run_cyclic_counting,
    run_naive,
    run_pointer_counting,
)
from repro.rewriting.adornment import adorn_query
from repro.rewriting.canonical import canonicalize_clique, query_constants
from repro.rewriting.support import goal_clique_of


def make_engine(query, db, require_acyclic=False):
    adorned = adorn_query(query)
    clique, support = goal_clique_of(adorned)
    assert not support
    canonical = canonicalize_clique(clique, adorned)
    return CountingEngine(
        canonical,
        adorned.goal.key,
        query_constants(adorned.goal),
        db.get,
        require_acyclic=require_acyclic,
    )


class TestExample5CountingSet:
    """The counting table the paper computes: o1..o5 with their
    predecessor sets {nil},{o1},{o2},{o3,o5},{o2,o4}."""

    def table(self, sg_query, example5_db):
        engine = make_engine(sg_query, example5_db)
        return engine.build_counting_set()

    def test_five_rows(self, sg_query, example5_db):
        table = self.table(sg_query, example5_db)
        assert len(table) == 5
        nodes = [row.values[0] for row in table.rows]
        assert nodes == ["a", "b", "c", "d", "e"]

    def test_predecessor_sets(self, sg_query, example5_db):
        table = self.table(sg_query, example5_db)
        ids = {row.values[0]: row.id for row in table.rows}
        preds = {
            row.values[0]: {
                triple[2] for triple in row.triples
            }
            for row in table.rows
        }
        assert preds["a"] == {None}           # {nil}
        assert preds["b"] == {ids["a"]}       # {o1}
        assert preds["c"] == {ids["b"]}       # {o2}
        assert preds["d"] == {ids["c"], ids["e"]}  # {o3, o5}
        assert preds["e"] == {ids["b"], ids["d"]}  # {o2, o4}

    def test_one_back_arc(self, sg_query, example5_db):
        table = self.table(sg_query, example5_db)
        assert table.back_arc_count == 1
        assert not table.is_acyclic()

    def test_triple_count_is_arc_count(self, sg_query, example5_db):
        table = self.table(sg_query, example5_db)
        # 6 up arcs reachable from a, plus the source sentinel.
        assert table.triple_count == 7

    def test_source_sentinel(self, sg_query, example5_db):
        table = self.table(sg_query, example5_db)
        assert SOURCE_TRIPLE in table.rows[table.source_id].triples


class TestExample5Answers:
    def test_answers(self, sg_query, example5_db):
        engine = make_engine(sg_query, example5_db)
        assert engine.run() == frozenset({("h",), ("j",), ("l",)})

    def test_state_space_finite(self, sg_query, example5_db):
        engine = make_engine(sg_query, example5_db)
        engine.run()
        # Theorem 2: bounded by answers-side nodes times counting rows.
        assert 0 < engine.state_count <= 7 * 5

    def test_matches_naive(self, sg_query, example5_db):
        engine_answers = make_engine(sg_query, example5_db).run()
        naive = run_naive(sg_query, example5_db)
        assert engine_answers == naive.answers


class TestAcyclicMode:
    def test_rejects_cycles(self, sg_query, example5_db):
        engine = make_engine(sg_query, example5_db, require_acyclic=True)
        with pytest.raises(NotApplicableError):
            engine.build_counting_set()

    def test_accepts_acyclic(self, sg_query, sg_db):
        engine = make_engine(sg_query, sg_db, require_acyclic=True)
        answers = engine.run()
        assert answers == frozenset({("e1",), ("f1",)})


class TestPointerTableShape:
    def test_rows_per_node_not_per_path(self, sg_query):
        # A diamond: two paths to d, but one counting row.
        db = Database.from_text("""
            up(a, b1). up(a, b2). up(b1, d). up(b2, d).
            flat(d, x). down(x, y1). down(y1, y2).
        """)
        engine = make_engine(sg_query, db)
        table = engine.build_counting_set()
        assert len(table) == 4
        d_row = [r for r in table.rows if r.values == ("d",)][0]
        assert len(d_row.triples) == 2  # one per in-arc

    def test_shared_values_stored(self, example4_query, example4_db_a):
        engine = make_engine(example4_query, example4_db_a)
        table = engine.build_counting_set()
        b_row = [r for r in table.rows if r.values == ("b",)][0]
        (label, shared, _prev) = b_row.triples[0]
        assert shared == (1,)

    def test_bound_head_var_recovered(self, example4_query, example4_db_b):
        engine = make_engine(example4_query, example4_db_b)
        answers = engine.run()
        # down2(c, e, a) requires X = a from the predecessor row.
        assert answers == frozenset({("e",)})


class TestCycleThroughSource:
    def test_source_on_cycle(self, sg_query):
        # up cycle a -> b -> a: paths of length 0 mod 2 return to a.
        db = Database.from_text("""
            up(a, b). up(b, a).
            flat(a, x0). flat(b, y0).
            down(x0, x1). down(x1, x2). down(x2, x3). down(x3, x4).
            down(y0, y1). down(y1, y2). down(y2, y3).
        """)
        engine = make_engine(sg_query, db)
        answers = engine.run()
        naive = run_naive(sg_query, db)
        assert answers == naive.answers
        # x0 (0 ups), y1 (1 up), x2 (2 ups), y3, x4 ...
        assert ("x0",) in answers
        assert ("y1",) in answers
        assert ("x2",) in answers


class TestRunners:
    def test_pointer_runner_extras(self, sg_query, sg_db):
        result = run_pointer_counting(sg_query, sg_db)
        assert result.extras["counting_rows"] == 3
        assert result.extras["counting_triples"] == 3
        assert result.answers == {("e1",), ("f1",)}

    def test_cyclic_runner_extras(self, sg_query, example5_db):
        result = run_cyclic_counting(sg_query, example5_db)
        assert result.extras["back_arcs"] == 1
        assert result.extras["counting_rows"] == 5
        assert result.answers == {("h",), ("j",), ("l",)}

    def test_support_rules_materialized(self):
        # The left part references a derived (non-recursive) predicate.
        query = parse_query("""
            link(X, Y) :- up(X, Y).
            link(X, Y) :- bridge(X, Y).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- link(X, X1), sg(X1, Y1), down(Y1, Y).
            ?- sg(a, Y).
        """)
        db = Database.from_text("""
            up(a, b). bridge(b, c).
            flat(c, c1). down(c1, d1). down(d1, e1).
        """)
        cyclic = run_cyclic_counting(query, db)
        naive = run_naive(query, db)
        assert cyclic.answers == naive.answers == {("e1",)}


class TestAnswerPhaseGuard:
    def test_answer_path_before_compute_answers(self, sg_query, example5_db):
        from repro.errors import EvaluationError

        engine = make_engine(sg_query, example5_db)
        with pytest.raises(EvaluationError, match="answer phase has not run"):
            engine.answer_path(("f",))

    def test_answer_path_after_build_only(self, sg_query, example5_db):
        from repro.errors import EvaluationError

        engine = make_engine(sg_query, example5_db)
        engine.build_counting_set()
        with pytest.raises(EvaluationError, match="answer phase has not run"):
            engine.answer_path(("f",))

    def test_answer_path_after_compute_answers(self, sg_query, example5_db):
        engine = make_engine(sg_query, example5_db)
        answers = engine.compute_answers()
        for values in answers:
            steps = engine.answer_path(values)
            assert steps
        with pytest.raises(KeyError):
            engine.answer_path(("not-an-answer",))
