"""Algorithm 3 (reduction) and Section 5 (RLC-linear) tests."""

import pytest

from repro import Database, parse_query
from repro.datalog import format_rule
from repro.engine import evaluate_query
from repro.rewriting.extended import extended_counting_rewrite
from repro.rewriting.linearity import (
    GENERAL,
    LEFT_LINEAR,
    RIGHT_LINEAR,
    clique_shapes,
    is_left_linear_program,
    is_mixed_linear,
    is_right_linear_program,
    rule_shape,
)
from repro.rewriting.reduction import reduce_rewriting


def reduced(query):
    return reduce_rewriting(extended_counting_rewrite(query))


class TestExample6:
    def test_path_argument_deleted(self, example6_query):
        red = reduced(example6_query)
        assert red.path_deleted_counting
        assert red.path_deleted_answer
        goal = red.query.goal
        assert goal.arity == 1  # just Y, no path

    def test_program_matches_paper(self, example6_query):
        red = reduced(example6_query)
        text = {format_rule(rule) for rule in red.query.program}
        assert text == {
            "c_p__bf(a).",
            "c_p__bf(X1) :- c_p__bf(X), up(X, X1).",
            "p__bf(Y) :- c_p__bf(X), flat(X, Y).",
            "p__bf(Y) :- p__bf(Y1), down(Y1, Y).",
        }

    def test_counting_atom_removed(self, example6_query):
        red = reduced(example6_query)
        recs = [
            rule for rule in red.query.program
            if rule.head.pred == "p__bf"
            and any(a.pred == "p__bf" for a in rule.body_atoms())
        ]
        preds = {a.pred for rule in recs for a in rule.body_atoms()}
        assert "c_p__bf" not in preds

    def test_answers_preserved(self, example6_query, example6_db):
        red = reduced(example6_query)
        result = evaluate_query(red.query, example6_db)
        naive = evaluate_query(example6_query, example6_db)
        assert result.answers == naive.answers

    def test_safe_on_cyclic_up(self, example6_query):
        db = Database.from_text("""
            up(a, b). up(b, a). flat(b, u). down(u, w).
        """)
        red = reduced(example6_query)
        result = evaluate_query(red.query, db)
        naive = evaluate_query(example6_query, db)
        assert result.answers == naive.answers


class TestRightLinear:
    QUERY = """
        reach(X, Y) :- flat(X, Y).
        reach(X, Y) :- up(X, X1), reach(X1, Y).
        ?- reach(a, Y).
    """

    def test_reduces_to_counting_clique(self):
        red = reduced(parse_query(self.QUERY))
        text = {format_rule(rule) for rule in red.query.program}
        # Fact 1: counting rules plus the modified exit rule only.
        assert text == {
            "c_reach__bf(a).",
            "c_reach__bf(X1) :- c_reach__bf(X), up(X, X1).",
            "reach__bf(Y) :- c_reach__bf(X), flat(X, Y).",
        }

    def test_matches_naive(self):
        query = parse_query(self.QUERY)
        db = Database.from_text("""
            up(a, b). up(b, c). flat(a, 1). flat(b, 2). flat(c, 3).
            up(z, w). flat(w, 9).
        """)
        red = reduced(query)
        assert (
            evaluate_query(red.query, db).answers
            == evaluate_query(query, db).answers
        )


class TestLeftLinear:
    QUERY = """
        desc(X, Y) :- flat(X, Y).
        desc(X, Y) :- desc(X, Y1), down(Y1, Y).
        ?- desc(a, Y).
    """

    def test_reduces_to_modified_clique(self):
        red = reduced(parse_query(self.QUERY))
        text = {format_rule(rule) for rule in red.query.program}
        # Fact 1: the counting "clique" degenerates to the seed, which
        # pushes the binding into the exit rule.
        assert text == {
            "c_desc__bf(a).",
            "desc__bf(Y) :- c_desc__bf(X), flat(X, Y).",
            "desc__bf(Y) :- desc__bf(Y1), down(Y1, Y).",
        }

    def test_matches_naive(self):
        query = parse_query(self.QUERY)
        db = Database.from_text("""
            flat(a, u). flat(z, zz). down(u, v). down(v, w).
        """)
        red = reduced(query)
        assert (
            evaluate_query(red.query, db).answers
            == evaluate_query(query, db).answers
        )


class TestGeneralProgramsNotReduced:
    def test_sg_keeps_path(self, sg_query):
        red = reduced(sg_query)
        assert not red.path_deleted_counting
        assert not red.path_deleted_answer
        assert red.query.goal.arity == 2

    def test_sg_answers_unchanged(self, sg_query, sg_db):
        red = reduced(sg_query)
        result = evaluate_query(red.query, sg_db)
        assert result.answers == {("e1",), ("f1",)}

    def test_multi_rule_keeps_path(self, example3_query):
        red = reduced(example3_query)
        assert not red.path_deleted_answer


class TestLinearityClassification:
    def canonical(self, text):
        from repro.rewriting.adornment import adorn_query
        from repro.rewriting.canonical import canonicalize_clique
        from repro.rewriting.support import goal_clique_of

        adorned = adorn_query(parse_query(text))
        clique, _support = goal_clique_of(adorned)
        return canonicalize_clique(clique, adorned)

    def test_example6_is_mixed(self, example6_query):
        from repro.rewriting.adornment import adorn_query
        from repro.rewriting.canonical import canonicalize_clique
        from repro.rewriting.support import goal_clique_of

        adorned = adorn_query(example6_query)
        clique, _support = goal_clique_of(adorned)
        canonical = canonicalize_clique(clique, adorned)
        assert is_mixed_linear(canonical)
        shapes = set(clique_shapes(canonical).values())
        assert shapes == {LEFT_LINEAR, RIGHT_LINEAR}

    def test_pure_right_linear(self):
        canonical = self.canonical(TestRightLinear.QUERY)
        assert is_right_linear_program(canonical)
        assert not is_left_linear_program(canonical)

    def test_pure_left_linear(self):
        canonical = self.canonical(TestLeftLinear.QUERY)
        assert is_left_linear_program(canonical)
        assert not is_right_linear_program(canonical)

    def test_sg_is_general(self):
        canonical = self.canonical("""
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
            ?- sg(a, Y).
        """)
        assert not is_mixed_linear(canonical)
        assert all(
            shape == GENERAL
            for shape in clique_shapes(canonical).values()
        )

    def test_mutual_not_mixed(self):
        canonical = self.canonical("""
            even(X, Y) :- flat(X, Y).
            even(X, Y) :- up(X, X1), odd(X1, Y).
            odd(X, Y) :- up(X, X1), even(X1, Y).
            ?- even(a, Y).
        """)
        # Right-linear shaped rules but over two predicates: not mixed
        # linear by the paper's definition (one recursive predicate).
        assert not is_mixed_linear(canonical)

    def test_rule_shape_direct(self):
        canonical = self.canonical(TestRightLinear.QUERY)
        assert rule_shape(canonical.recursive_rules[0]) == RIGHT_LINEAR


class TestReductionPlumbing:
    def test_requires_extended_rewriting(self):
        with pytest.raises(TypeError):
            reduce_rewriting("not a rewriting")

    def test_dead_rules_dropped(self):
        # Right-linear reduction drops the (duplicate) modified rules.
        red = reduced(parse_query(TestRightLinear.QUERY))
        labels = [rule.label for rule in red.query.program]
        assert len(labels) == len(set(labels))

    def test_source_preserved(self, example6_query):
        red = reduced(example6_query)
        assert red.source.query.goal.pred == red.query.goal.pred
