"""Derivation tracing tests."""

import pytest

from repro import Database, parse_program, parse_query
from repro.engine import SemiNaiveEngine
from repro.engine.tracing import DerivationTrace


def run_traced(program_text, db_text):
    program = parse_program(program_text)
    db = Database.from_text(db_text)
    trace = DerivationTrace()
    engine = SemiNaiveEngine(program, db, trace=trace)
    derived = engine.run()
    return derived, trace


class TestRecording:
    def test_records_first_derivation(self):
        derived, trace = run_traced(
            """
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
            """,
            "arc(a, b). arc(b, c).",
        )
        derivation = trace.derivation_of(("tc", 2), ("a", "c"))
        assert derivation is not None
        premise_keys = {key for key, _v in derivation.premises}
        assert premise_keys == {("tc", 2), ("arc", 2)}

    def test_base_facts_not_recorded(self):
        _derived, trace = run_traced(
            "p(X) :- q(X).", "q(a)."
        )
        assert trace.derivation_of(("q", 1), ("a",)) is None
        assert len(trace) == 1

    def test_first_derivation_kept(self):
        # Two rules can derive p(a); only one derivation is stored.
        _derived, trace = run_traced(
            """
            p(X) :- r1(X).
            p(X) :- r2(X).
            """,
            "r1(a). r2(a).",
        )
        derivation = trace.derivation_of(("p", 1), ("a",))
        assert derivation.rule_label in ("r0", "r1")
        assert len(trace) == 1


class TestExplain:
    def test_tree_reaches_base_facts(self):
        _derived, trace = run_traced(
            """
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
            """,
            "arc(a, b). arc(b, c). arc(c, d).",
        )
        tree = trace.explain(("tc", 2), ("a", "d"))
        assert not tree.is_base()
        leaves = []

        def collect(node):
            if node.is_base():
                leaves.append((node.key, node.values))
            for child in node.children:
                collect(child)

        collect(tree)
        assert (("arc", 2), ("a", "b")) in leaves
        assert (("arc", 2), ("c", "d")) in leaves
        assert tree.size() >= 5

    def test_render_is_readable(self):
        _derived, trace = run_traced(
            """
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
            """,
            "arc(a, b). arc(b, c).",
        )
        text = trace.explain(("tc", 2), ("a", "c")).render()
        assert "tc(a, c)" in text
        assert "[r1]" in text
        assert "arc(a, b)" in text

    def test_explains_counting_answers(self, sg_query, sg_db):
        from repro.rewriting import extended_counting_rewrite

        rewriting = extended_counting_rewrite(sg_query)
        trace = DerivationTrace()
        engine = SemiNaiveEngine(
            rewriting.query.program, sg_db, trace=trace
        )
        engine.run()
        tree = trace.explain(("sg__bf", 2), ("e1", ()))
        text = tree.render()
        # The explanation threads through the counting predicate.
        assert "c_sg__bf" in text

    def test_unknown_fact_is_leaf(self):
        trace = DerivationTrace()
        node = trace.explain(("nope", 1), ("x",))
        assert node.is_base()
        assert node.size() == 1

    def test_max_depth_guard(self):
        trace = DerivationTrace()
        # Artificial self-supporting record (cannot arise from the
        # engine, which only records first derivations).
        trace.record(("p", 1), ("a",), "r0", ((("p", 1), ("a",)),))
        tree = trace.explain(("p", 1), ("a",), max_depth=5)
        assert tree.size() <= 7
