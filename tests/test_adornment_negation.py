"""Adornment of programs with negated derived atoms, and pipeline
behaviour around them."""

import pytest

from repro import Database, parse_query
from repro.exec.strategies import run_magic, run_naive
from repro.rewriting.adornment import adorn_query


QUERY_TEXT = """
    risky(X) :- watchlist(X).
    safe_reach(X, Y) :- arc(X, Y), not risky(Y).
    safe_reach(X, Y) :- safe_reach(X, Z), arc(Z, Y), not risky(Y).
    ?- safe_reach(a, Y).
"""


class TestAdornedNegation:
    def test_negated_derived_atom_gets_adorned(self):
        adorned = adorn_query(parse_query(QUERY_TEXT))
        negated = {
            atom.pred
            for rule in adorned.program
            for atom in rule.negated_atoms()
        }
        # Y is bound by arc before the negation: adornment b.
        assert "risky__b" in negated
        heads = {rule.head.pred for rule in adorned.program}
        assert "risky__b" in heads

    def test_magic_handles_negated_derived(self):
        query = parse_query(QUERY_TEXT)
        db = Database.from_text("""
            arc(a, b). arc(b, c). arc(c, d). arc(a, e).
            watchlist(c). watchlist(e).
        """)
        naive = run_naive(query, db)
        magic = run_magic(query, db)
        assert magic.answers == naive.answers == {("b",)}

    def test_negated_predicate_left_unrestricted(self):
        # Restricting a negated predicate would break stratification
        # (its magic rule would depend on the negating clique), so the
        # rewriting leaves it unguarded and generates no magic rules
        # for negated occurrences.
        from repro.datalog import ProgramAnalysis
        from repro.engine.stratify import check_stratified
        from repro.rewriting import magic_rewrite

        rewriting = magic_rewrite(parse_query(QUERY_TEXT))
        magic_heads = {rule.head.pred for rule in rewriting.magic_rules}
        assert "m_risky__b" not in magic_heads
        risky_rules = rewriting.query.program.rules_for(("risky__b", 1))
        assert all(
            not atom.pred.startswith("m_")
            for rule in risky_rules
            for atom in rule.body_atoms()
        )
        check_stratified(ProgramAnalysis(rewriting.query.program))

    def test_sup_magic_handles_negated_derived(self):
        from repro.exec.strategies import run_sup_magic

        query = parse_query(QUERY_TEXT)
        db = Database.from_text("""
            arc(a, b). arc(b, c). arc(c, d). arc(a, e).
            watchlist(c). watchlist(e).
        """)
        naive = run_naive(query, db)
        assert run_sup_magic(query, db).answers == naive.answers

    def test_unrestricted_closure_covers_helpers(self):
        # risky calls a derived helper; leaving risky unrestricted must
        # also leave the helper evaluable (no orphaned magic guard).
        query = parse_query("""
            flagged(X) :- watchlist(X).
            risky(X) :- flagged(X).
            safe_reach(X, Y) :- arc(X, Y), not risky(Y).
            safe_reach(X, Y) :- safe_reach(X, Z), arc(Z, Y),
                                not risky(Y).
            ?- safe_reach(a, Y).
        """)
        db = Database.from_text("""
            arc(a, b). arc(b, c). watchlist(c).
        """)
        naive = run_naive(query, db)
        assert naive.answers == {("b",)}
        assert run_magic(query, db).answers == naive.answers

    def test_counting_pipeline_with_lower_stratum_negation(self):
        # The negation lives in the recursive clique's rules, so the
        # canonical right part carries it; the dedicated evaluators
        # must evaluate it through the support resolver.
        query = parse_query(QUERY_TEXT)
        db = Database.from_text("""
            arc(a, b). arc(b, c). arc(c, d).
            watchlist(c).
        """)
        from repro.exec.strategies import run_cyclic_counting

        naive = run_naive(query, db)
        counting = run_cyclic_counting(query, db)
        assert counting.answers == naive.answers == {("b",)}

    def test_sg_with_negated_filter_in_right_part(self):
        query = parse_query("""
            blocked(Y) :- banned(Y).
            sg(X, Y) :- flat(X, Y), not blocked(Y).
            sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y),
                        not blocked(Y).
            ?- sg(a, Y).
        """)
        db = Database.from_text("""
            up(a, b). flat(b, m0). down(m0, m1).
            banned(m1).
            up(a, c). flat(c, n0). down(n0, n1).
        """)
        from repro.exec.strategies import (
            run_cyclic_counting,
            run_pointer_counting,
        )

        naive = run_naive(query, db)
        assert naive.answers == {("n1",)}
        assert run_pointer_counting(query, db).answers == naive.answers
        assert run_cyclic_counting(query, db).answers == naive.answers
