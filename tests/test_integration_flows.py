"""End-to-end integration flows combining several subsystems."""

import pytest

from repro import Database, optimize, parse_query
from repro.datalog import Query, unfold_all_nonrecursive
from repro.exec.strategies import run_naive, run_strategy


class TestUnfoldThenCount:
    QUERY_TEXT = """
        hop(X, Y) :- up(X, Y).
        hop(X, Y) :- lift(X, Y).
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- hop(X, X1), sg(X1, Y1), down(Y1, Y).
        ?- sg(a, Y).
    """

    def db(self):
        return Database.from_text("""
            up(a, b). lift(b, c).
            flat(c, c1). down(c1, d1). down(d1, e1).
        """)

    def test_unfolded_program_counts_without_support(self):
        query = parse_query(self.QUERY_TEXT)
        flattened = Query(
            query.goal,
            unfold_all_nonrecursive(query.program, keep=[("sg", 2)]),
        )
        db = self.db()
        expected = run_naive(query, db).answers
        result = run_strategy("pointer_counting", flattened, db)
        assert result.answers == expected == {("e1",)}
        # The unfolded clique now has one arc per base alternative.
        assert result.extras["counting_rows"] == 3

    def test_unfolded_matches_supported_everywhere(self):
        query = parse_query(self.QUERY_TEXT)
        flattened = Query(
            query.goal,
            unfold_all_nonrecursive(query.program, keep=[("sg", 2)]),
        )
        db = self.db()
        for method in ("magic", "cyclic_counting", "extended_counting"):
            direct = run_strategy(method, query, db)
            unfolded = run_strategy(method, flattened, db)
            assert direct.answers == unfolded.answers, method


class TestOptimizeAcrossDataShapes:
    """The same query routed to different methods as the data changes."""

    QUERY_TEXT = """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
        ?- sg(a, Y).
    """

    def test_routing(self):
        query = parse_query(self.QUERY_TEXT)
        acyclic = Database.from_text(
            "up(a, b). flat(b, m). down(m, n)."
        )
        cyclic = Database.from_text(
            "up(a, b). up(b, a). flat(b, m). down(m, n)."
        )
        plans = {
            "acyclic": optimize(query, acyclic),
            "cyclic": optimize(query, cyclic),
            "no-db": optimize(query),
        }
        assert plans["acyclic"].method == "pointer_counting"
        assert plans["cyclic"].method == "cyclic_counting"
        assert plans["no-db"].method == "cyclic_counting"
        for name, db in (("acyclic", acyclic), ("cyclic", cyclic)):
            result = plans[name].execute(db)
            assert result.answers == run_naive(query, db).answers

    def test_plan_reusable_across_databases(self):
        # A plan built without a database is a prepared query.
        query = parse_query(self.QUERY_TEXT)
        plan = optimize(query)
        db1 = Database.from_text("up(a, b). flat(b, m). down(m, n).")
        db2 = Database.from_text(
            "up(a, c). flat(c, p). down(p, q). down(q, r)."
        )
        assert plan.execute(db1).answers == {("n",)}
        assert plan.execute(db2).answers == {("q",)}


class TestTraceOnOptimizedProgram:
    def test_reduced_program_traceable(self, example6_query, example6_db):
        from repro import extended_counting_rewrite, reduce_rewriting
        from repro.engine import DerivationTrace, SemiNaiveEngine

        reduced = reduce_rewriting(
            extended_counting_rewrite(example6_query)
        )
        trace = DerivationTrace()
        engine = SemiNaiveEngine(
            reduced.query.program, example6_db, trace=trace
        )
        engine.run()
        tree = trace.explain(reduced.query.goal.key, ("w",))
        text = tree.render()
        assert "c_p__bf" in text  # counting seed appears in the proof
        assert "down(" in text
