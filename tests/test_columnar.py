"""Differential suite for the columnar storage backend.

The contract of ``REPRO_COLUMNAR`` (see :mod:`repro.engine.columnar`)
is observational equivalence: both backends must produce byte-identical
rendered answers and identical semantic work counters on every workload
and strategy.  This suite enforces that over the full paper matrix —
the e1–e10 experiment shapes plus the S1 (``sg_cylinder``) and S3
(``sg_forest``) workloads — and covers the storage primitives the
equivalence rests on: the :class:`ColumnStore` id mirror, the lossless
decode contract, and ``pinned()`` prefix snapshots under concurrent
writers.
"""

import threading

import pytest

from repro.data.workloads import WORKLOADS
from repro.datalog.pretty import format_value
from repro.engine.columnar import (
    ColumnStore,
    columnar_enabled,
    set_columnar,
    use_backend,
)
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.exec.strategies import run_strategy

#: Every (workload, strategy) cell of the paper matrix.  This spans the
#: program shapes of experiments e1–e10 (trees, chains, multi-rule,
#: shared variables, cyclic data, mixed/right/left-linear) plus the S1
#: cylinder and S3 forest workloads named by the issue.
MATRIX = [
    (wname, sname)
    for wname, workload in sorted(WORKLOADS.items())
    for sname in workload.applicable
]


def _render(answers):
    """Render an answer set exactly as the CLI would print it.

    Sorted, formatted through :func:`format_value`, encoded — the
    "byte-identical rendered answers" half of the backend contract.
    """
    lines = sorted(
        "(%s)" % ", ".join(format_value(v) for v in row)
        for row in answers
    )
    return "\n".join(lines).encode("utf-8")


def _run(backend, wname, sname):
    workload = WORKLOADS[wname]
    with use_backend(backend):
        db, _source = workload.make_db()
        result = run_strategy(sname, workload.query, db)
    return _render(result.answers), dict(result.stats.as_dict())


class TestDifferentialBackends:
    @pytest.mark.parametrize("wname,sname", MATRIX)
    def test_backends_agree(self, wname, sname):
        rows_rendered, rows_stats = _run(False, wname, sname)
        col_rendered, col_stats = _run(True, wname, sname)
        assert rows_rendered == col_rendered
        # The headline counters first, for a readable failure…
        assert rows_stats["facts_derived"] == col_stats["facts_derived"]
        assert rows_stats["iterations"] == col_stats["iterations"]
        # …then the whole dict: *every* semantic work counter must
        # match, including index_probes (the A3 ablation reads it) and
        # tuples_scanned.
        assert rows_stats == col_stats

    def test_backend_flag_roundtrip(self):
        before = columnar_enabled()
        with use_backend(not before):
            assert columnar_enabled() is (not before)
            with use_backend(before):
                assert columnar_enabled() is before
            assert columnar_enabled() is (not before)
        assert columnar_enabled() is before

    def test_set_columnar_returns_previous(self):
        before = columnar_enabled()
        try:
            assert set_columnar(not before) is before
            assert set_columnar(before) is (not before)
        finally:
            set_columnar(before)

    def test_relations_keep_construction_backend(self):
        # The flag is read at construction; existing relations keep
        # their backend, which is what lets this suite hold one
        # relation per backend side by side.
        pool_db = Database()
        with use_backend(True):
            columnar = pool_db.relation("c", 2)
            columnar.add(("a", "b"))
        with use_backend(False):
            rows = pool_db.relation("r", 2)
            rows.add(("a", "b"))
            assert columnar.columnar
            assert columnar.storage_info()["backend"] == "columnar"
        assert not rows.columnar
        assert rows.storage_info()["backend"] == "rows"


class TestColumnStore:
    def test_append_row_roundtrip(self):
        store = ColumnStore(3)
        store.append((1, 2, 3))
        store.append((4, 5, 6))
        assert len(store) == 2
        assert store.row(0) == (1, 2, 3)
        assert store.row(1) == (4, 5, 6)
        assert list(store.column(1)) == [2, 5]

    def test_zero_arity(self):
        store = ColumnStore(0)
        assert len(store) == 0
        with pytest.raises(ValueError):
            ColumnStore(-1)

    def test_matching_scans_bound_columns(self):
        store = ColumnStore(2)
        for row in ((1, 10), (2, 20), (1, 30), (1, 10)):
            store.append(row)
        assert store.matching((0,), (1,)) == [0, 2, 3]
        assert store.matching((0, 1), (1, 10)) == [0, 3]
        assert store.matching((1,), (99,)) == []
        # No bound positions: every ordinal, in insertion order.
        assert store.matching((), ()) == [0, 1, 2, 3]

    def test_prefix_is_a_copy(self):
        store = ColumnStore(2)
        store.append((1, 2))
        store.append((3, 4))
        prefix = store.prefix(1)
        assert len(prefix) == 1
        assert prefix.row(0) == (1, 2)
        store.append((5, 6))
        assert len(prefix) == 1
        with pytest.raises(ValueError):
            store.prefix(7)

    def test_bytes_roundtrip(self):
        store = ColumnStore(2)
        store.append((1, -2))
        store.append((2 ** 40, 7))
        data = store.to_bytes()
        assert ColumnStore.from_bytes(data) == store
        # 16-byte header + arity * rows machine words.
        assert len(data) == 16 + 2 * 2 * 8

    def test_bytes_rejects_corruption(self):
        store = ColumnStore(1)
        store.append((42,))
        data = store.to_bytes()
        with pytest.raises(ValueError):
            ColumnStore.from_bytes(data[:-1])
        with pytest.raises(ValueError):
            ColumnStore.from_bytes(b"\xff" * 16)


class TestDecodeContract:
    def test_decode_ordinal_matches_insertion_log(self):
        with use_backend(True):
            db = Database()
            rel = db.relation("edge", 2)
            rows = [("n%d" % i, "n%d" % (i + 1)) for i in range(50)]
            rel.add_all(rows)
        for ordinal, row in enumerate(rows):
            assert rel.decode_ordinal(ordinal) == row
        assert rel.column_bytes() == rel._ids.to_bytes()

    def test_row_backend_has_no_columns(self):
        with use_backend(False):
            db = Database()
            rel = db.relation("edge", 2)
            rel.add(("a", "b"))
        for probe in (
            lambda: rel.id_column(0),
            lambda: rel.id_row(0),
            lambda: rel.scan_ids((0,), ("a",)),
            lambda: rel.column_bytes(),
        ):
            with pytest.raises(TypeError):
                probe()

    def test_scan_ids_matches_lookup(self):
        with use_backend(True):
            db = Database()
            rel = db.relation("edge", 2)
            rel.add_all([("a", "b"), ("c", "b"), ("a", "d")])
        ordinals = rel.scan_ids((0,), ("a",))
        decoded = {rel.decode_ordinal(o) for o in ordinals}
        assert decoded == set(rel.lookup((0,), "a"))
        # A constant the pool never interned cannot match anything.
        assert rel.scan_ids((0,), ("zzz",)) == []


class TestPinnedUnderConcurrentWriters:
    """``pinned()`` must serve a frozen prefix while writers append."""

    ROWS = 400

    def _hammer(self, backend):
        with use_backend(backend):
            db = Database()
            rel = db.relation("edge", 2)
        stop = threading.Event()
        failures = []

        def writer():
            i = 0
            while not stop.is_set():
                rel.add(("w%d" % i, "w%d" % (i + 1)))
                i += 1
                if i >= self.ROWS:
                    break

        def reader():
            while not stop.is_set():
                epoch = rel.epoch
                pinned = rel.pinned(epoch)
                try:
                    assert len(pinned) == epoch
                    assert pinned.epoch == epoch
                    assert set(pinned._log) == pinned.tuples
                    if pinned.columnar:
                        for ordinal in (0, epoch // 2, epoch - 1):
                            if 0 <= ordinal < epoch:
                                assert (
                                    pinned.decode_ordinal(ordinal)
                                    == pinned._log[ordinal]
                                )
                except AssertionError as exc:  # pragma: no cover
                    failures.append(exc)
                    stop.set()
                if epoch >= self.ROWS:
                    break

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stop.set()
        assert not failures
        return rel

    def test_columnar_pinned_is_consistent_prefix(self):
        rel = self._hammer(True)
        assert rel.columnar

    def test_row_pinned_is_consistent_prefix(self):
        rel = self._hammer(False)
        assert not rel.columnar

    def test_pinned_views_agree_across_backends(self):
        rows = [("p%d" % i, "p%d" % (i + 1)) for i in range(64)]
        views = {}
        for backend in (False, True):
            with use_backend(backend):
                db = Database()
                rel = db.relation("edge", 2)
                rel.add_all(rows)
            views[backend] = rel.pinned(32)
        assert views[False].tuples == views[True].tuples
        assert views[False]._log == views[True]._log
        assert views[True]._ids is not None
        assert len(views[True]._ids) == 32

    def test_snapshot_equivalence_across_backends(self):
        # A database snapshot pins every relation; both backends must
        # expose the same frozen rows through it.
        contents = {}
        for backend in (False, True):
            with use_backend(backend):
                db = Database()
                rel = db.relation("edge", 2)
                rel.add_all([("a", "b"), ("b", "c")])
                snap = db.snapshot()
                rel.add(("c", "d"))
                contents[backend] = set(snap.get(("edge", 2)))
        assert contents[False] == contents[True] == {
            ("a", "b"), ("b", "c"),
        }


class TestStorageInfo:
    def test_database_storage_info(self):
        for backend, expected in ((True, "columnar"), (False, "rows")):
            with use_backend(backend):
                db = Database()
                db.add_fact("edge", "a", "b")
            info = db.storage_info()
            assert info["backend"] == expected
            assert "edge/2" in info["relations"]
            if backend:
                assert info["column_bytes"] > 0
            else:
                assert info["column_bytes"] == 0

    def test_relation_without_pool_stays_rows(self):
        # Bare relations (no intern pool) cannot encode ids, whatever
        # the flag says.
        with use_backend(True):
            rel = Relation("scratch", 2)
        rel.add(("a", "b"))
        assert not rel.columnar
        assert rel.storage_info()["backend"] == "rows"
