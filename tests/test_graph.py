"""Graph substrate tests, anchored on the paper's Example 2."""

from repro.graph import (
    MULTIPLE,
    RECURRING,
    SINGLE,
    Arc,
    adjacency_successors,
    classify_arcs,
    elementary_cycles,
    is_acyclic,
    is_tree,
    node_classes,
)
from repro.graph.properties import strongly_connected_components


def successors_of(arc_pairs):
    return adjacency_successors(
        [Arc(a, b) for a, b in arc_pairs]
    )


EXAMPLE2 = [
    ("a", "b"), ("a", "c"), ("d", "b"),
    ("c", "b"), ("b", "c"), ("a", "d"),
]


class TestExample2:
    """The paper's Example 2 classification, verbatim."""

    def classification(self):
        return classify_arcs("a", successors_of(EXAMPLE2))

    def arc_set(self, arcs):
        return {(arc.source, arc.target) for arc in arcs}

    def test_tree_arcs(self):
        assert self.arc_set(self.classification().tree) == {
            ("a", "b"), ("b", "c"), ("a", "d")
        }

    def test_forward_arc(self):
        assert self.arc_set(self.classification().forward) == {("a", "c")}

    def test_cross_arc(self):
        assert self.arc_set(self.classification().cross) == {("d", "b")}

    def test_back_arc(self):
        assert self.arc_set(self.classification().back) == {("c", "b")}

    def test_ahead_is_rest(self):
        classification = self.classification()
        assert len(classification.ahead) == 5
        assert not classification.is_acyclic()

    def test_node_classes(self):
        classes = node_classes("a", successors_of(EXAMPLE2))
        assert classes["a"] == SINGLE
        assert classes["d"] == SINGLE
        assert classes["b"] == RECURRING
        assert classes["c"] == RECURRING

    def test_elementary_cycle(self):
        cycles = elementary_cycles("a", successors_of(EXAMPLE2))
        assert any(set(c) == {"b", "c"} for c in cycles)
        assert all(len(set(c)) == len(c) for c in cycles)


class TestClassification:
    def test_chain_all_tree(self):
        pairs = [("a", "b"), ("b", "c"), ("c", "d")]
        classification = classify_arcs("a", successors_of(pairs))
        assert len(classification.tree) == 3
        assert classification.is_acyclic()
        assert classification.order == ("a", "b", "c", "d")

    def test_unreachable_excluded(self):
        pairs = [("a", "b"), ("x", "y")]
        classification = classify_arcs("a", successors_of(pairs))
        assert classification.nodes == {"a", "b"}

    def test_self_loop_is_back_arc(self):
        pairs = [("a", "a")]
        classification = classify_arcs("a", successors_of(pairs))
        assert len(classification.back) == 1
        assert not classification.is_acyclic()

    def test_diamond_multiple(self):
        pairs = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        classes = node_classes("a", successors_of(pairs))
        assert classes["d"] == MULTIPLE
        assert classes["b"] == SINGLE
        assert is_acyclic("a", successors_of(pairs))
        assert not is_tree("a", successors_of(pairs))

    def test_tree_predicate(self):
        pairs = [("a", "b"), ("a", "c")]
        assert is_tree("a", successors_of(pairs))

    def test_ahead_predecessors(self):
        classification = classify_arcs("a", successors_of(EXAMPLE2))
        preds = classification.ahead_predecessors()
        assert {arc.source for arc in preds["b"]} == {"a", "d"}

    def test_back_predecessors(self):
        classification = classify_arcs("a", successors_of(EXAMPLE2))
        preds = classification.back_predecessors()
        assert {arc.source for arc in preds["b"]} == {"c"}

    def test_labels_preserved(self):
        arcs = [Arc("a", "b", ("r1", (7,)))]
        classification = classify_arcs(
            "a", adjacency_successors(arcs)
        )
        assert classification.tree[0].label == ("r1", (7,))

    def test_parallel_labeled_arcs(self):
        arcs = [Arc("a", "b", "r1"), Arc("a", "b", "r2")]
        classification = classify_arcs("a", adjacency_successors(arcs))
        # One becomes the tree arc, the other a forward arc.
        assert len(classification.tree) == 1
        assert len(classification.forward) == 1


class TestAheadAcyclicInvariant:
    def test_ahead_subgraph_is_acyclic(self):
        # The ahead arcs of any classification form a DAG — the
        # property Algorithm 2's finiteness rests on.
        import random

        rng = random.Random(42)
        for _ in range(25):
            n = rng.randrange(3, 12)
            pairs = [
                (rng.randrange(n), rng.randrange(n))
                for _ in range(rng.randrange(2, 25))
            ]
            pairs = [(a, b) for a, b in pairs if a != b or rng.random() < .3]
            classification = classify_arcs(0, successors_of(pairs))
            ahead_pairs = [
                (arc.source, arc.target) for arc in classification.ahead
            ]
            sub = classify_arcs(0, successors_of(ahead_pairs))
            assert sub.is_acyclic()

    def test_partition_is_complete(self):
        classification = classify_arcs("a", successors_of(EXAMPLE2))
        assert len(classification.arcs) == len(EXAMPLE2)


class TestSCC:
    def test_components(self):
        adjacency = {
            "a": ["b"], "b": ["c"], "c": ["b", "d"], "d": [],
        }
        sccs = strongly_connected_components(adjacency)
        assert sccs["b"] == sccs["c"]
        assert sccs["a"] != sccs["b"]
        assert sccs["d"] != sccs["b"]

    def test_singletons(self):
        adjacency = {"x": ["y"], "y": []}
        sccs = strongly_connected_components(adjacency)
        assert len(set(sccs.values())) == 2
