"""CLI tests (python -m repro ...)."""

import io

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "sg.dl"
    path.write_text("""
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
        ?- sg(a, Y).
    """)
    return str(path)


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text("""
        up(a, b). up(b, c).
        flat(c, c1). flat(b, b1).
        down(c1, d1). down(d1, e1). down(b1, f1).
    """)
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRun:
    def test_auto(self, program_file, db_file):
        code, text = run_cli("run", program_file, "--db", db_file)
        assert code == 0
        assert "pointer_counting" in text
        assert "('e1',)" in text
        assert "count  : 2 answers" in text

    def test_forced_method(self, program_file, db_file):
        code, text = run_cli(
            "run", program_file, "--db", db_file, "--method", "magic"
        )
        assert code == 0
        assert "magic" in text

    def test_divergence_reported_as_error(self, program_file, tmp_path):
        cyclic = tmp_path / "cyclic.dl"
        cyclic.write_text("""
            up(a, b). up(b, a). flat(b, x). down(x, y).
        """)
        code, text = run_cli(
            "run", program_file, "--db", str(cyclic),
            "--method", "classical_counting",
        )
        assert code == 1
        assert "error" in text

    def test_missing_file(self):
        code, text = run_cli("run", "/nonexistent/p.dl")
        assert code == 1
        assert "error" in text

    def test_timeout_flag_passes_when_generous(self, program_file,
                                               db_file):
        code, text = run_cli(
            "run", program_file, "--db", db_file, "--timeout", "60"
        )
        assert code == 0
        assert "count  : 2 answers" in text

    def test_max_facts_budget_reported_as_error(self, program_file,
                                                db_file):
        code, text = run_cli(
            "run", program_file, "--db", db_file,
            "--method", "naive", "--max-facts", "1",
        )
        assert code == 1
        assert "derived-fact budget" in text

    def test_resilient_recovers_from_divergence(self, program_file,
                                                tmp_path):
        cyclic = tmp_path / "cyclic.dl"
        cyclic.write_text("""
            up(a, b). up(b, a). flat(b, x). down(x, y).
        """)
        code, text = run_cli(
            "run", program_file, "--db", str(cyclic), "--resilient"
        )
        assert code == 0
        assert "resilient" in text
        # Failed stages are itemised with their typed errors.
        assert "tried  : pointer_counting -> NotApplicableError" in text
        assert "count  :" in text

    def test_resilient_chain_starts_at_requested_method(
            self, program_file, db_file):
        code, text = run_cli(
            "run", program_file, "--db", db_file,
            "--method", "sup_magic", "--resilient",
        )
        assert code == 0
        assert "method : sup_magic (resilient, 0 failed attempts)" in text


class TestRewrite:
    @pytest.mark.parametrize(
        "method,marker",
        [
            ("magic", "m_sg__bf"),
            ("classical_counting", "c_sg__bf"),
            ("extended_counting", "CNT_PATH"),
            ("reduced_counting", "c_sg__bf"),
            ("cyclic_counting", "cycle_sg__bf"),
        ],
    )
    def test_methods(self, program_file, method, marker):
        code, text = run_cli(
            "rewrite", program_file, "--method", method
        )
        assert code == 0
        assert marker in text


class TestExplain:
    def test_without_db(self, program_file):
        code, text = run_cli("explain", program_file)
        assert code == 0
        assert "cyclic_counting" in text

    def test_with_db(self, program_file, db_file):
        code, text = run_cli("explain", program_file, "--db", db_file)
        assert code == 0
        assert "pointer_counting" in text


class TestBench:
    def test_workload(self):
        code, text = run_cli(
            "bench", "sg_chain", "--methods", "naive,magic",
            "--param", "depth=6",
        )
        assert code == 0
        assert "naive" in text
        assert "vs_magic" in text

    def test_default_methods(self):
        code, text = run_cli("bench", "mixed_linear")
        assert code == 0
        assert "reduced_counting" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("bench", "nope")


class TestTrace:
    def test_derivation_trees_printed(self, program_file, db_file):
        code, text = run_cli("trace", program_file, "--db", db_file)
        assert code == 0
        assert "sg(a," in text
        assert "up(a, b)" in text
        assert "[r1]" in text

    def test_limit(self, program_file, db_file):
        code, text = run_cli(
            "trace", program_file, "--db", db_file, "--limit", "1"
        )
        assert code == 0
        assert "more answers" in text

    def test_no_answers(self, program_file, tmp_path):
        empty = tmp_path / "empty.dl"
        empty.write_text("up(z, w).")
        code, text = run_cli("trace", program_file, "--db", str(empty))
        assert code == 0
        assert "no answers" in text


class TestExperiments:
    def test_runs_filtered_bench(self):
        # One cheap claim test keeps this fast while exercising the
        # whole pytest-dispatch path.
        code, _text = run_cli(
            "experiments", "-e", "e2_magic_set_linear"
        )
        assert code == 0


class TestGen:
    def test_prints_facts(self):
        code, text = run_cli("gen", "sg_chain", "--param", "depth=3")
        assert code == 0
        assert "up(a, x1)." in text
        assert "flat(" in text

    def test_writes_file_and_round_trips(self, tmp_path, program_file):
        target = str(tmp_path / "facts.dl")
        code, text = run_cli(
            "gen", "sg_chain", "--param", "depth=4", "-o", target
        )
        assert code == 0
        assert "wrote" in text
        # The generated file is directly usable as a --db input.
        code, text = run_cli("run", program_file, "--db", target)
        assert code == 0
        assert "answers" in text


class TestModuleEntry:
    def test_python_dash_m(self, program_file, db_file):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", program_file,
             "--db", db_file],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "answers" in completed.stdout

    def test_console_script_if_installed(self, program_file, db_file):
        import shutil
        import subprocess

        script = shutil.which("repro")
        if script is None:
            pytest.skip("console script not on PATH")
        completed = subprocess.run(
            [script, "run", program_file, "--db", db_file],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "answers" in completed.stdout
