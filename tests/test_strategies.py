"""Cross-strategy equivalence: the central correctness claim.

Theorems 1-3 say the rewritten queries are equivalent to the original
ones; here every applicable strategy is compared against naive
evaluation on every workload at several sizes.
"""

import pytest

from repro.data import WORKLOADS
from repro.errors import ReproError
from repro.exec.strategies import (
    STRATEGIES,
    run_naive,
    run_strategy,
)

SIZED = {
    "sg_tree": [dict(fanout=2, depth=3), dict(fanout=3, depth=3)],
    "sg_cylinder": [dict(width=3, height=4), dict(width=4, height=6)],
    "sg_chain": [dict(depth=6), dict(depth=20)],
    "sg_forest": [dict(trees=2, fanout=2, depth=3)],
    "sg_cyclic": [dict(cycle_length=3, down_length=12),
                  dict(cycle_length=5, down_length=30)],
    "multi_rule": [dict(depth=7), dict(depth=14)],
    "shared_vars": [dict(depth=6), dict(depth=11)],
    "mixed_linear": [dict(up_depth=5, down_depth=5)],
    "right_linear": [dict(depth=10)],
    "left_linear": [dict(depth=10)],
    "nonlinear": [dict(nodes=12, arcs=25, seed=3)],
    "mutual": [dict(depth=10), dict(depth=11)],
}


def _cases():
    for name, workload in sorted(WORKLOADS.items()):
        for params in SIZED[name]:
            for strategy in workload.applicable:
                yield name, params, strategy


@pytest.mark.parametrize(
    "name,params,strategy",
    [pytest.param(n, p, s, id="%s-%s-%s" % (n, s, i))
     for i, (n, p, s) in enumerate(_cases())],
)
def test_strategy_matches_naive(name, params, strategy):
    workload = WORKLOADS[name]
    db, _source = workload.make_db(**params)
    expected = run_naive(workload.query, db).answers
    result = run_strategy(strategy, workload.query, db)
    assert result.answers == expected


class TestInapplicability:
    def test_inapplicable_strategies_raise_cleanly(self):
        for name, workload in WORKLOADS.items():
            db, _source = workload.make_db()
            for strategy in set(STRATEGIES) - set(workload.applicable):
                with pytest.raises(ReproError):
                    run_strategy(strategy, workload.query, db)


class TestRunnerPlumbing:
    def test_unknown_strategy(self, sg_query, sg_db):
        with pytest.raises(ValueError):
            run_strategy("nope", sg_query, sg_db)

    def test_type_checks(self, sg_query, sg_db):
        with pytest.raises(TypeError):
            run_strategy("naive", "text", sg_db)
        with pytest.raises(TypeError):
            run_strategy("naive", sg_query, {"not": "a db"})

    def test_result_shape(self, sg_query, sg_db):
        result = run_strategy("magic", sg_query, sg_db)
        assert result.method == "magic"
        assert result.elapsed >= 0
        assert result.stats.total_work > 0
        assert "ExecutionResult" in repr(result)
