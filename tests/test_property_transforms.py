"""Property-based tests for the program transformations."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, parse_program
from repro.datalog import Program, Query
from repro.datalog.transform import unfold_all_nonrecursive
from repro.engine import evaluate_program, evaluate_query
from repro.rewriting.linearize import linearize_square_rules

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

node_ids = st.integers(min_value=0, max_value=7)
arc_lists = st.lists(st.tuples(node_ids, node_ids), max_size=18)


HELPER_PROGRAM = parse_program("""
    hop(X, Y) :- up(X, Y).
    hop(X, Y) :- lift(X, Y).
    two(X, Z) :- hop(X, Y), hop(Y, Z).
    tc(X, Y) :- two(X, Y).
    tc(X, Y) :- tc(X, Z), two(Z, Y).
""")


class TestUnfoldProperty:
    @SLOW
    @given(arc_lists, arc_lists)
    def test_unfold_preserves_models(self, ups, lifts):
        db = Database()
        for i, j in ups:
            db.add_fact("up", "n%d" % i, "n%d" % j)
        for i, j in lifts:
            db.add_fact("lift", "n%d" % i, "n%d" % j)
        flattened = unfold_all_nonrecursive(
            HELPER_PROGRAM, keep=[("tc", 2)]
        )
        original = evaluate_program(HELPER_PROGRAM, db)
        rewritten = evaluate_program(flattened, db)
        key = ("tc", 2)
        left = original[key].tuples if key in original else set()
        right = rewritten[key].tuples if key in rewritten else set()
        assert left == right


SQUARE = parse_program("""
    tc(X, Y) :- road(X, Y).
    tc(X, Y) :- rail(X, Y).
    tc(X, Y) :- tc(X, Z), tc(Z, Y).
""")


class TestLinearizeProperty:
    @SLOW
    @given(arc_lists, arc_lists)
    def test_linearize_preserves_closure(self, roads, rails):
        db = Database()
        for i, j in roads:
            db.add_fact("road", "n%d" % i, "n%d" % j)
        for i, j in rails:
            db.add_fact("rail", "n%d" % i, "n%d" % j)
        linearized = linearize_square_rules(SQUARE)
        from repro.datalog import parse_atom

        goal = parse_atom("tc(X, Y)")
        original = evaluate_query(Query(goal, SQUARE), db)
        rewritten = evaluate_query(Query(goal, linearized), db)
        assert original.answers == rewritten.answers

    @SLOW
    @given(arc_lists)
    def test_linearized_is_linear(self, roads):
        from repro.datalog import ProgramAnalysis

        linearized = linearize_square_rules(SQUARE)
        assert ProgramAnalysis(linearized).is_linear()
