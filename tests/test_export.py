"""CSV/JSON benchmark export tests."""

import csv
import json

import pytest

from repro.bench import run_matrix, rows_to_records, write_csv, write_json


@pytest.fixture
def rows(sg_query, sg_db):
    return run_matrix(
        sg_query, sg_db, ["magic", "pointer_counting"], label="demo",
        params={"depth": 2},
    )


class TestRecords:
    def test_base_fields(self, rows):
        records = rows_to_records(rows)
        assert len(records) == 2
        magic = records[0]
        assert magic["method"] == "magic"
        assert magic["label"] == "demo"
        assert magic["answers"] == 2
        assert magic["work"] > 0
        assert magic["error"] is None
        assert magic["param_depth"] == 2

    def test_extras_prefixed(self, rows):
        records = rows_to_records(rows)
        by_method = {r["method"]: r for r in records}
        assert "extra_magic_set_size" in by_method["magic"]
        assert "extra_counting_rows" in by_method["pointer_counting"]

    def test_error_rows(self, sg_query, example5_db):
        error_rows = run_matrix(
            sg_query, example5_db, ["classical_counting"], label="cyc"
        )
        [record] = rows_to_records(error_rows)
        assert record["error"] == "CountingDivergenceError"
        assert record["work"] is None


class TestWriters:
    def test_csv_round_trip(self, rows, tmp_path):
        path = str(tmp_path / "out.csv")
        count = write_csv(rows, path)
        assert count == 2
        with open(path) as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == 2
        assert parsed[0]["method"] == "magic"
        assert int(parsed[0]["answers"]) == 2

    def test_json_round_trip(self, rows, tmp_path):
        path = str(tmp_path / "out.json")
        count = write_json(rows, path)
        assert count == 2
        with open(path) as handle:
            parsed = json.load(handle)
        assert parsed[0]["method"] == "magic"
        assert parsed[1]["extra_counting_rows"] == 3

    def test_cli_flags(self, tmp_path):
        import io

        from repro.cli import main

        csv_path = str(tmp_path / "bench.csv")
        json_path = str(tmp_path / "bench.json")
        out = io.StringIO()
        code = main(
            ["bench", "sg_chain", "--methods", "naive,magic",
             "--param", "depth=4", "--csv", csv_path,
             "--json", json_path],
            out=out,
        )
        assert code == 0
        with open(csv_path) as handle:
            assert len(list(csv.DictReader(handle))) == 2
        with open(json_path) as handle:
            assert len(json.load(handle)) == 2
