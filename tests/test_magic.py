"""Magic-set rewriting tests, anchored on Example 1's magic program."""

import pytest

from repro import Database, parse_query
from repro.engine import evaluate_query
from repro.rewriting.magic import (
    magic_atom,
    magic_name,
    magic_rewrite,
    magic_predicates,
)


class TestStructure:
    def test_example1_rule_count(self, sg_query):
        rewriting = magic_rewrite(sg_query)
        # Seed + one magic rule (from the recursive occurrence) + two
        # modified rules: the paper's Example 1 program.
        assert len(rewriting.magic_rules) == 2
        assert len(rewriting.modified_rules) == 2

    def test_seed_from_goal(self, sg_query):
        rewriting = magic_rewrite(sg_query)
        seed = rewriting.seed
        assert seed.head.pred == "m_sg__bf"
        assert seed.head.is_ground()
        assert seed.is_fact()

    def test_magic_rule_matches_paper(self, sg_query):
        rewriting = magic_rewrite(sg_query)
        rule = [r for r in rewriting.magic_rules if not r.is_fact()][0]
        # m_sg(X1) :- m_sg(X), up(X, X1).
        assert rule.head.pred == "m_sg__bf"
        body_preds = [a.pred for a in rule.body_atoms()]
        assert body_preds == ["m_sg__bf", "up"]

    def test_modified_rules_guarded(self, sg_query):
        rewriting = magic_rewrite(sg_query)
        for rule in rewriting.modified_rules:
            assert rule.body[0].pred == "m_sg__bf"

    def test_goal_unchanged(self, sg_query):
        rewriting = magic_rewrite(sg_query)
        assert rewriting.query.goal.pred == "sg__bf"

    def test_magic_predicates(self, sg_query):
        rewriting = magic_rewrite(sg_query)
        assert magic_predicates(rewriting) == {("m_sg__bf", 1)}

    def test_magic_atom_projects_bound(self):
        from repro.datalog import parse_atom

        atom = parse_atom("sg(a, Y)")
        magic = magic_atom(atom, "bf")
        assert magic.pred == magic_name("sg")
        assert magic.arity == 1

    def test_base_goal_noop(self):
        query = parse_query("p(X) :- q(X). ?- base(a, Y).")
        rewriting = magic_rewrite(query)
        assert rewriting.magic_rules == ()
        assert rewriting.query.goal == query.goal


class TestSemantics:
    def test_example1_answers(self, sg_query, sg_db):
        rewriting = magic_rewrite(sg_query)
        result = evaluate_query(rewriting.query, sg_db)
        assert result.answers == {("e1",), ("f1",)}

    def test_restricts_computation(self, sg_query):
        # Facts reachable only from z must not be derived.
        db = Database.from_text("""
            up(a, b). flat(b, b1). down(b1, c1).
            up(z, w). flat(w, w1). down(w1, w2).
        """)
        rewriting = magic_rewrite(sg_query)
        result = evaluate_query(rewriting.query, db)
        assert result.answers == {("c1",)}
        # The magic set contains only nodes reachable from a.
        from repro.engine import SemiNaiveEngine

        engine = SemiNaiveEngine(rewriting.query.program, db)
        derived = engine.run()
        magic_rel = derived[("m_sg__bf", 1)]
        assert magic_rel.tuples == {("a",), ("b",)}

    def test_cyclic_data_terminates(self, sg_query, example5_db):
        rewriting = magic_rewrite(sg_query)
        result = evaluate_query(rewriting.query, example5_db)
        assert result.answers == {("h",), ("j",), ("l",)}

    def test_nonlinear_program(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        db = Database.from_text("arc(a, b). arc(b, c). arc(x, y).")
        rewriting = magic_rewrite(query)
        result = evaluate_query(rewriting.query, db)
        assert result.answers == {("b",), ("c",)}

    def test_multiple_adornments(self):
        query = parse_query("""
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
            ?- sg(X, b1).
        """)
        db = Database.from_text("""
            up(a, b). flat(b, bb). down(bb, b1). flat(a, b1).
        """)
        rewriting = magic_rewrite(query)
        result = evaluate_query(rewriting.query, db)
        direct = evaluate_query(query, db)
        assert result.answers == direct.answers

    def test_negation_in_lower_stratum(self):
        query = parse_query("""
            good(X) :- cand(X), not bad(X).
            reach(X, Y) :- good(Y), arc(X, Y).
            reach(X, Y) :- reach(X, Z), arc(Z, Y), good(Y).
            ?- reach(a, Y).
        """)
        db = Database.from_text("""
            cand(b). cand(c). bad(c).
            arc(a, b). arc(b, c).
        """)
        rewriting = magic_rewrite(query)
        result = evaluate_query(rewriting.query, db)
        assert result.answers == {("b",)}
