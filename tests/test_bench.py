"""Benchmark harness tests."""

import pytest

from repro.bench import (
    format_table,
    matrix_table,
    run_matrix,
    speedup,
    summarize,
    sweep,
)
from repro.data import WORKLOADS


class TestRunMatrix:
    def test_rows_per_method(self, sg_query, sg_db):
        rows = run_matrix(sg_query, sg_db, ["naive", "magic"])
        assert [row.method for row in rows] == ["naive", "magic"]
        assert all(row.error is None for row in rows)
        assert all(row.answers == 2 for row in rows)

    def test_error_recorded_not_raised(self, sg_query, example5_db):
        rows = run_matrix(
            sg_query, example5_db,
            ["magic", "classical_counting", "cyclic_counting"],
        )
        by_method = {row.method: row for row in rows}
        assert by_method["classical_counting"].error is not None
        assert by_method["magic"].work is not None

    def test_disagreement_detected(self, sg_query, sg_db, monkeypatch):
        import repro.bench.harness as harness

        real = harness.run_strategy

        def broken(method, query, db):
            result = real(method, query, db)
            if method == "magic":
                result.answers = frozenset({("wrong",)})
            return result

        monkeypatch.setattr(harness, "run_strategy", broken)
        with pytest.raises(AssertionError):
            run_matrix(sg_query, sg_db, ["naive", "magic"])


class TestSweep:
    def test_grid(self):
        workload = WORKLOADS["sg_chain"]
        rows = sweep(
            workload.query,
            workload.make_db,
            ["naive", "magic"],
            [dict(depth=4), dict(depth=8)],
            label_key="depth",
        )
        assert len(rows) == 4
        labels = {row.label for row in rows}
        assert labels == {"depth=4", "depth=8"}

    def test_params_recorded(self):
        workload = WORKLOADS["sg_chain"]
        rows = sweep(
            workload.query, workload.make_db, ["naive"],
            [dict(depth=4)],
        )
        assert rows[0].params == {"depth": 4}


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[0.12345], [1e-9], [None]])
        assert "0.1234" in text or "0.1235" in text
        assert "e-" in text
        assert "-" in text

    def test_matrix_table(self, sg_query, sg_db):
        rows = run_matrix(sg_query, sg_db, ["magic", "pointer_counting"])
        text = matrix_table(rows, title="demo")
        assert "demo" in text
        assert "vs_magic" in text
        assert "pointer_counting" in text

    def test_matrix_table_shows_errors(self, sg_query, example5_db):
        rows = run_matrix(sg_query, example5_db,
                          ["magic", "classical_counting"])
        text = matrix_table(rows)
        assert "CountingDivergenceError" in text

    def test_extra_columns(self, sg_query, sg_db):
        rows = run_matrix(sg_query, sg_db, ["magic"])
        text = matrix_table(rows, extra_columns=("magic_set_size",))
        assert "magic_set_size" in text

    def test_speedup(self):
        assert speedup(100, 50) == "2.0x"
        assert speedup(100, 0) == "-"


class TestSummarize:
    def test_totals(self, sg_query, sg_db):
        rows = run_matrix(sg_query, sg_db, ["naive", "magic"])
        totals = summarize(rows)
        assert totals["naive"]["runs"] == 1
        assert totals["magic"]["work"] > 0
