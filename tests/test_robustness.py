"""Failure injection: wrong inputs must fail loudly and precisely."""

import pytest

from repro import (
    Database,
    evaluate,
    optimize,
    parse_program,
    parse_query,
    run_strategy,
)
from repro.engine.relation import Relation
from repro.errors import (
    EvaluationError,
    NotApplicableError,
    ParseError,
    ReproError,
    SafetyError,
)


class TestParserRejections:
    @pytest.mark.parametrize(
        "text",
        [
            "p(X :- q(X).",          # unbalanced paren
            "p(X) :- .",             # empty body
            "p(X) q(X).",            # missing :-
            ":- q(X).",              # missing head
            "p(X) :- q(X)",          # missing period
            "p([a, b).",             # unbalanced bracket
            "p(X) :- X is .",        # missing expression
        ],
    )
    def test_garbage_rejected(self, text):
        with pytest.raises(ParseError):
            parse_program(text)


class TestDatabaseRejections:
    def test_relation_arity_enforced(self):
        rel = Relation("p", 2)
        with pytest.raises(ValueError):
            rel.add(("only-one",))

    def test_db_text_with_variables_rejected(self):
        # A "fact" with a variable is a rule with an unsafe head.
        with pytest.raises((ValueError, ReproError)):
            Database.from_text("up(X, b).")

    def test_to_text_round_trip(self):
        db = Database.from_text("""
            up(a, b). up(b, 3). flat(a, 'odd name').
        """)
        again = Database.from_text(db.to_text())
        for key in db.keys():
            assert db.get(key).tuples == again.get(key).tuples


class TestEvaluationRejections:
    def test_unsafe_rule_surfaces(self):
        query = parse_query("p(X, Y) :- q(X). ?- p(a, Y).")
        with pytest.raises(ReproError):
            evaluate(query, Database.from_text("q(a)."))

    def test_arithmetic_type_error(self):
        query = parse_query("""
            r(J) :- v(I), J is I + 1.
            ?- r(J).
        """)
        with pytest.raises(EvaluationError):
            evaluate(query, Database.from_text("v(notanumber)."))

    def test_ordering_mixed_types(self):
        query = parse_query("""
            r(X) :- v(X), X < 3.
            ?- r(X).
        """)
        db = Database()
        db.add_fact("v", "text")
        with pytest.raises(EvaluationError):
            evaluate(query, db)

    def test_membership_over_scalar(self):
        query = parse_query("""
            r(A) :- v(T), A in T.
            ?- r(A).
        """)
        with pytest.raises(EvaluationError):
            evaluate(query, Database.from_text("v(7)."))


class TestStrategyRejections:
    def test_every_strategy_rejects_nonlinear_counting(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        db = Database.from_text("arc(a, b).")
        for method in ("classical_counting", "extended_counting",
                       "reduced_counting", "pointer_counting",
                       "cyclic_counting", "magic_counting"):
            with pytest.raises(NotApplicableError):
                run_strategy(method, query, db)

    def test_goal_without_rules(self):
        query = parse_query("""
            p(X) :- q(X).
            ?- missing(a, Y).
        """)
        db = Database.from_text("q(a).")
        # Naive evaluation treats it as an empty base relation.
        result = run_strategy("naive", query, db)
        assert result.answers == frozenset()
        # Counting has nothing to canonicalize.
        with pytest.raises(NotApplicableError):
            run_strategy("cyclic_counting", query, db)

    def test_empty_database(self, sg_query):
        db = Database()
        for method in ("naive", "magic", "cyclic_counting",
                       "pointer_counting"):
            result = run_strategy(method, sg_query, db)
            assert result.answers == frozenset()

    def test_goal_constant_absent_from_data(self, sg_query):
        db = Database.from_text("up(z, w). flat(w, w1). down(w1, w2).")
        for method in ("naive", "magic", "cyclic_counting"):
            result = run_strategy(method, sg_query, db)
            assert result.answers == frozenset()


class TestOptimizerRobustness:
    def test_optimize_on_unsafe_program_raises_at_execute(self):
        query = parse_query("p(X, Y) :- q(X). ?- p(a, Y).")
        plan = optimize(query, method="naive")
        with pytest.raises(ReproError):
            plan.execute(Database.from_text("q(a)."))

    def test_facts_only_program(self):
        query = parse_query("""
            p(a, b).
            ?- p(a, Y).
        """)
        db = Database()
        result = optimize(query, db).execute(db)
        assert result.answers == {("b",)}

    def test_zero_arity_goal(self):
        query = parse_query("""
            go :- trigger.
            ?- go.
        """)
        db = Database()
        db.add_fact("trigger")
        result = run_strategy("naive", query, db)
        assert result.answers == {()}
