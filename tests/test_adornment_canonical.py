"""Adornment and canonicalization tests (Sections 2 and 3.3)."""

import pytest

from repro import parse_query
from repro.datalog import ProgramAnalysis
from repro.errors import NotApplicableError
from repro.rewriting.adornment import (
    adorn_query,
    adorned_name,
    split_adorned,
)
from repro.rewriting.canonical import (
    canonicalize_clique,
    canonicalize_rule,
    query_constants,
)
from repro.rewriting.support import goal_clique_of


class TestAdornmentNames:
    def test_roundtrip(self):
        name = adorned_name("sg", "bf")
        assert name == "sg__bf"
        assert split_adorned(name) == ("sg", "bf")

    def test_split_non_adorned(self):
        assert split_adorned("plain") == ("plain", None)
        assert split_adorned("x__weird") == ("x__weird", None)


class TestAdornQuery:
    def test_sg_bf(self, sg_query):
        adorned = adorn_query(sg_query)
        assert adorned.goal.pred == "sg__bf"
        keys = {rule.head.key for rule in adorned.program}
        assert keys == {("sg__bf", 2)}

    def test_recursive_call_adorned(self, sg_query):
        adorned = adorn_query(sg_query)
        rec = [r for r in adorned.program if len(r.body) == 3][0]
        assert rec.body[1].pred == "sg__bf"

    def test_base_predicates_untouched(self, sg_query):
        adorned = adorn_query(sg_query)
        body_preds = set()
        for rule in adorned.program:
            for atom in rule.body_atoms():
                body_preds.add(atom.pred)
        assert {"up", "flat", "down"} <= body_preds

    def test_origin_mapping(self, sg_query):
        adorned = adorn_query(sg_query)
        assert adorned.original_key(("sg__bf", 2)) == ("sg", 2)
        assert adorned.adornment_of(("sg__bf", 2)) == "bf"
        assert adorned.adornment_of(("up", 2)) is None

    def test_multiple_adornments(self):
        query = parse_query("""
            p(X, Y) :- q(X, Y).
            q(X, Y) :- edge(X, Y).
            q(X, Y) :- q(X, Z), q(Z, Y).
            ?- p(a, Y).
        """)
        adorned = adorn_query(query)
        names = {rule.head.pred for rule in adorned.program}
        # q is called with bf from p, and with bf again inside itself.
        assert "q__bf" in names

    def test_second_argument_bound(self):
        query = parse_query("""
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
            ?- sg(X, b).
        """)
        adorned = adorn_query(query)
        assert adorned.goal.pred == "sg__fb"
        # Under left-to-right SIP the base atom up(X, X1) binds X1
        # before the recursive call, so the call is adorned bf even
        # though the head is fb — the body adornment differing from the
        # head's is exactly the situation §3.1 says the extended method
        # now covers.
        rec = [
            r for r in adorned.program
            if r.head.pred == "sg__fb" and len(r.body) == 3
        ][0]
        assert rec.body[1].pred == "sg__bf"
        names = {rule.head.pred for rule in adorned.program}
        assert names == {"sg__fb", "sg__bf"}

    def test_base_goal_passthrough(self):
        query = parse_query("""
            p(X) :- q(X).
            ?- arc(a, Y).
        """)
        adorned = adorn_query(query)
        assert adorned.goal.pred == "arc"
        assert len(adorned.program) == len(query.program)

    def test_unused_rules_dropped(self):
        query = parse_query("""
            sg(X, Y) :- flat(X, Y).
            other(X) :- up(X, X1).
            ?- sg(a, Y).
        """)
        adorned = adorn_query(query)
        assert {r.head.pred for r in adorned.program} == {"sg__bf"}


class TestCanonicalization:
    def canonical(self, query):
        adorned = adorn_query(query)
        clique, _support = goal_clique_of(adorned)
        return canonicalize_clique(clique, adorned)

    def test_example1_shape(self, sg_query):
        canonical = self.canonical(sg_query)
        assert len(canonical.exit_rules) == 1
        assert len(canonical.recursive_rules) == 1
        rule = canonical.recursive_rules[0]
        assert rule.bound_vars == ("X",)
        assert rule.free_vars == ("Y",)
        assert rule.rec_bound_vars == ("X1",)
        assert rule.rec_free_vars == ("Y1",)
        assert [a.pred for a in rule.left] == ["up"]
        assert [a.pred for a in rule.right] == ["down"]
        assert rule.shared_vars == ()
        assert rule.bound_in_right == ()

    def test_example4_shared_and_bound(self, example4_query):
        canonical = self.canonical(example4_query)
        by_label = {r.rule.label: r for r in canonical.recursive_rules}
        r1, r2 = sorted(by_label)
        # Rule with up1/down1 shares W; rule with up2/down2 uses X.
        shared = {
            tuple(by_label[r1].shared_vars),
            tuple(by_label[r2].shared_vars),
        }
        assert ("W",) in shared
        bound = {
            tuple(by_label[r1].bound_in_right),
            tuple(by_label[r2].bound_in_right),
        }
        assert ("X",) in bound

    def test_example6_shapes(self, example6_query):
        canonical = self.canonical(example6_query)
        shapes = {
            r.rule.label: (r.is_right_linear_shape(),
                           r.is_left_linear_shape())
            for r in canonical.recursive_rules
        }
        assert (True, False) in shapes.values()
        assert (False, True) in shapes.values()

    def test_nonlinear_rejected(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        adorned = adorn_query(query)
        clique, _support = goal_clique_of(adorned)
        with pytest.raises(NotApplicableError):
            canonicalize_clique(clique, adorned)

    def test_no_exit_rule_rejected(self):
        query = parse_query("""
            p(X, Y) :- up(X, X1), p(X1, Y).
            ?- p(a, Y).
        """)
        adorned = adorn_query(query)
        clique, _support = goal_clique_of(adorned)
        with pytest.raises(NotApplicableError):
            canonicalize_clique(clique, adorned)

    def test_unbindable_left_not_counting_treatable(self):
        # X1 appears nowhere before the recursive call: the call is
        # adorned ff, so the goal's bf clique is not recursive at all
        # and the counting pipeline refuses it (magic still applies).
        query = parse_query("""
            p(X, Y) :- flat(X, Y).
            p(X, Y) :- p(X1, Y1), link(X, X1), down(Y1, Y).
            ?- p(a, Y).
        """)
        adorned = adorn_query(query)
        with pytest.raises(NotApplicableError):
            goal_clique_of(adorned)

    def test_repeated_head_var_normalized(self):
        query = parse_query("""
            p(X, X) :- loop(X).
            p(X, Y) :- up(X, X1), p(X1, Y1), down(Y1, Y).
            ?- p(a, Y).
        """)
        canonical = self.canonical(query)
        exit_rule = [
            e for e in canonical.exit_rules
            if any(a.pred == "loop" for a in e.rule.body_atoms())
        ][0]
        # Head arguments must now be distinct variables; an equality
        # constraint appears in the body.
        head_args = exit_rule.rule.head.args
        assert len({a.name for a in head_args}) == 2
        assert exit_rule.rule.comparisons()

    def test_constant_in_rec_atom_normalized(self, example4_query):
        query = parse_query("""
            p(X, Y) :- flat(X, Y).
            p(X, Y) :- up(X, X1), p(b, Y1), down(Y1, Y).
            ?- p(a, Y).
        """)
        canonical = self.canonical(query)
        rule = canonical.recursive_rules[0]
        assert all(not a.is_ground() for a in rule.rec_atom.args)

    def test_repeated_free_var_constraint_goes_right(self):
        # The recursive call repeats W at two free positions;
        # normalization replaces the second occurrence by a fresh
        # variable whose equality constraint mentions the call's free
        # variables, so it can only be checked in the answer phase and
        # must land in the right part.
        query = parse_query("""
            p(X, Y, Z) :- flat(X, Y, Z).
            p(X, Y, Z) :- up(X, X1), p(X1, W, W), d(W, Y, Z).
            ?- p(a, Y, Z).
        """)
        canonical = self.canonical(query)
        rule = canonical.recursive_rules[0]
        assert [a.pred for a in rule.left] == ["up"]
        assert len({a.name for a in rule.rec_atom.args}) == 3
        right_comparisons = [
            lit for lit in rule.right if not hasattr(lit, "pred")
        ]
        assert right_comparisons, "expected the = constraint on the right"

    def test_query_constants(self, sg_query):
        adorned = adorn_query(sg_query)
        assert query_constants(adorned.goal) == ("a",)

    def test_mutual_recursion_canonicalizes(self):
        query = parse_query("""
            even(X, Y) :- flat(X, Y).
            even(X, Y) :- up(X, X1), odd(X1, Y1), down(Y1, Y).
            odd(X, Y) :- up(X, X1), even(X1, Y1), down(Y1, Y).
            ?- even(a, Y).
        """)
        adorned = adorn_query(query)
        clique, _support = goal_clique_of(adorned)
        canonical = canonicalize_clique(clique, adorned)
        rec_keys = {r.rec_key[0] for r in canonical.recursive_rules}
        assert rec_keys == {"even__bf", "odd__bf"}
