"""Unit tests for literals, rules, programs and queries."""

import pytest

from repro.datalog.atoms import Atom, Comparison, Negation
from repro.datalog.rules import Program, Query, Rule
from repro.datalog.terms import Constant, Variable


def atom(pred, *names):
    return Atom(pred, tuple(Variable(n) if n[0].isupper() else Constant(n)
                            for n in names))


class TestAtom:
    def test_key(self):
        assert atom("p", "X", "Y").key == ("p", 2)

    def test_variables(self):
        assert atom("p", "X", "a").variables() == {"X"}

    def test_ground(self):
        assert atom("p", "a").is_ground()
        assert not atom("p", "X").is_ground()

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Atom("p", ("oops",))

    def test_with_args(self):
        replaced = atom("p", "X").with_args((Constant("a"),))
        assert replaced.pred == "p"
        assert replaced.is_ground()


class TestNegation:
    def test_wraps_atom_only(self):
        with pytest.raises(TypeError):
            Negation(Comparison("=", Variable("X"), Constant(1)))

    def test_variables_passthrough(self):
        assert Negation(atom("p", "X")).variables() == {"X"}


class TestComparison:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("~", Variable("X"), Constant(1))

    def test_binds_left(self):
        assert Comparison("is", Variable("X"), Constant(1)).binds_left()
        assert Comparison("in", Variable("X"), Constant(())).binds_left()
        assert not Comparison("<", Variable("X"), Constant(1)).binds_left()


class TestRule:
    def test_fact(self):
        assert Rule(atom("p", "a")).is_fact()
        assert not Rule(atom("p", "X"), (atom("q", "X"),)).is_fact()

    def test_partitions_body(self):
        rule = Rule(
            atom("p", "X"),
            (
                atom("q", "X"),
                Negation(atom("r", "X")),
                Comparison("<", Variable("X"), Constant(9)),
            ),
        )
        assert rule.body_atoms() == (atom("q", "X"),)
        assert rule.negated_atoms() == (atom("r", "X"),)
        assert len(rule.comparisons()) == 1

    def test_variables(self):
        rule = Rule(atom("p", "X"), (atom("q", "X", "Y"),))
        assert rule.variables() == {"X", "Y"}

    def test_head_must_be_atom(self):
        with pytest.raises(TypeError):
            Rule(Comparison("=", Variable("X"), Constant(1)))


class TestProgram:
    def test_auto_labels_unique(self):
        program = Program([
            Rule(atom("p", "X"), (atom("q", "X"),)),
            Rule(atom("p", "X"), (atom("r", "X"),)),
        ])
        labels = [rule.label for rule in program]
        assert len(set(labels)) == 2

    def test_explicit_labels_preserved(self):
        rule = Rule(atom("p", "X"), (atom("q", "X"),), label="mine")
        program = Program([rule])
        assert program.rules[0].label == "mine"

    def test_head_predicates_exclude_pure_facts(self):
        program = Program([
            Rule(atom("p", "a")),
            Rule(atom("q", "X"), (atom("p", "X"),)),
        ])
        assert program.head_predicates() == {("q", 1)}
        assert program.derived_predicates() == {("p", 1), ("q", 1)}

    def test_facts_extraction(self):
        program = Program([Rule(atom("p", "a")), Rule(atom("p", "X"),
                                                      (atom("q", "X"),))])
        assert program.facts() == [(("p", 1), ("a",))]
        assert len(program.without_facts()) == 1

    def test_rules_for(self):
        program = Program([
            Rule(atom("p", "X"), (atom("q", "X"),)),
            Rule(atom("q", "X"), (atom("r", "X"),)),
        ])
        assert len(program.rules_for(("p", 1))) == 1

    def test_extended(self):
        program = Program([Rule(atom("p", "X"), (atom("q", "X"),))])
        bigger = program.extended([Rule(atom("s", "X"), (atom("p", "X"),))])
        assert len(bigger) == 2
        assert len(program) == 1


class TestQuery:
    def test_adornment(self):
        q = Query(atom("sg", "a", "Y"), Program([]))
        assert q.adornment() == "bf"
        assert q.bound_positions() == (0,)

    def test_all_free(self):
        q = Query(atom("sg", "X", "Y"), Program([]))
        assert q.adornment() == "ff"

    def test_type_checks(self):
        with pytest.raises(TypeError):
            Query("sg(a, Y)", Program([]))
        with pytest.raises(TypeError):
            Query(atom("p", "X"), [])
