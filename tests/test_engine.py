"""Engine tests: builtins, joins, semi-naive fixpoint, stratification
and query evaluation."""

import pytest

from repro import Database, evaluate, parse_program, parse_query
from repro.datalog import ProgramAnalysis
from repro.datalog.atoms import Comparison
from repro.datalog.terms import Compound, Constant, Variable
from repro.engine import (
    EvalStats,
    SemiNaiveEngine,
    evaluate_program,
    is_stratified,
)
from repro.engine.builtins import eval_comparison
from repro.errors import EvaluationError, NotStratifiedError


class TestBuiltins:
    def run(self, op, left, right, subst=None):
        return list(
            eval_comparison(Comparison(op, left, right), subst or {})
        )

    def test_orderings(self):
        assert self.run("<", Constant(1), Constant(2))
        assert not self.run("<", Constant(2), Constant(1))
        assert self.run(">=", Constant(2), Constant(2))

    def test_neq(self):
        assert self.run("!=", Constant("a"), Constant("b"))
        assert not self.run("!=", Constant("a"), Constant("a"))

    def test_eq_binds(self):
        results = self.run("=", Variable("X"), Constant(3))
        assert results[0]["X"] == Constant(3)

    def test_is_evaluates(self):
        results = self.run(
            "is", Variable("J"),
            Compound("+", (Constant(1), Constant(2))),
        )
        assert results[0]["J"] == Constant(3)

    def test_is_tests_when_bound(self):
        assert self.run("is", Constant(3),
                        Compound("+", (Constant(1), Constant(2))))
        assert not self.run("is", Constant(4),
                            Compound("+", (Constant(1), Constant(2))))

    def test_in_enumerates_tuple(self):
        results = self.run("in", Variable("A"), Constant((1, 2, 3)))
        values = sorted(r["A"].value for r in results)
        assert values == [1, 2, 3]

    def test_in_enumerates_frozenset(self):
        results = self.run("in", Variable("A"),
                           Constant(frozenset({"x", "y"})))
        assert len(results) == 2

    def test_in_non_collection_raises(self):
        with pytest.raises(EvaluationError):
            self.run("in", Variable("A"), Constant(42))

    def test_unordered_values_raise(self):
        with pytest.raises(EvaluationError):
            self.run("<", Constant("a"), Constant(1))

    def test_ordering_on_unbound_raises(self):
        with pytest.raises(EvaluationError):
            self.run("<", Variable("X"), Constant(1))


class TestSemiNaive:
    def test_transitive_closure(self):
        program = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
        """)
        db = Database.from_text("arc(a, b). arc(b, c). arc(c, d).")
        derived = evaluate_program(program, db)
        assert len(derived[("tc", 2)]) == 6

    def test_cycle_terminates(self):
        program = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
        """)
        db = Database.from_text("arc(a, b). arc(b, a).")
        derived = evaluate_program(program, db)
        assert len(derived[("tc", 2)]) == 4

    def test_nonlinear_rule(self):
        program = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        """)
        db = Database.from_text("arc(a, b). arc(b, c). arc(c, d).")
        derived = evaluate_program(program, db)
        assert len(derived[("tc", 2)]) == 6

    def test_program_facts_for_derived_pred(self):
        program = parse_program("""
            r(a, a).
            r(X, Y) :- r(X, Z), arc(Z, Y).
        """)
        db = Database.from_text("arc(a, b).")
        derived = evaluate_program(program, db)
        assert ("a", "b") in derived[("r", 2)]

    def test_seed_only_facts_visible(self):
        # Regression: a predicate defined only by program facts must be
        # visible to rules (it is a base predicate overlay).
        program = parse_program("""
            seed(a).
            out(X) :- seed(X).
        """)
        derived = evaluate_program(program, Database())
        assert ("a",) in derived[("out", 1)]

    def test_overlay_merges_with_db(self):
        program = parse_program("""
            seed(a).
            out(X) :- seed(X).
        """)
        db = Database.from_text("seed(b).")
        derived = evaluate_program(program, db)
        assert len(derived[("out", 1)]) == 2

    def test_stratified_negation(self):
        program = parse_program("""
            reach(X) :- start(X).
            reach(Y) :- reach(X), arc(X, Y).
            unreachable(X) :- node(X), not reach(X).
        """)
        db = Database.from_text("""
            start(a). arc(a, b). node(a). node(b). node(c).
        """)
        derived = evaluate_program(program, db)
        assert derived[("unreachable", 1)].tuples == {("c",)}

    def test_unstratified_rejected(self):
        program = parse_program("""
            p(X) :- node(X), not q(X).
            q(X) :- node(X), not p(X).
        """)
        with pytest.raises(NotStratifiedError):
            evaluate_program(program, Database.from_text("node(a)."))

    def test_is_stratified_helper(self):
        good = ProgramAnalysis(parse_program("p(X) :- q(X), not r(X)."))
        assert is_stratified(good)

    def test_max_iterations_guard(self):
        program = parse_program("""
            c(X, J) :- c(X, I), J is I + 1.
            c(a, 0).
        """)
        with pytest.raises(EvaluationError):
            evaluate_program(program, Database(), max_iterations=10)

    def test_arithmetic_levels(self):
        program = parse_program("""
            lvl(a, 0).
            lvl(Y, J) :- lvl(X, I), arc(X, Y), J is I + 1.
        """)
        db = Database.from_text("arc(a, b). arc(b, c).")
        derived = evaluate_program(program, db)
        assert ("c", 2) in derived[("lvl", 2)]

    def test_stats_counters(self):
        program = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
        """)
        db = Database.from_text("arc(a, b). arc(b, c).")
        stats = EvalStats()
        evaluate_program(program, db, stats=stats)
        assert stats.facts_derived == 3
        assert stats.iterations >= 2
        assert stats.tuples_scanned > 0
        assert stats.total_work >= stats.facts_derived

    def test_stats_merge(self):
        a, b = EvalStats(), EvalStats()
        a.facts_derived = 2
        b.facts_derived = 3
        b.iterations = 1
        a.merge(b)
        assert a.facts_derived == 5
        assert a.iterations == 1
        assert "facts_derived" in a.as_dict()


class TestEvaluateQuery:
    def test_projection_onto_free_args(self, sg_query, sg_db):
        result = evaluate(sg_query, sg_db)
        assert result.answers == {("e1",), ("f1",)}
        # Full tuples keep the bound argument.
        assert ("a", "e1") in result.tuples

    def test_contains_and_len(self, sg_query, sg_db):
        result = evaluate(sg_query, sg_db)
        assert ("e1",) in result
        assert len(result) == 2
        assert result.sorted() == [("e1",), ("f1",)]

    def test_all_free_goal(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
            ?- tc(X, Y).
        """)
        db = Database.from_text("arc(a, b). arc(b, c).")
        result = evaluate(query, db)
        assert len(result) == 3

    def test_fully_bound_goal(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
            ?- tc(a, c).
        """)
        db = Database.from_text("arc(a, b). arc(b, c).")
        result = evaluate(query, db)
        # No free positions: one empty answer tuple when true.
        assert result.answers == {()}

    def test_goal_over_base_predicate(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            ?- arc(a, Y).
        """)
        db = Database.from_text("arc(a, b). arc(c, d).")
        result = evaluate(query, db)
        assert result.answers == {("b",)}

    def test_query_type_checked(self, sg_db):
        with pytest.raises(TypeError):
            evaluate("?- p(a).", sg_db)


class TestNegationInBody:
    def test_negation_filters(self):
        query = parse_query("""
            ok(X) :- cand(X), not bad(X).
            ?- ok(X).
        """)
        db = Database.from_text("cand(a). cand(b). bad(b).")
        assert evaluate(query, db).answers == {("a",)}

    def test_unbound_negation_raises_at_runtime(self):
        # Constructed directly (the safety checker would reject it).
        from repro.datalog.atoms import Atom, Negation
        from repro.datalog.rules import Program, Query, Rule

        rule = Rule(
            Atom("p", (Variable("X"),)),
            (
                Atom("q", (Variable("X"),)),
                Negation(Atom("r", (Variable("Y"),))),
            ),
        )
        query = Query(Atom("p", (Variable("X"),)), Program([rule]))
        db = Database.from_text("q(a).")
        with pytest.raises(EvaluationError):
            evaluate(query, db)


class TestSameCliqueNegation:
    """A Negation wrapping a same-clique atom must be rejected up
    front, never silently evaluated without delta driving."""

    def test_recursive_negation_rejected(self):
        program = parse_program("""
            win(X) :- move(X, Y), not win(Y).
        """)
        with pytest.raises(NotStratifiedError):
            evaluate_program(program, Database.from_text("move(a, b)."))

    def test_mutual_clique_negation_rejected(self):
        program = parse_program("""
            p(X) :- edge(X, Y), q(Y).
            q(X) :- edge(X, Y), not p(Y).
        """)
        with pytest.raises(NotStratifiedError):
            evaluate_program(program, Database.from_text("edge(a, b)."))

    def test_lower_stratum_negation_still_allowed(self):
        program = parse_program("""
            base(X) :- node(X, 0).
            p(X) :- node(X, 1), not base(X).
        """)
        derived = evaluate_program(
            program, Database.from_text("node(a, 0). node(b, 1).")
        )
        assert derived[("p", 1)].tuples == {("b",)}
