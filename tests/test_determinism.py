"""Determinism and accounting invariants of the work counters."""

import pytest

from repro.data import WORKLOADS
from repro.engine import EvalStats
from repro.exec.strategies import run_strategy


REPEATABLE = (
    "naive", "magic", "classical_counting", "extended_counting",
    "reduced_counting", "pointer_counting", "cyclic_counting",
)


class TestRepeatability:
    @pytest.mark.parametrize("method", REPEATABLE)
    def test_same_counters_on_repeat(self, method):
        workload = WORKLOADS["sg_chain"]
        db, _source = workload.make_db(depth=8)
        first = run_strategy(method, workload.query, db)
        second = run_strategy(method, workload.query, db)
        assert first.answers == second.answers
        assert first.stats.as_dict() == second.stats.as_dict()
        assert first.extras.keys() == second.extras.keys()

    def test_fresh_database_same_counters(self):
        workload = WORKLOADS["sg_tree"]
        db1, _ = workload.make_db(fanout=2, depth=4)
        db2, _ = workload.make_db(fanout=2, depth=4)
        r1 = run_strategy("pointer_counting", workload.query, db1)
        r2 = run_strategy("pointer_counting", workload.query, db2)
        assert r1.stats.total_work == r2.stats.total_work


class TestAccounting:
    @pytest.mark.parametrize("method", REPEATABLE)
    def test_total_work_definition(self, method):
        workload = WORKLOADS["sg_chain"]
        db, _source = workload.make_db(depth=8)
        stats = run_strategy(method, workload.query, db).stats
        assert stats.total_work == (
            stats.tuples_scanned + stats.facts_derived
            + stats.facts_duplicate
        )
        assert stats.rule_firings >= 0
        assert stats.iterations >= 1

    def test_counters_strictly_positive_on_real_work(self):
        workload = WORKLOADS["sg_chain"]
        db, _source = workload.make_db(depth=8)
        stats = run_strategy("magic", workload.query, db).stats
        assert stats.tuples_scanned > 0
        assert stats.facts_derived > 0

    def test_stats_isolated_between_runs(self):
        # A fresh EvalStats per run: no accumulation across strategies.
        workload = WORKLOADS["sg_chain"]
        db, _source = workload.make_db(depth=4)
        small = run_strategy("pointer_counting", workload.query, db)
        db2, _source = workload.make_db(depth=16)
        big = run_strategy("pointer_counting", workload.query, db2)
        db3, _source = workload.make_db(depth=4)
        small_again = run_strategy("pointer_counting", workload.query,
                                   db3)
        assert small.stats.total_work == small_again.stats.total_work
        assert big.stats.total_work > small.stats.total_work


class TestSharedDatabase:
    def test_multiple_engines_share_base_relations(self):
        from repro import Database, parse_query
        from repro.engine import SemiNaiveEngine

        program = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), arc(Z, Y).
            ?- tc(a, Y).
        """).program
        db = Database.from_text("arc(a, b). arc(b, c).")
        first = SemiNaiveEngine(program, db)
        first.run()
        # Derived facts of one engine must not leak into the next.
        second = SemiNaiveEngine(program, db)
        derived = second.run()
        assert len(derived[("tc", 2)]) == 3
        assert db.total_facts() == 2  # base data untouched
