"""Engine accounting invariants across random inputs."""

import random

import pytest

from repro import Database, parse_program
from repro.engine import EvalStats, SemiNaiveEngine


def random_tc_db(seed, nodes=8, arcs=16):
    rng = random.Random(seed)
    db = Database()
    for _ in range(arcs):
        db.add_fact("arc", "n%d" % rng.randrange(nodes),
                    "n%d" % rng.randrange(nodes))
    return db


TC = parse_program("""
    tc(X, Y) :- arc(X, Y).
    tc(X, Y) :- tc(X, Z), arc(Z, Y).
""")


class TestDerivationAccounting:
    @pytest.mark.parametrize("seed", range(10))
    def test_facts_derived_equals_relation_sizes(self, seed):
        db = random_tc_db(seed)
        stats = EvalStats()
        engine = SemiNaiveEngine(TC, db, stats=stats)
        derived = engine.run()
        total = sum(len(rel) for rel in derived.values())
        assert stats.facts_derived == total

    @pytest.mark.parametrize("seed", range(5))
    def test_naive_mode_same_relations_more_duplicates(self, seed):
        db = random_tc_db(seed)
        semi_stats = EvalStats()
        semi = SemiNaiveEngine(TC, db, stats=semi_stats).run()
        naive_stats = EvalStats()
        naive = SemiNaiveEngine(
            TC, db, stats=naive_stats, seminaive=False
        ).run()
        assert semi[("tc", 2)].tuples == naive[("tc", 2)].tuples
        assert naive_stats.facts_duplicate >= semi_stats.facts_duplicate

    @pytest.mark.parametrize("seed", range(5))
    def test_reorder_same_relations(self, seed):
        db = random_tc_db(seed)
        plain = SemiNaiveEngine(TC, db).run()
        planned = SemiNaiveEngine(TC, db, reorder=True).run()
        assert plain[("tc", 2)].tuples == planned[("tc", 2)].tuples

    def test_trace_counts_match_stats(self):
        from repro.engine import DerivationTrace

        db = random_tc_db(3)
        stats = EvalStats()
        trace = DerivationTrace()
        engine = SemiNaiveEngine(TC, db, stats=stats, trace=trace)
        engine.run()
        # One first-derivation record per derived fact.
        assert len(trace) == stats.facts_derived

    def test_traced_and_untraced_agree(self):
        from repro.engine import DerivationTrace

        db = random_tc_db(4)
        plain = SemiNaiveEngine(TC, db).run()
        traced = SemiNaiveEngine(
            TC, db, trace=DerivationTrace()
        ).run()
        assert plain[("tc", 2)].tuples == traced[("tc", 2)].tuples
