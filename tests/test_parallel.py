"""Data-parallel sharded fixpoint: plan, executor, and fault paths.

Covers the partition planner's decisions and determinism (hypothesis
property tests over both storage backends), the multiprocess executor's
answer/counter equivalence against serial evaluation across the full
workload matrix, picklable typed errors, per-worker deterministic fault
derivation, the SIGKILL degradation path through the resilient chain,
and the serving-layer worker-budget plumbing.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.workloads import WORKLOADS
from repro.engine.columnar import use_backend
from repro.engine.database import Database
from repro.engine.faults import FaultInjector, InjectedFault
from repro.engine.guard import ResourceBudget
from repro.engine.instrumentation import EvalStats
from repro.errors import (
    BudgetExceededError,
    DeadlineExceeded,
    EvaluationCancelled,
    EvaluationError,
    FactBudgetExceeded,
    NotApplicableError,
    RoundBudgetExceeded,
)
from repro.exec.resilient import (
    DEFAULT_CHAIN,
    PARALLEL_CHAIN,
    FallbackPolicy,
    run_resilient,
)
from repro.exec.strategies import run_strategy
from repro.parallel import (
    DEFAULT_BROADCAST_ROWS,
    ParallelEngine,
    WorkerCrashError,
    plan_partitions,
    shard_of,
    shard_rows,
)

#: Workloads the sharded executor accepts (linear positive programs).
LINEAR_WORKLOADS = sorted(
    name for name in WORKLOADS if name != "nonlinear"
)


def _inline_run(query, db, budget=None):
    """The executor's serial oracle: same engine, no processes."""
    engine = ParallelEngine(query, db, workers=1, budget=budget,
                            inline=True)
    engine.run()
    return engine


# -- the partition plan ------------------------------------------------


class TestPlan:
    def test_sg_tree_plan_decisions(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        plan = plan_partitions(w.query, db, workers=4)
        summary = plan.as_dict()
        assert summary["workers"] == 4
        # Deltas route on sg's first argument; up co-locates on its
        # own first column, down never joins the partition variable.
        assert summary["partition"]["sg/2"] == 0
        assert summary["sharded"]["up/2"] == 1
        assert "down/2" in summary["broadcast"]

    def test_small_relations_broadcast(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=2, depth=2)
        plan = plan_partitions(w.query, db, workers=2)
        # Everything is tiny: nothing clears the broadcast threshold.
        assert not plan.sharded
        assert all(
            len(db.get(key)) < DEFAULT_BROADCAST_ROWS
            for key in plan.broadcast
        )

    def test_nonlinear_rejected(self):
        w = WORKLOADS["nonlinear"]
        db, _src = w.make_db()
        with pytest.raises(NotApplicableError):
            plan_partitions(w.query, db, workers=2)

    def test_facts_rejected(self):
        from repro import parse_query

        query = parse_query("""
            p(a, b).
            t(X, Y) :- p(X, Y).
            ?- t(a, Y).
        """)
        with pytest.raises(NotApplicableError):
            plan_partitions(query, Database(), workers=2)


class TestPlanProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=0, max_size=60,
        ),
        workers=st.integers(1, 7),
        column=st.integers(0, 1),
        columnar=st.booleans(),
    )
    def test_shard_rows_is_a_partition(self, rows, workers, column,
                                       columnar):
        """Every row lands in exactly one shard, on either backend."""
        with use_backend(columnar):
            db = Database()
            for i, j in rows:
                db.add_fact("e", "n%d" % i, "n%d" % j)
            relation = db.get(("e", 2))
            stored = list(relation._log) if rows else []
            pool = db.intern_pool
            for row in stored:
                pool.ident_row(row)
            shards = shard_rows(stored, column, workers, pool)
        assert len(shards) == workers
        flattened = [row for shard in shards for row in shard]
        assert sorted(flattened) == sorted(stored)
        for index, shard in enumerate(shards):
            for row in shard:
                assert shard_of(pool.ident(row[column]), workers) == index

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        fanout=st.integers(1, 3),
        depth=st.integers(1, 4),
        workers=st.integers(1, 6),
        columnar=st.booleans(),
    )
    def test_plan_is_deterministic(self, fanout, depth, workers,
                                   columnar):
        """Same (program, db sizes, workers) -> identical plan dicts."""
        w = WORKLOADS["sg_tree"]
        with use_backend(columnar):
            db, _src = w.make_db(fanout=fanout, depth=depth)
            first = plan_partitions(w.query, db, workers=workers)
            second = plan_partitions(w.query, db, workers=workers)
        assert first.as_dict() == second.as_dict()

    def test_shard_of_is_process_independent(self):
        """shard_of mixes intern ids, never the salted builtin hash."""
        expected = [shard_of(i, 4) for i in range(32)]
        import subprocess
        import sys

        code = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.parallel import shard_of; "
            "print([shard_of(i, 4) for i in range(32)])"
        )
        output = subprocess.run(
            [sys.executable, "-c", code], cwd=".",
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert output == str(expected)


# -- executor equivalence ----------------------------------------------


class TestExecutorEquivalence:
    @pytest.mark.parametrize("wname", LINEAR_WORKLOADS)
    @pytest.mark.parametrize("columnar", [True, False],
                             ids=["columnar", "rows"])
    def test_matrix_matches_serial(self, wname, columnar):
        """workers=2 answers and merged counters equal the serial run
        on every linear workload, under both storage backends."""
        w = WORKLOADS[wname]
        with use_backend(columnar):
            db, _src = w.make_db()
            naive = run_strategy("naive", w.query, db)
            inline = _inline_run(w.query, db)
            engine = ParallelEngine(w.query, db, workers=2)
            engine.run()
        assert engine.answers == naive.answers
        assert inline.answers == naive.answers
        assert engine.stats.as_dict() == inline.stats.as_dict()

    def test_worker_count_invariance(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        inline = _inline_run(w.query, db)
        for workers in (2, 3, 5):
            engine = ParallelEngine(w.query, db, workers=workers)
            engine.run()
            assert engine.answers == inline.answers
            assert engine.stats.as_dict() == inline.stats.as_dict()

    def test_strategy_surface_and_extras(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=4)
        result = run_strategy("parallel", w.query, db, workers=2)
        naive = run_strategy("naive", w.query, db)
        assert result.answers == naive.answers
        assert result.method == "parallel"
        assert result.extras["workers"] == 2
        assert result.extras["barriers"] >= 1
        assert result.extras["exchange_bytes"] > 0
        phases = result.extras["phase_seconds"]
        assert set(phases) == {"plan", "execute"}
        assert "partition" in result.extras["plan"]

    def test_missing_base_relations_yield_empty_answers(self):
        """An empty database (every base relation an EmptyRelation
        stand-in) runs cleanly through the sharded executor instead of
        crashing while shipping shards, and agrees with serial."""
        w = WORKLOADS["sg_tree"]
        db = Database.from_text("")
        naive = run_strategy("naive", w.query, db)
        result = run_strategy("parallel", w.query, db, workers=2)
        assert result.answers == naive.answers
        assert not result.answers

    def test_nonlinear_raises_not_applicable(self):
        w = WORKLOADS["nonlinear"]
        db, _src = w.make_db()
        with pytest.raises(NotApplicableError):
            run_strategy("parallel", w.query, db, workers=2)

    def test_deadline_budget_fires(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=6)
        budget = ResourceBudget(timeout=0.0)
        with pytest.raises(DeadlineExceeded):
            run_strategy("parallel", w.query, db, workers=2,
                         budget=budget)


# -- picklable typed errors (multiprocessing transport) ----------------


class TestErrorPickling:
    @pytest.mark.parametrize("cls", [
        EvaluationError,
        BudgetExceededError,
        DeadlineExceeded,
        FactBudgetExceeded,
        RoundBudgetExceeded,
        EvaluationCancelled,
        WorkerCrashError,
    ])
    def test_roundtrip_keeps_stats_payload(self, cls):
        stats = EvalStats()
        stats.facts_derived = 17
        stats.iterations = 3
        error = cls("boom", stats=stats)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is cls
        assert str(clone) == "boom"
        assert clone.stats is not None
        assert clone.stats.facts_derived == 17
        assert clone.stats.iterations == 3

    def test_injected_fault_roundtrips(self):
        stats = EvalStats()
        stats.rule_firings = 5
        error = InjectedFault("injected @ round", stats=stats)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is InjectedFault
        assert clone.stats.rule_firings == 5

    def test_stats_roundtrip_standalone(self):
        stats = EvalStats()
        stats.tuples_scanned = 123
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.as_dict() == stats.as_dict()


# -- per-worker deterministic fault derivation -------------------------


class TestFaultDerivation:
    def test_derived_streams_are_pool_size_independent(self):
        """Worker k's damage stream depends on (seed, k) only."""
        for worker in range(4):
            streams = []
            for _pool_size in (2, 4, 8):
                derived = FaultInjector(seed=42).derive(worker)
                streams.append(
                    [derived.random.random() for _ in range(16)]
                )
            assert streams[0] == streams[1] == streams[2]

    def test_derived_streams_differ_across_workers(self):
        base = FaultInjector(seed=7)
        seeds = {base.derive(w).seed for w in range(8)}
        assert len(seeds) == 8
        assert base.seed == 7  # deriving never perturbs the base

    def test_same_seed_same_damage(self):
        a = [FaultInjector(seed=3).derive(1).random.random()
             for _ in range(1)]
        b = [FaultInjector(seed=3).derive(1).random.random()
             for _ in range(1)]
        assert a == b

    def test_spec_roundtrip_preserves_plans(self):
        injector = FaultInjector(seed=9).kill_worker(worker=2, after=3)
        clone = FaultInjector.from_spec(injector.spec())
        assert clone.seed == 9
        assert clone._kill_worker_target == 2
        assert clone._kill_worker_after == 3
        spec = injector.spec()
        assert pickle.loads(pickle.dumps(spec)) == spec


# -- worker crash degradation ------------------------------------------


class TestCrashDegradation:
    def test_sigkill_mid_round_degrades_to_serial(self, fault_injector):
        """With recovery="serial" a SIGKILLed worker surfaces as a
        typed attempt record and the chain completes serially — no
        hang, no partial answers.  (The self-healing default would
        instead repair the pool in place; see test_self_healing.py.)"""
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        naive = run_strategy("naive", w.query, db)
        fault_injector.kill_worker(worker=1, after=2)
        with fault_injector:
            report = run_resilient(
                w.query, db,
                FallbackPolicy(chain=PARALLEL_CHAIN, workers=2,
                               recovery="serial"),
            )
        assert report.succeeded
        assert report.method != "parallel"
        assert report.result.answers == naive.answers
        first = report.attempts[0]
        assert first.method == "parallel"
        assert first.error_class == "WorkerCrashError"

    def test_parallel_chain_shape(self):
        assert PARALLEL_CHAIN[0] == "parallel"
        assert PARALLEL_CHAIN[1:] == DEFAULT_CHAIN

    def test_clean_run_stays_parallel(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=4)
        report = run_resilient(
            w.query, db, FallbackPolicy(chain=PARALLEL_CHAIN, workers=2)
        )
        assert report.method == "parallel"
        assert report.fallback_depth == 0


# -- prepared queries and serving --------------------------------------


class TestPreparedAndService:
    def test_prepared_counting_parallel_phase1(self):
        from repro.exec.prepared import PreparedQuery

        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        serial = PreparedQuery(w.query, db, method="pointer_counting") \
            .run(db=db)
        prepared = PreparedQuery(w.query, db, method="pointer_counting")
        parallel = prepared.run(db=db, workers=2)
        assert parallel.answers == serial.answers
        assert parallel.extras["parallel_phase1_workers"] == 2
        assert parallel.stats.as_dict() == serial.stats.as_dict()
        assert parallel.extras["counting_rows"] == \
            serial.extras["counting_rows"]
        assert parallel.extras["counting_triples"] == \
            serial.extras["counting_triples"]

    def test_prepared_naive_uses_sharded_fixpoint(self):
        from repro.exec.prepared import PreparedQuery

        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=4)
        naive = run_strategy("naive", w.query, db)
        prepared = PreparedQuery(w.query, db, method="naive")
        result = prepared.run(db=db, workers=2)
        assert result.method == "parallel"
        assert result.answers == naive.answers

    def test_service_clamps_eval_workers_to_tenant_quota(self):
        from repro.exec.prepared import PreparedQuery
        from repro.serve.service import QueryService
        from repro.tenancy.quota import TenantQuota

        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=4)
        naive = run_strategy("naive", w.query, db)
        prepared = PreparedQuery(w.query, db, method="naive")
        service = QueryService(
            prepared, db, workers=1,
            tenants={
                "fast": TenantQuota(max_eval_workers=2),
                "serial": TenantQuota(max_eval_workers=1),
            },
        )
        try:
            granted = service.run(tenant="fast", eval_workers=16)
            assert granted.extras["service"]["eval_workers"] == 2
            assert granted.answers == naive.answers
            clamped = service.run(tenant="serial", eval_workers=16)
            assert clamped.extras["service"]["eval_workers"] is None
            assert clamped.method == "naive"
            assert clamped.answers == naive.answers
        finally:
            service.drain()

    def test_service_default_eval_workers(self):
        from repro.exec.prepared import PreparedQuery
        from repro.serve.service import QueryService

        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=4)
        prepared = PreparedQuery(w.query, db, method="naive")
        service = QueryService(prepared, db, workers=1, eval_workers=2)
        try:
            result = service.run()
            assert result.extras["service"]["eval_workers"] == 2
            assert result.method == "parallel"
        finally:
            service.drain()
