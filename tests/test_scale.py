"""Scale and stress tests: deep recursion, wide relations, long paths.

The engine and the dedicated evaluators are all iterative — nothing
here may hit Python's recursion limit or degrade superlinearly on
chains.
"""

import sys

import pytest

from repro import Database, parse_query
from repro.data.generators import chain, node_name
from repro.exec.strategies import run_strategy


def deep_sg_db(depth):
    db = Database()
    db.add_facts(chain(depth, "up", "x"))
    db.add_fact("flat", node_name("x", depth), node_name("y", 0))
    db.add_facts(chain(depth, "down", "y"))
    # rename x0 -> a (the query's constant)
    out = Database()
    for key in db.keys():
        for row in db.get(key):
            out.relation(key[0], key[1]).add(
                tuple("a" if v == "x0" else v for v in row)
            )
    return out


SG = parse_query("""
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
""")


class TestDeepChains:
    DEPTH = 600  # far beyond the default recursion limit relevance

    @pytest.mark.parametrize(
        "method",
        ["naive", "magic", "classical_counting", "pointer_counting",
         "cyclic_counting"],
    )
    def test_methods_survive_depth(self, method):
        db = deep_sg_db(self.DEPTH)
        result = run_strategy(method, SG, db)
        assert result.answers == {(node_name("y", self.DEPTH),)}

    def test_no_recursion_limit_dependency(self):
        db = deep_sg_db(self.DEPTH)
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(120)
        try:
            result = run_strategy("pointer_counting", SG, db)
            assert len(result.answers) == 1
        finally:
            sys.setrecursionlimit(old)

    def test_extended_counting_deep_lists(self):
        # Path lists of length 200: the generic engine must cope with
        # long structured values.
        db = deep_sg_db(200)
        result = run_strategy("extended_counting", SG, db)
        assert result.answers == {(node_name("y", 200),)}


class TestLinearScaling:
    def test_pointer_counting_scales_linearly_on_chains(self):
        works = []
        for depth in (100, 200, 400):
            db = deep_sg_db(depth)
            result = run_strategy("pointer_counting", SG, db)
            works.append(result.stats.total_work)
        # Doubling depth should no more than ~2.5x the work.
        assert works[1] < works[0] * 2.5
        assert works[2] < works[1] * 2.5

    def test_relation_match_uses_indexes(self):
        from repro.engine.relation import Relation, WILDCARD

        rel = Relation("p", 2)
        for i in range(5000):
            rel.add((i % 50, i))
        # Build the index once, then many lookups: fast path.
        hits = sum(
            1 for _ in rel.match((7, WILDCARD))
        )
        assert hits == 100


class TestWideFacts:
    def test_high_arity_relation(self):
        query = parse_query("""
            pick(A, B, C, D, E) :- wide(A, B, C, D, E), A = k1.
            ?- pick(k1, B, C, D, E).
        """)
        db = Database()
        for i in range(50):
            db.add_fact("wide", "k%d" % i, i, i + 1, i + 2, i + 3)
        result = run_strategy("naive", query, db)
        assert result.answers == {(1, 2, 3, 4)}
