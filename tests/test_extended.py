"""Extended counting (Algorithm 1) tests, anchored on Examples 3-4."""

import pytest

from repro import Database, parse_query
from repro.datalog import format_rule
from repro.engine import SemiNaiveEngine, evaluate_query
from repro.rewriting.extended import extended_counting_rewrite


def rules_text(rules):
    return [format_rule(rule) for rule in rules]


class TestExample3Structure:
    def test_counting_rules_push_rule_labels(self, example3_query):
        rewriting = extended_counting_rewrite(example3_query)
        # Seed plus one counting rule per recursive rule.
        assert len(rewriting.counting_rules) == 3
        pushes = [
            rule for rule in rewriting.counting_rules if rule.body
        ]
        for rule in pushes:
            head_path = rule.head.args[-1]
            # The head path is a cons cell [(label, [...]) | L].
            assert head_path.functor == "."

    def test_distinct_rule_labels(self, example3_query):
        rewriting = extended_counting_rewrite(example3_query)
        labels = set()
        for rule in rewriting.counting_rules:
            if rule.body:
                entry = rule.head.args[-1].args[0]
                labels.add(entry.args[0].value)
        assert len(labels) == 2

    def test_modified_rules_pop(self, example3_query):
        rewriting = extended_counting_rewrite(example3_query)
        recs = [
            rule for rule in rewriting.modified_rules
            if rule.body[0].pred == rewriting.query.goal.pred
        ]
        assert len(recs) == 2
        for rule in recs:
            body_path = rule.body[0].args[-1]
            assert body_path.functor == "."

    def test_goal_empty_path(self, example3_query):
        rewriting = extended_counting_rewrite(example3_query)
        assert rewriting.query.goal.args[-1].value == ()


class TestExample4Structure:
    """The rewriting printed in Example 4, checked textually."""

    def test_program_matches_paper(self, example4_query):
        rewriting = extended_counting_rewrite(example4_query)
        text = "\n".join(
            rules_text(rewriting.counting_rules + rewriting.modified_rules)
        )
        # Shared variable W rides the path entry of rule r1.
        assert "c_p__bf(X1, [(r1, [W]) | CNT_PATH]) :- "\
            "c_p__bf(X, CNT_PATH), up1(X, X1, W)." in text
        # Rule r2 pushes an empty shared list.
        assert "c_p__bf(X1, [(r2, []) | CNT_PATH]) :- "\
            "c_p__bf(X, CNT_PATH), up2(X, X1)." in text
        # D_r = {X} for r2: the counting atom stays in the body.
        assert "p__bf(Y, CNT_PATH) :- p__bf(Y1, [(r2, []) | CNT_PATH]), "\
            "c_p__bf(X, CNT_PATH), down2(Y1, Y, X)." in text

    def test_counting_atom_omitted_when_no_bound_use(self, example4_query):
        rewriting = extended_counting_rewrite(example4_query)
        r1_modified = [
            rule for rule in rewriting.modified_rules
            if any(a.pred == "down1" for a in rule.body_atoms())
        ][0]
        body_preds = [a.pred for a in r1_modified.body_atoms()]
        # D_r = {} for r1: no counting atom in the body.
        assert "c_p__bf" not in body_preds


class TestExample4Semantics:
    """The two databases worked through in Example 4."""

    def test_database_a(self, example4_query, example4_db_a):
        rewriting = extended_counting_rewrite(example4_query)
        engine = SemiNaiveEngine(rewriting.query.program, example4_db_a)
        derived = engine.run()
        counting = derived[("c_p__bf", 2)]
        assert ("a", ()) in counting
        assert ("b", (("r1", (1,)),)) in counting
        answers = derived[("p__bf", 2)]
        # The paper: {p(c, [(r1,[1])]), p(e, [])}.
        assert ("c", (("r1", (1,)),)) in answers
        assert ("e", ()) in answers
        assert ("d", ()) not in answers.tuples

    def test_database_b(self, example4_query, example4_db_b):
        rewriting = extended_counting_rewrite(example4_query)
        engine = SemiNaiveEngine(rewriting.query.program, example4_db_b)
        derived = engine.run()
        answers = derived[("p__bf", 2)]
        assert ("e", ()) in answers
        result = evaluate_query(rewriting.query, example4_db_b)
        assert result.answers == {("e",)}

    def test_agrees_with_naive(self, example4_query):
        from repro.data.workloads import shared_vars_chain

        db, _source = shared_vars_chain(depth=8)
        rewriting = extended_counting_rewrite(example4_query)
        extended = evaluate_query(rewriting.query, db)
        naive = evaluate_query(example4_query, db)
        assert extended.answers == naive.answers
        assert extended.answers  # non-degenerate


class TestSpecialShapes:
    def test_right_linear_no_push(self):
        query = parse_query("""
            reach(X, Y) :- flat(X, Y).
            reach(X, Y) :- up(X, X1), reach(X1, Y).
            ?- reach(a, Y).
        """)
        rewriting = extended_counting_rewrite(query)
        push_rules = [r for r in rewriting.counting_rules if r.body]
        assert len(push_rules) == 1
        # Head path equals body path: no push.
        rule = push_rules[0]
        assert rule.head.args[-1] == rule.body[0].args[-1]
        # Right-linear rules produce no modified recursive rule.
        assert len(rewriting.modified_rules) == 1

    def test_left_linear_no_counting_rule(self):
        query = parse_query("""
            desc(X, Y) :- flat(X, Y).
            desc(X, Y) :- desc(X, Y1), down(Y1, Y).
            ?- desc(a, Y).
        """)
        rewriting = extended_counting_rewrite(query)
        # Only the seed.
        assert len(rewriting.counting_rules) == 1
        recs = [
            r for r in rewriting.modified_rules
            if any(a.pred == "desc__bf" for a in r.body_atoms())
        ]
        assert len(recs) == 1
        rule = recs[0]
        assert rule.head.args[-1] == rule.body[0].args[-1]

    def test_mutual_recursion_counting_predicates(self):
        query = parse_query("""
            even(X, Y) :- flat(X, Y).
            even(X, Y) :- up(X, X1), odd(X1, Y1), down(Y1, Y).
            odd(X, Y) :- up(X, X1), even(X1, Y1), down(Y1, Y).
            ?- even(a, Y).
        """)
        rewriting = extended_counting_rewrite(query)
        counting_names = {
            name for name, _ in rewriting.counting_preds.values()
        }
        assert counting_names == {"c_even__bf", "c_odd__bf"}

    def test_mutual_recursion_answers(self):
        query = parse_query("""
            even(X, Y) :- flat(X, Y).
            even(X, Y) :- up(X, X1), odd(X1, Y1), down(Y1, Y).
            odd(X, Y) :- up(X, X1), even(X1, Y1), down(Y1, Y).
            ?- even(a, Y).
        """)
        from repro.data.workloads import mutual_chain

        db, _source = mutual_chain(depth=9)
        rewriting = extended_counting_rewrite(query)
        extended = evaluate_query(rewriting.query, db)
        naive = evaluate_query(query, db)
        assert extended.answers == naive.answers


class TestPathValues:
    def test_paths_record_rule_sequence(self, example3_query):
        db = Database.from_text("""
            up1(a, b). up2(b, c).
            flat(c, c).
            down2(c, d). down1(d, e).
        """)
        rewriting = extended_counting_rewrite(example3_query)
        engine = SemiNaiveEngine(rewriting.query.program, db)
        derived = engine.run()
        counting = derived[("c_sg__bf", 2)]
        paths = {row[1] for row in counting if row[0] == "c"}
        # c reached via r1 then r2: path is [(r2,[]), (r1,[])] (stack).
        assert paths == {(("r2", ()), ("r1", ()))}
