"""Self-healing sharded fixpoint: supervision, repair, speculation.

Covers the :class:`~repro.parallel.supervisor.RecoveryPolicy` knobs and
their validation, the :class:`~repro.parallel.supervisor.Supervisor`'s
failure classification under an injected clock, the barrier checkpoint
spill round-trip, and — the acceptance drills — killing, wedging and
slowing pool workers mid-fixpoint and asserting the run completes
*without* serial fallback with answers and merged counters byte-equal
to an undisturbed parallel run.  The crash-at-every-barrier matrix
walks each barrier index of representative linear workloads under both
storage backends; the shutdown-escalation regression pins the
kill-after-terminate teardown path with a SIGTERM-immune worker.
"""

import os
import pickle
import signal
import time

import multiprocessing

import pytest

from repro.data.workloads import WORKLOADS
from repro.engine.columnar import use_backend
from repro.engine.faults import FaultInjector, strip_worker_plans
from repro.errors import RecoveryExhaustedError, WorkerHungError
from repro.exec.resilient import PARALLEL_CHAIN, FallbackPolicy, \
    run_resilient
from repro.exec.strategies import run_strategy
from repro.parallel import (
    RECOVERY_MODES,
    RecoveryPolicy,
    RoundCheckpoint,
    Supervisor,
    WorkerCrashError,
    plan_partitions,
)
from repro.parallel.executor import _WorkerHandle, _reap_worker


def _oracle(query, db, workers):
    """The undisturbed parallel run every healed run must match."""
    return run_strategy("parallel", query, db, workers=workers)


def _assert_equivalent(healed, oracle):
    """The recovery invariant: identical answers *and* counters."""
    assert healed.answers == oracle.answers
    assert healed.stats.as_dict() == oracle.stats.as_dict()


# -- the recovery policy -----------------------------------------------


class TestRecoveryPolicy:
    def test_defaults(self):
        policy = RecoveryPolicy()
        assert policy.mode == "reassign"
        assert policy.max_repairs == 2
        assert policy.speculate
        assert not policy.spill

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(mode="restart")
        for mode in RECOVERY_MODES:
            assert RecoveryPolicy(mode=mode).mode == mode

    @pytest.mark.parametrize("kwargs", [
        {"max_repairs": -1},
        {"heartbeat_interval": 0.0},
        {"liveness_timeout": 0.05, "heartbeat_interval": 0.1},
        {"barrier_timeout": 0.0},
        {"straggler_multiple": 0.5},
        {"straggler_min_seconds": -1.0},
    ])
    def test_threshold_validation(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)

    def test_coerce(self):
        assert RecoveryPolicy.coerce(None).mode == "reassign"
        assert RecoveryPolicy.coerce("respawn").mode == "respawn"
        policy = RecoveryPolicy(mode="serial")
        assert RecoveryPolicy.coerce(policy) is policy
        with pytest.raises(TypeError):
            RecoveryPolicy.coerce(3)
        with pytest.raises(ValueError):
            RecoveryPolicy.coerce("sideways")

    def test_as_dict_carries_the_knobs(self):
        summary = RecoveryPolicy(mode="respawn", max_repairs=5,
                                 spill=True).as_dict()
        assert summary["mode"] == "respawn"
        assert summary["max_repairs"] == 5
        assert summary["spill"] is True


# -- the supervisor under an injected clock ----------------------------


class TestSupervisor:
    def _supervisor(self, clock, **kwargs):
        policy = RecoveryPolicy(
            heartbeat_interval=kwargs.pop("heartbeat_interval", 0.1),
            liveness_timeout=kwargs.pop("liveness_timeout", 1.0),
            barrier_timeout=kwargs.pop("barrier_timeout", 5.0),
            **kwargs,
        )
        return Supervisor(policy, clock=clock)

    def test_diagnose_crash_beats_everything(self):
        sup = self._supervisor(lambda: 0.0)
        assert sup.diagnose(0, waited=0.0, alive=False) == "crash"

    def test_diagnose_heartbeat_silence_is_a_hang(self):
        now = [0.0]
        sup = self._supervisor(lambda: now[0])
        sup.beat(0)
        now[0] = 0.5
        assert sup.diagnose(0, waited=0.5, alive=True) is None
        now[0] = 1.6
        assert sup.diagnose(0, waited=1.6, alive=True) == "hang"

    def test_diagnose_barrier_overstay_is_a_hang(self):
        now = [0.0]
        sup = self._supervisor(lambda: now[0])
        sup.beat(0)  # heartbeats flowing...
        assert sup.diagnose(0, waited=5.5, alive=True) == "hang"

    def test_forget_clears_liveness_state(self):
        now = [0.0]
        sup = self._supervisor(lambda: now[0])
        sup.beat(0)
        sup.forget(0)
        now[0] = 100.0
        # No beat on record: silence cannot be held against the slot.
        assert sup.diagnose(0, waited=0.0, alive=True) is None

    def test_straggler_deadline_needs_history(self):
        sup = self._supervisor(lambda: 0.0, straggler_multiple=4.0,
                               straggler_min_seconds=0.2)
        assert sup.straggler_deadline() is None
        for seconds in (0.01, 0.05, 0.03):
            sup.observe_round_time(seconds)
        assert sup.median_round_time() == 0.03
        assert sup.straggler_deadline() == pytest.approx(0.2)
        sup.observe_round_time(1.0)
        # Median is robust: one slow round barely moves the deadline.
        assert sup.median_round_time() == pytest.approx(0.04)

    def test_speculation_off_means_no_deadline(self):
        sup = self._supervisor(lambda: 0.0, speculate=False)
        sup.observe_round_time(0.01)
        assert sup.straggler_deadline() is None

    def test_repair_budget_and_event_log(self):
        sup = self._supervisor(lambda: 0.0, max_repairs=1)
        assert sup.allow_repair()
        sup.record("crash", 1, 3, seconds=0.2, detail="exit code -9")
        sup.record("reassign", 1, 3, detail="1 survivors")
        sup.repairs += 1
        assert not sup.allow_repair()
        assert sup.crashes == 1 and sup.reassignments == 1
        summary = sup.as_dict()
        assert summary["repairs"] == 1
        assert [e["kind"] for e in summary["events"]] == \
            ["crash", "reassign"]
        assert summary["events"][0]["detail"] == "exit code -9"


class TestRoundCheckpoint:
    def test_bytes_round_trip(self):
        checkpoint = RoundCheckpoint(
            4,
            {0: {("sg", 2): b"alpha"}, 2: {("sg", 2): b"beta"}},
            {("sg", 2): 17},
        )
        clone = RoundCheckpoint.from_bytes(checkpoint.to_bytes())
        assert clone.round_index == 4
        assert clone.portions == checkpoint.portions
        assert clone.epochs == checkpoint.epochs
        assert clone.portion(2) == {("sg", 2): b"beta"}
        assert clone.portion(5) == {}


# -- acceptance: heal in place, never change the answer ----------------


class TestCrashHealing:
    def test_kill_one_of_four_heals_without_fallback(self):
        """The headline drill: SIGKILL 1 of 4 workers mid-fixpoint;
        the run completes in parallel (no serial fallback) with answers
        and merged EvalStats byte-identical to an undisturbed run."""
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        oracle = _oracle(w.query, db, workers=4)
        injector = FaultInjector(seed=0).crash_at_barrier(
            worker=1, barrier=2
        )
        with injector:
            healed = run_strategy("parallel", w.query, db, workers=4)
        _assert_equivalent(healed, oracle)
        recovery = healed.extras["recovery"]
        assert recovery["crashes"] == 1
        assert recovery["reassignments"] == 1
        assert recovery["repairs"] == 1
        assert recovery["rounds_replayed"] == 1
        kinds = [event["kind"] for event in recovery["events"]]
        assert kinds == ["crash", "reassign"]

    def test_respawn_heals_in_the_same_slot(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        oracle = _oracle(w.query, db, workers=4)
        injector = FaultInjector(seed=0).crash_at_barrier(
            worker=2, barrier=3
        )
        with injector:
            healed = run_strategy(
                "parallel", w.query, db, workers=4,
                recovery=RecoveryPolicy(mode="respawn"),
            )
        _assert_equivalent(healed, oracle)
        recovery = healed.extras["recovery"]
        assert recovery["crashes"] == 1
        assert recovery["respawns"] == 1
        assert recovery["reassignments"] == 0

    def test_hang_heals_via_barrier_deadline(self):
        """A wedged-but-alive worker (heartbeats flowing, no reply) is
        detected by the barrier deadline and repaired — without
        waiting out its sleep."""
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        oracle = _oracle(w.query, db, workers=4)
        injector = FaultInjector(seed=0).hang_at_barrier(
            worker=1, barrier=2, seconds=30.0
        )
        started = time.perf_counter()
        with injector:
            healed = run_strategy(
                "parallel", w.query, db, workers=4,
                recovery=RecoveryPolicy(barrier_timeout=0.3,
                                        speculate=False),
            )
        elapsed = time.perf_counter() - started
        _assert_equivalent(healed, oracle)
        recovery = healed.extras["recovery"]
        assert recovery["hangs"] == 1
        assert recovery["reassignments"] == 1
        assert elapsed < 15.0  # nowhere near the 30s sleep

    def test_spill_checkpoints_are_equivalent(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        oracle = _oracle(w.query, db, workers=2)
        injector = FaultInjector(seed=0).crash_at_barrier(
            worker=0, barrier=2
        )
        with injector:
            healed = run_strategy(
                "parallel", w.query, db, workers=2,
                recovery=RecoveryPolicy(spill=True),
            )
        _assert_equivalent(healed, oracle)
        recovery = healed.extras["recovery"]
        assert recovery["repairs"] == 1
        assert recovery["checkpoints"] > 0
        assert recovery["checkpoint_bytes"] > 0


class TestDegradation:
    def test_serial_mode_restores_fail_fast(self, fault_injector):
        """mode="serial" is PR 9 behaviour: the typed error escapes
        and the resilient chain restarts serially — and the attempt
        record still carries the supervisor's story."""
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        serial = run_strategy("naive", w.query, db)
        fault_injector.kill_worker(worker=1, after=2)
        with fault_injector:
            report = run_resilient(
                w.query, db,
                FallbackPolicy(chain=PARALLEL_CHAIN, workers=2,
                               recovery="serial"),
            )
        assert report.succeeded
        assert report.method != "parallel"
        assert report.result.answers == serial.answers
        first = report.attempts[0]
        assert first.error_class == "WorkerCrashError"
        assert first.rounds > 0
        assert first.recovery is not None
        assert first.recovery["crashes"] == 1
        assert first.repair_count == 0
        assert "[recovery: 0 repairs" in report.render()
        attempt = report.summary()["attempts"][0]
        assert attempt["rounds"] == first.rounds
        assert attempt["recovery"]["policy"]["mode"] == "serial"

    def test_exhausted_allowance_raises_with_the_repair_log(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        injector = FaultInjector(seed=0).crash_at_barrier(
            worker=0, barrier=1
        )
        with injector:
            with pytest.raises(RecoveryExhaustedError) as info:
                run_strategy(
                    "parallel", w.query, db, workers=2,
                    recovery=RecoveryPolicy(max_repairs=0),
                )
        exc = info.value
        assert exc.repairs and exc.repairs[0]["kind"] == "crash"
        assert exc.rounds > 0
        assert exc.recovery is not None

    def test_exhausted_allowance_degrades_last(self, fault_injector):
        """Degrade-to-serial is the LAST resort: it happens only once
        max_repairs is spent, and the failed attempt carries the full
        repair log."""
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        serial = run_strategy("naive", w.query, db)
        fault_injector.kill_worker(worker=0, after=1)
        with fault_injector:
            report = run_resilient(
                w.query, db,
                FallbackPolicy(
                    chain=PARALLEL_CHAIN, workers=2,
                    recovery=RecoveryPolicy(max_repairs=0),
                ),
            )
        assert report.succeeded
        assert report.result.answers == serial.answers
        first = report.attempts[0]
        assert first.error_class == "RecoveryExhaustedError"
        assert first.recovery["crashes"] == 1
        assert report.summary()["attempts"][0]["repairs"] == 0

    def test_errors_pickle_with_their_payload(self):
        hung = WorkerHungError("worker 3 hung", stats=None)
        clone = pickle.loads(pickle.dumps(hung))
        assert isinstance(clone, WorkerHungError)
        assert isinstance(clone, WorkerCrashError)
        exhausted = RecoveryExhaustedError(
            "allowance spent", repairs=[{"kind": "crash", "worker": 1}],
            rounds=4,
        )
        clone = pickle.loads(pickle.dumps(exhausted))
        assert clone.repairs == [{"kind": "crash", "worker": 1}]
        assert clone.rounds == 4


# -- speculation -------------------------------------------------------


class TestSpeculation:
    POLICY = dict(straggler_multiple=1.0, straggler_min_seconds=0.15)

    def test_local_twin_beats_a_straggler_on_a_sharded_plan(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=5)
        assert plan_partitions(w.query, db, workers=2).sharded
        oracle = _oracle(w.query, db, workers=2)
        injector = FaultInjector(seed=0).slow_worker(
            worker=1, seconds=0.6
        )
        with injector:
            healed = run_strategy(
                "parallel", w.query, db, workers=2,
                recovery=RecoveryPolicy(**self.POLICY),
            )
        _assert_equivalent(healed, oracle)
        recovery = healed.extras["recovery"]
        assert recovery["speculative_wins"] >= 1
        assert recovery["repairs"] == 0  # mitigation, not repair
        details = {e["detail"] for e in recovery["events"]
                   if e["kind"] == "speculative_win"}
        assert details == {"local"}

    def test_idle_peer_runs_the_twin_on_a_broadcast_plan(self):
        w = WORKLOADS["sg_tree"]
        db, _src = w.make_db(fanout=3, depth=3)
        assert not plan_partitions(w.query, db, workers=2).sharded
        oracle = _oracle(w.query, db, workers=2)
        injector = FaultInjector(seed=0).slow_worker(
            worker=1, seconds=0.6
        )
        with injector:
            healed = run_strategy(
                "parallel", w.query, db, workers=2,
                recovery=RecoveryPolicy(**self.POLICY),
            )
        _assert_equivalent(healed, oracle)
        recovery = healed.extras["recovery"]
        assert recovery["speculative_wins"] >= 1
        details = {e["detail"] for e in recovery["events"]
                   if e["kind"] == "speculative_win"}
        assert "peer" in details


# -- the crash-at-every-barrier matrix ---------------------------------


class _BarrierMatrix:
    """Walk every barrier index of one workload until the fault stops
    firing (the index is past the last worker round); each disturbed
    run must match the undisturbed oracle exactly."""

    #: Safety rail: no matrix workload runs this many rounds.
    LIMIT = 40

    def drill(self, wname, params, columnar, kind):
        w = WORKLOADS[wname]
        with use_backend(columnar):
            db, _src = w.make_db(**params)
            oracle = _oracle(w.query, db, workers=2)
            barrier = 1
            while barrier < self.LIMIT:
                injector = FaultInjector(seed=0)
                if kind == "crash":
                    injector.crash_at_barrier(worker=1, barrier=barrier)
                    policy = RecoveryPolicy(speculate=False)
                else:
                    injector.hang_at_barrier(worker=1, barrier=barrier,
                                             seconds=30.0)
                    policy = RecoveryPolicy(barrier_timeout=0.25,
                                            speculate=False)
                with injector:
                    healed = run_strategy(
                        "parallel", w.query, db, workers=2,
                        recovery=policy,
                    )
                _assert_equivalent(healed, oracle)
                recovery = healed.extras["recovery"]
                fired = recovery["crashes"] + recovery["hangs"]
                if not fired:
                    break  # past the last barrier: undisturbed run
                assert fired == 1
                assert recovery["repairs"] == 1
                barrier += 1
            assert 1 < barrier < self.LIMIT
        return barrier - 1


class TestBarrierMatrix(_BarrierMatrix):
    @pytest.mark.parametrize("columnar", [True, False],
                             ids=["columnar", "rows"])
    @pytest.mark.parametrize("wname,params", [
        ("sg_cylinder", {"width": 16, "height": 5}),   # sharded plan
        ("mixed_linear", {"up_depth": 5, "down_depth": 5}),  # broadcast
    ])
    def test_sigkill_at_every_barrier(self, wname, params, columnar):
        barriers = self.drill(wname, params, columnar, "crash")
        assert barriers >= 2

    @pytest.mark.parametrize("columnar", [True, False],
                             ids=["columnar", "rows"])
    @pytest.mark.parametrize("wname,params", [
        ("sg_cylinder", {"width": 16, "height": 5}),
        ("mixed_linear", {"up_depth": 5, "down_depth": 5}),
    ])
    def test_hang_at_every_barrier(self, wname, params, columnar):
        barriers = self.drill(wname, params, columnar, "hang")
        assert barriers >= 2


# -- satellite regressions ---------------------------------------------


def _sigterm_immune_worker():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(60)


class TestWorkerTeardown:
    def test_reap_escalates_to_sigkill(self):
        """A worker that masks SIGTERM still dies: terminate fails,
        the escalation ends in kill(), and both pipe ends plus the
        Process object are always closed."""
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        parent, child = context.Pipe(duplex=True)
        hb_recv, hb_send = context.Pipe(duplex=False)
        process = context.Process(target=_sigterm_immune_worker,
                                  daemon=True)
        process.start()
        child.close()
        hb_send.close()
        pid = process.pid
        handle = _WorkerHandle(0, process, parent, hb_recv)
        time.sleep(0.1)  # let the child install its SIGTERM handler
        _reap_worker(handle, patience=0.3, graceful=False)
        # SIGKILL got it despite the ignored SIGTERM...
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
        # ...and every coordinator-side resource is released.
        assert parent.closed
        assert hb_recv.closed
        with pytest.raises(ValueError):
            process.is_alive()

    def test_strip_worker_plans_disarms_only_worker_faults(self):
        injector = FaultInjector(seed=7)
        injector.crash_at_barrier(worker=1, barrier=2)
        injector.slow_worker(worker=0, seconds=0.5)
        injector.delay_probes(every=100, seconds=0.001)
        spec = injector.spec()
        stripped = strip_worker_plans(spec)
        assert stripped["seed"] == 7
        assert stripped["plans"]["_kill_worker_target"] is None
        assert stripped["plans"]["_slow_worker_target"] is None
        # Non-worker plans ship unchanged.
        assert stripped["plans"]["_delay_every"] == \
            spec["plans"]["_delay_every"]
        assert strip_worker_plans(None) is None
