"""Regenerate the golden rewriting outputs.

Run from the repository root after an *intentional* change to a
rewriting or the pretty-printer::

    python tests/golden/regen.py

then review the diff before committing.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))

from tests.test_golden_rewritings import CASES, GOLDEN_DIR  # noqa: E402


def main():
    for name, render in sorted(CASES.items()):
        path = os.path.join(GOLDEN_DIR, name)
        with open(path, "w") as handle:
            handle.write(render() + "\n")
        print("regenerated", path)


if __name__ == "__main__":
    main()
