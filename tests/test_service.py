"""The concurrent serving layer: admission control, deadlines,
retries, circuit breakers and graceful drain.

Fake prepared objects (anything with ``method`` / ``run`` / ``bind``)
drive the deterministic control-flow tests; the real
``PreparedQuery`` over an ``sg_forest`` database backs the
answers-identical and breaker/fallback integration tests.  Thread
timing never decides an assertion: blocking fakes gate on events, and
deadlines/breakers run on injectable fake clocks.
"""

import threading
import time

import pytest

from repro import Database
from repro.data.workloads import (
    WORKLOADS,
    forest_bindings,
    forest_root,
    poison_forest,
    sg_forest,
)
from repro.engine.guard import CancellationToken, ResourceBudget
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    CountingDivergenceError,
    DeadlineExceeded,
    EvaluationCancelled,
    FactBudgetExceeded,
    NotApplicableError,
    RoundBudgetExceeded,
    Overloaded,
    ServiceClosed,
    ServiceError,
)
from repro.exec import AnswerCache, CountingTableStore, PreparedQuery
from repro.exec.resilient import FallbackPolicy, run_resilient
from repro.exec.strategies import run_strategy
from repro.serve import (
    BreakerBoard,
    CircuitBreaker,
    QueryService,
    RetryPolicy,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeResult:
    """Duck-types ExecutionResult far enough for the service."""

    def __init__(self, answers=frozenset()):
        self.answers = frozenset(answers)
        self.method = "fake"
        self.extras = {}


class FakePrepared:
    """A scriptable prepared query: per-call outcomes, optional gate.

    ``outcomes`` is a list of either exceptions (raised) or answer
    iterables (returned); the list is consumed per run call and the
    last entry repeats.  With ``gate`` set, every run blocks until the
    gate event fires (``started`` signals pickup).
    """

    method = "pointer_counting"

    def __init__(self, outcomes=((),), gate=None):
        self.outcomes = list(outcomes)
        self.gate = gate
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def run(self, constants, db=None, budget=None):
        with self._lock:
            self.calls += 1
            outcome = (
                self.outcomes.pop(0) if len(self.outcomes) > 1
                else self.outcomes[0]
            )
        self.started.set()
        if self.gate is not None:
            self.gate.wait()
        if isinstance(outcome, BaseException):
            raise outcome
        return FakeResult(outcome)

    def bind(self, constants):
        return WORKLOADS["sg_forest"].query


class CancellableFake(FakePrepared):
    """Blocks until the request's cancellation token flips."""

    def run(self, constants, db=None, budget=None):
        self.started.set()
        budget.token.wait(30.0)
        budget.check()
        raise AssertionError("token never cancelled")


def tiny_db():
    return Database.from_text("flat(a, b).")


class TestCancellationToken:
    def test_flip_visible_across_threads(self):
        token = CancellationToken()
        seen = []

        def watcher():
            seen.append(token.wait(5.0))

        thread = threading.Thread(target=watcher)
        thread.start()
        token.cancel()
        thread.join()
        assert seen == [True]
        assert token.cancelled

    def test_wait_timeout_returns_flag(self):
        token = CancellationToken()
        assert token.wait(0.0) is False
        token.cancel()
        assert token.wait(0.0) is True

    def test_monotonic(self):
        token = CancellationToken()
        token.cancel()
        token.cancel()
        assert token.cancelled


class TestBudgetChild:
    def test_child_clamps_to_remaining(self):
        clock = FakeClock()
        parent = ResourceBudget(timeout=10.0, clock=clock).start()
        clock.advance(4.0)
        child = parent.child()
        assert child.timeout == pytest.approx(6.0)

    def test_child_never_extends_deadline(self):
        clock = FakeClock()
        parent = ResourceBudget(timeout=2.0, clock=clock).start()
        child = parent.child(timeout=100.0)
        assert child.timeout == pytest.approx(2.0)

    def test_child_tighter_timeout_kept(self):
        clock = FakeClock()
        parent = ResourceBudget(timeout=10.0, clock=clock).start()
        child = parent.child(timeout=1.0)
        assert child.timeout == pytest.approx(1.0)

    def test_expired_parent_yields_zero_allowance(self):
        clock = FakeClock()
        parent = ResourceBudget(timeout=1.0, clock=clock).start()
        clock.advance(5.0)
        child = parent.child()
        assert child.timeout == 0.0
        child.start()
        clock.advance(1e-9)  # any movement at all breaches it
        with pytest.raises(DeadlineExceeded):
            child.check()

    def test_child_inherits_caps_token_and_clock(self):
        token = CancellationToken()
        clock = FakeClock()
        parent = ResourceBudget(max_facts=7, max_rounds=3, token=token,
                                clock=clock)
        child = parent.child()
        assert child.timeout is None
        assert child.max_facts == 7
        assert child.max_rounds == 3
        assert child.token is token
        assert child._clock is clock

    def test_child_overrides(self):
        parent = ResourceBudget(max_facts=7)
        override = CancellationToken()
        child = parent.child(max_facts=1, max_rounds=9, token=override)
        assert child.max_facts == 1
        assert child.max_rounds == 9
        assert child.token is override

    def test_unlimited_parent_passes_through(self):
        child = ResourceBudget().child(timeout=3.0)
        assert child.timeout == pytest.approx(3.0)
        assert child.is_unlimited() is False


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0,
                                 clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_rejects_until_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is False
        assert breaker.rejections == 1
        clock.advance(10.0)
        assert breaker.allow() is True
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow() is True
        # Probe in flight: concurrent requests are rejected.
        assert breaker.allow() is False

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_retrips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert breaker.allow() is False

    def test_stalled_probe_readmits_after_cooldown(self):
        # A probe whose attempt ends without a recordable outcome
        # (budget abort, cancellation) must not wedge the breaker
        # half-open forever.
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow() is True   # probe admitted, never recorded
        assert breaker.allow() is False  # slot held within the cooldown
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow() is True   # fresh probe after cooldown
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_board_creates_and_aggregates(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown=5.0, clock=clock)
        board.get("naive").record_failure()
        board.get("magic")
        assert board.states() == {"naive": OPEN, "magic": CLOSED}
        assert board.trips == 1
        board.get("naive").allow()
        assert board.rejections == 1
        assert {name for name, _breaker in board} == {"naive", "magic"}


class TestRetryPolicy:
    def test_same_seed_same_request_identical_delays(self):
        policy = RetryPolicy(max_attempts=4, seed=42)
        assert list(policy.backoff(7)) == list(policy.backoff(7))

    def test_distinct_requests_distinct_jitter(self):
        policy = RetryPolicy(max_attempts=4, seed=42)
        assert list(policy.backoff(1)) != list(policy.backoff(2))

    def test_schedule_length_and_growth(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1,
                             multiplier=2.0, jitter=0.0, seed=0)
        delays = list(policy.backoff(0))
        assert delays == pytest.approx([0.1, 0.2])

    def test_single_attempt_means_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).backoff(0)) == []


class TestCacheContention:
    """Satellite: the LRU caches stay consistent under thread races."""

    THREADS = 8
    OPS = 300

    def _hammer(self, worker):
        failures = []

        def wrapped(index):
            try:
                worker(index)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=wrapped, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_answer_cache_counters_balance(self):
        cache = AnswerCache(capacity=16)

        def worker(index):
            for op in range(self.OPS):
                key = ("q", (op + index) % 24)
                if cache.get(key) is None:
                    cache.put(key, (None, frozenset([(op,)])))
                cache.assert_consistent()

        self._hammer(worker)
        cache.assert_consistent()
        assert cache.lookups == self.THREADS * self.OPS
        assert len(cache) <= 16

    def test_answer_cache_contention_with_injected_stalls(
            self, fault_injector):
        cache = AnswerCache(capacity=8)
        fault_injector.delay_sections(0.0005, every=7)

        def worker(index):
            for op in range(60):
                key = (op + index) % 12
                entry = cache.get(key)
                if entry is None:
                    cache.put(key, (None, frozenset()))

        with fault_injector:
            self._hammer(worker)
        cache.assert_consistent()
        assert fault_injector.sections_stalled > 0

    def test_counters_expose_atomic_cache_snapshots(self):
        db, _source = sg_forest(trees=2, fanout=2, depth=3)
        cache = AnswerCache(capacity=16)
        store = CountingTableStore(capacity=8)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db,
                                 cache=cache, counting_store=store)
        bindings = forest_bindings(trees=2, queries=4)
        service = QueryService(prepared, db, workers=2,
                               queue_capacity=8)
        try:
            for binding in bindings:
                service.run(binding, wait=60.0)
            counters = service.counters()
        finally:
            service.drain()
        for block, source in (("answer_cache", cache),
                              ("counting_store", store)):
            snap = counters[block]
            assert snap == source.stats()
            assert snap["hits"] + snap["misses"] == snap["lookups"]
        assert counters["answer_cache"]["lookups"] > 0

    def test_counting_store_counters_balance(self):
        store = CountingTableStore(capacity=8)
        epochs = (("up", 2, 0),)

        def worker(index):
            for op in range(self.OPS):
                key = ("src", (op + index) % 12)
                if store.get(key, epochs) is None:
                    store.put(key, epochs, {"table": op})
                store.assert_consistent()

        self._hammer(worker)
        store.assert_consistent()
        assert store.lookups == self.THREADS * self.OPS


class TestAdmissionControl:
    def test_queue_full_sheds_typed_and_fast(self):
        gate = threading.Event()
        fake = FakePrepared(gate=gate)
        service = QueryService(fake, tiny_db(), workers=1,
                               queue_capacity=2, snapshots=False)
        try:
            first = service.submit()
            assert fake.started.wait(5.0)  # worker holds request 1
            queued = [service.submit(), service.submit()]
            with pytest.raises(Overloaded) as excinfo:
                service.submit()
            assert excinfo.value.reason == "queue_full"
            assert isinstance(excinfo.value, ServiceError)
            gate.set()
            for future in [first] + queued:
                assert future.result(10.0).answers == frozenset()
        finally:
            gate.set()
            service.drain()
        counters = service.counters()
        assert counters["shed_overload"] == 1
        assert counters["admitted"] == 3
        assert counters["submitted"] == (
            counters["admitted"] + counters["shed_overload"]
            + counters["rejected_closed"]
        )
        assert counters["max_queue_depth"] <= 2

    def test_deadline_expired_in_queue_sheds_unevaluated(self):
        clock = FakeClock()
        gate = threading.Event()
        fake = FakePrepared(gate=gate)
        service = QueryService(fake, tiny_db(), workers=1,
                               queue_capacity=4, snapshots=False,
                               clock=clock)
        try:
            blocker = service.submit()
            assert fake.started.wait(5.0)
            calls_before = fake.calls
            doomed = service.submit(timeout=1.0)
            clock.advance(5.0)
            gate.set()
            assert blocker.result(10.0) is not None
            with pytest.raises(Overloaded) as excinfo:
                doomed.result(10.0)
            assert excinfo.value.reason == "expired"
            # Shed without evaluation: run never saw the request.
            assert fake.calls == calls_before
        finally:
            gate.set()
            service.drain()
        assert service.counters()["shed_expired"] == 1

    def test_default_timeout_applies(self):
        clock = FakeClock()
        gate = threading.Event()
        fake = FakePrepared(gate=gate)
        service = QueryService(fake, tiny_db(), workers=1,
                               queue_capacity=4, default_timeout=2.0,
                               snapshots=False, clock=clock)
        try:
            blocker = service.submit(timeout=100.0)
            assert fake.started.wait(5.0)
            doomed = service.submit()  # inherits default_timeout=2.0
            clock.advance(3.0)
            gate.set()
            blocker.result(10.0)
            with pytest.raises(Overloaded):
                doomed.result(10.0)
        finally:
            gate.set()
            service.drain()

    def test_submit_after_drain_raises_service_closed(self):
        fake = FakePrepared()
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False)
        service.drain()
        with pytest.raises(ServiceClosed):
            service.submit()
        assert service.counters()["rejected_closed"] == 1


class TestDeadlinePropagation:
    def test_attempt_budget_carries_remaining_deadline(self):
        clock = FakeClock()
        seen = []

        class Probe(FakePrepared):
            def run(self, constants, db=None, budget=None):
                seen.append(budget)
                return FakeResult()

        service = QueryService(Probe(), tiny_db(), workers=1,
                               queue_capacity=4, snapshots=False,
                               clock=clock)
        try:
            service.run(timeout=8.0, wait=10.0)
        finally:
            service.drain()
        (budget,) = seen
        assert budget.timeout == pytest.approx(8.0)
        assert budget.token is not None

    def test_caller_budget_caps_survive_derivation(self):
        parent = ResourceBudget(max_facts=5, max_rounds=2)
        seen = []

        class Probe(FakePrepared):
            def run(self, constants, db=None, budget=None):
                seen.append(budget)
                return FakeResult()

        service = QueryService(Probe(), tiny_db(), workers=1,
                               snapshots=False)
        try:
            service.run(budget=parent, wait=10.0)
        finally:
            service.drain()
        (budget,) = seen
        assert budget.max_facts == 5
        assert budget.max_rounds == 2
        assert budget is not parent  # fresh child per attempt


class TestRetries:
    def test_budget_abort_retries_with_seeded_backoff(self):
        sleeps = []
        fake = FakePrepared(outcomes=[
            BudgetExceededError("attempt 1"),
            BudgetExceededError("attempt 2"),
            (("a",),),
        ])
        retry = RetryPolicy(max_attempts=3, seed=11)
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False, retry=retry,
                               sleep=sleeps.append)
        try:
            result = service.run(wait=10.0)
        finally:
            service.drain()
        assert result.answers == frozenset({("a",)})
        assert result.extras["service"]["attempts"] == 3
        assert sleeps == list(retry.backoff(0))
        assert service.counters()["retried"] == 2

    def test_retries_exhausted_reraises_budget_error(self):
        fake = FakePrepared(outcomes=[BudgetExceededError("always")])
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False,
                               retry=RetryPolicy(max_attempts=2, seed=0),
                               sleep=lambda _s: None)
        try:
            with pytest.raises(BudgetExceededError):
                service.run(wait=10.0)
        finally:
            service.drain()
        counters = service.counters()
        assert counters["retried"] == 1
        assert counters["failed"] == 1
        assert fake.calls == 2

    def test_no_retry_past_request_deadline(self):
        clock = FakeClock()
        fake = FakePrepared(outcomes=[BudgetExceededError("slow")])
        retry = RetryPolicy(max_attempts=5, base_delay=10.0, seed=0)
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False, retry=retry,
                               clock=clock, sleep=lambda _s: None)
        try:
            with pytest.raises(BudgetExceededError):
                # Deadline 1s, first backoff delay ≥ 10s: no retry fits.
                service.run(timeout=1.0, wait=10.0)
        finally:
            service.drain()
        assert service.counters()["retried"] == 0
        assert fake.calls == 1

    @pytest.mark.parametrize("error_class", [FactBudgetExceeded,
                                             RoundBudgetExceeded])
    def test_deterministic_budget_aborts_fail_fast(self, error_class):
        # Fact/round caps are deterministic against the pinned snapshot:
        # retrying them burns a worker slot to fail identically.
        fake = FakePrepared(outcomes=[error_class("cap")])
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False,
                               retry=RetryPolicy(max_attempts=5, seed=0),
                               sleep=lambda _s: None)
        try:
            with pytest.raises(error_class):
                service.run(wait=10.0)
        finally:
            service.drain()
        assert service.counters()["retried"] == 0
        assert service.counters()["failed"] == 1
        assert fake.calls == 1

    def test_budget_aborts_never_trip_breakers(self):
        board = BreakerBoard(threshold=1, clock=FakeClock())
        fake = FakePrepared(outcomes=[BudgetExceededError("abort")])
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False, breakers=board,
                               retry=RetryPolicy(max_attempts=1))
        try:
            with pytest.raises(BudgetExceededError):
                service.run(wait=10.0)
        finally:
            service.drain()
        assert board.get(fake.method).state == CLOSED
        assert board.trips == 0


class TestBreakersAndFallback:
    def test_strategy_failures_trip_breaker_then_skip_to_fallback(self):
        db, _source = sg_forest(trees=2, fanout=2, depth=3)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        poison_forest(db, tree=1)
        poisoned = (forest_root(1),)
        baseline = run_strategy("naive", prepared.bind(poisoned),
                                db).answers
        board = BreakerBoard(threshold=2, cooldown=1e9)
        service = QueryService(prepared, db, workers=1,
                               queue_capacity=8, breakers=board)
        try:
            results = [service.run(poisoned, wait=60.0)
                       for _ in range(4)]
        finally:
            service.drain()
        assert all(r.answers == baseline for r in results)
        assert all(r.extras["service"]["fallback"] for r in results)
        assert board.get(prepared.method).state == OPEN
        counters = service.counters()
        assert counters["fallbacks"] == 4
        assert counters["completed"] == 4
        assert counters["breaker_trips"] >= 1
        # Once open, the primary strategy is skipped outright.
        assert counters["breaker_rejections"] >= 1

    def test_fallback_annotates_resilient_summary(self):
        db, _source = sg_forest(trees=1, fanout=2, depth=3)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        poison_forest(db, tree=0)
        service = QueryService(prepared, db, workers=1, queue_capacity=4)
        try:
            result = service.run((forest_root(0),), wait=60.0)
        finally:
            service.drain()
        summary = result.extras["service"]["resilient"]
        assert summary["succeeded"] is True
        assert summary["method"] == result.method
        assert summary["fallback_depth"] >= 1
        outcomes = [a["outcome"] for a in summary["attempts"]]
        assert outcomes[-1] == "ok"
        assert all(a["breaker"] is not None for a in summary["attempts"])

    def test_open_breaker_without_fallback_raises_typed(self):
        board = BreakerBoard(threshold=1, cooldown=1e9,
                             clock=FakeClock())
        board.get(FakePrepared.method).record_failure()
        fake = FakePrepared()
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False, breakers=board,
                               fallback=False)
        try:
            with pytest.raises(CircuitOpenError):
                service.run(wait=10.0)
        finally:
            service.drain()
        assert fake.calls == 0

    def test_strategy_error_without_fallback_propagates(self):
        fake = FakePrepared(outcomes=[NotApplicableError("nope")])
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False, fallback=False)
        try:
            with pytest.raises(NotApplicableError):
                service.run(wait=10.0)
        finally:
            service.drain()
        assert service.counters()["failed"] == 1


class TestResilientBreakers:
    """run_resilient's breaker/budget_factory seams, used standalone."""

    def test_open_breaker_skips_stage_with_zero_elapsed_record(self):
        db, _source = sg_forest(trees=1, fanout=2, depth=2)
        query = WORKLOADS["sg_forest"].query
        board = BreakerBoard(threshold=1, cooldown=1e9,
                             clock=FakeClock())
        board.get("pointer_counting").record_failure()
        report = run_resilient(query, db, breakers=board)
        assert report.succeeded
        assert report.method != "pointer_counting"
        skipped = report.attempts[0]
        assert skipped.error_class == "CircuitOpenError"
        assert skipped.elapsed == 0.0
        assert skipped.breaker_state == OPEN

    def test_real_failures_feed_breakers(self, sg_query, example5_db):
        board = BreakerBoard(threshold=1, cooldown=1e9,
                             clock=FakeClock())
        report = run_resilient(sg_query, example5_db, breakers=board)
        assert report.succeeded
        failed = [a.method for a in report.attempts
                  if a.failed and a.error_class != "CircuitOpenError"]
        for method in failed:
            assert board.get(method).state == OPEN
        assert board.get(report.method).state == CLOSED

    def test_budget_factory_overrides_policy_budget(self, sg_query,
                                                    sg_db):
        built = []

        def factory():
            budget = ResourceBudget(timeout=30.0)
            built.append(budget)
            return budget

        report = run_resilient(sg_query, sg_db,
                               FallbackPolicy(timeout=0.000001),
                               budget_factory=factory)
        # The generous factory budget wins over the starved policy one.
        assert report.succeeded
        assert len(built) == len(report.attempts)

    def test_summary_shape(self, sg_query, sg_db):
        summary = run_resilient(sg_query, sg_db).summary()
        assert summary["succeeded"] is True
        assert summary["fallback_depth"] == 0
        assert summary["budget_aborts"] == 0
        assert summary["total_elapsed"] >= 0.0
        (attempt,) = summary["attempts"]
        assert attempt["method"] == summary["method"]
        assert attempt["outcome"] == "ok"
        assert attempt["breaker"] is None


class TestAnswersIdentical:
    def test_concurrent_answers_match_single_threaded(self):
        trees, queries = 3, 18
        db, _source = sg_forest(trees=trees, fanout=2, depth=4)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        bindings = forest_bindings(trees=trees, queries=queries)
        single = [
            run_strategy(prepared.method, prepared.bind(binding),
                         db).answers
            for binding in bindings
        ]
        with QueryService(prepared, db, workers=4,
                          queue_capacity=queries) as service:
            futures = [service.submit(binding) for binding in bindings]
            served = [future.result(60.0).answers for future in futures]
        assert served == single
        counters = service.counters()
        assert counters["completed"] == queries
        assert counters["failed"] == 0

    def test_writer_between_requests_refreshes_generation(self):
        db, _source = sg_forest(trees=1, fanout=2, depth=3)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        binding = (forest_root(0),)
        service = QueryService(prepared, db, workers=1, queue_capacity=4)
        try:
            before = service.run(binding, wait=60.0)
            db.add_fact("flat", forest_root(0), "svc_new_peer")
            after = service.run(binding, wait=60.0)
        finally:
            service.drain()
        assert ("svc_new_peer",) not in before.answers
        assert ("svc_new_peer",) in after.answers
        counters = service.counters()
        assert counters["refreshes"] == 1
        # Distinct snapshot generations served the two requests.
        assert (before.extras["service"]["generation"]
                != after.extras["service"]["generation"])


class TestDrain:
    def test_drain_completes_queued_work(self):
        fake = FakePrepared(outcomes=[(("a",),)])
        service = QueryService(fake, tiny_db(), workers=2,
                               queue_capacity=8, snapshots=False)
        futures = [service.submit() for _ in range(6)]
        assert service.drain() is True
        for future in futures:
            assert future.result(0).answers == frozenset({("a",)})
        assert service.counters()["completed"] == 6

    def test_drain_is_idempotent(self):
        service = QueryService(FakePrepared(), tiny_db(), workers=1,
                               snapshots=False)
        assert service.drain() is True
        assert service.drain() is True

    def test_drain_cancels_stragglers_after_grace(self):
        fake = CancellableFake()
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False)
        future = service.submit()
        assert fake.started.wait(5.0)
        graceful = service.drain(grace=0.05)
        assert graceful is False
        with pytest.raises(EvaluationCancelled):
            future.result(10.0)
        assert service.counters()["cancelled"] == 1

    def test_future_cancel_stops_one_request(self):
        fake = CancellableFake()
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False)
        try:
            future = service.submit()
            assert fake.started.wait(5.0)
            future.cancel()
            with pytest.raises(EvaluationCancelled):
                future.result(10.0)
        finally:
            service.drain()

    def test_cancel_while_queued_skips_evaluation(self):
        # Regression: a request cancelled while still queued used to be
        # fully evaluated anyway.  The worker must notice the flipped
        # token before running, resolve with EvaluationCancelled, and
        # count the request as cancelled — not completed.
        gate = threading.Event()
        fake = FakePrepared(gate=gate)
        service = QueryService(fake, tiny_db(), workers=1,
                               queue_capacity=4, snapshots=False)
        try:
            blocker = service.submit()
            assert fake.started.wait(5.0)  # worker holds request 1
            calls_before = fake.calls
            doomed = service.submit()
            doomed.cancel()
            gate.set()
            assert blocker.result(10.0) is not None
            with pytest.raises(EvaluationCancelled):
                doomed.result(10.0)
            # Shed without evaluation: run never saw the request.
            assert fake.calls == calls_before
        finally:
            gate.set()
            service.drain()
        counters = service.counters()
        assert counters["cancelled"] == 1
        assert counters["completed"] == 1
        assert counters["admitted"] == (
            counters["completed"] + counters["failed"]
            + counters["cancelled"] + counters["shed_expired"]
        )

    def test_context_manager_drains(self):
        fake = FakePrepared()
        with QueryService(fake, tiny_db(), workers=1,
                          snapshots=False) as service:
            future = service.submit()
        assert future.done()
        with pytest.raises(ServiceClosed):
            service.submit()


class TestWorkerSurvival:
    def test_untyped_error_resolves_future_and_keeps_worker(self):
        # A non-ReproError escaping an attempt must not kill the worker
        # thread (which would shrink the pool and hang result() callers
        # forever): the future resolves with the raw error and the same
        # worker keeps serving.
        fake = FakePrepared(outcomes=[ValueError("boom"), (("a",),)])
        service = QueryService(fake, tiny_db(), workers=1,
                               snapshots=False)
        try:
            first = service.submit()
            with pytest.raises(ValueError):
                first.result(10.0)
            assert service.run(wait=10.0).answers == frozenset({("a",)})
        finally:
            service.drain()
        counters = service.counters()
        assert counters["failed"] == 1
        assert counters["completed"] == 1
        assert counters["admitted"] == (
            counters["completed"] + counters["failed"]
            + counters["cancelled"] + counters["shed_expired"]
        )

    def test_wrong_arity_constants_rejected_at_submit(self):
        # Malformed constants surface as ValueError in the submitter's
        # thread, before the request counts as submitted.
        db, _source = sg_forest(trees=1, fanout=2, depth=2)
        prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
        service = QueryService(prepared, db, workers=1)
        try:
            with pytest.raises(ValueError):
                service.submit(("a", "b", "c"))
        finally:
            service.drain()
        counters = service.counters()
        assert counters["submitted"] == 0
        assert counters["admitted"] == 0


class TestServiceUnderFaults:
    def test_counters_deterministic_across_seeded_runs(self):
        """Acceptance: same seed, same faults, same counter block."""

        def one_run():
            from repro.engine.faults import FaultInjector

            db, _source = sg_forest(trees=2, fanout=2, depth=3)
            prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
            poison_forest(db, tree=1)
            injector = FaultInjector(seed=5)
            injector.delay_sections(0.0002, every=3)
            bindings = forest_bindings(trees=2, queries=10)
            board = BreakerBoard(threshold=2, cooldown=1e9)
            with injector:
                service = QueryService(
                    prepared, db, workers=1, queue_capacity=16,
                    breakers=board,
                    retry=RetryPolicy(max_attempts=2, seed=3),
                )
                try:
                    for binding in bindings:
                        service.run(binding, wait=60.0)
                finally:
                    service.drain()
            return service.counters()

        assert one_run() == one_run()
