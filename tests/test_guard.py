"""Resource budgets, cancellation, and the round-boundary guard."""

import pytest

from repro import (
    CancellationToken,
    Database,
    EvalStats,
    ResourceBudget,
    parse_program,
    parse_query,
    run_strategy,
)
from repro.engine.seminaive import SemiNaiveEngine, evaluate_program
from repro.errors import (
    BudgetExceededError,
    CountingDivergenceError,
    DeadlineExceeded,
    EvaluationCancelled,
    EvaluationError,
    FactBudgetExceeded,
    RoundBudgetExceeded,
)
from repro.exec.strategies import STRATEGIES, _divergence_bound


class FakeClock:
    """Deterministic clock advancing a fixed step per reading."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        current = self.now
        self.now += self.step
        return current


CHAIN_QUERY_TEXT = """
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    ?- sg(a, Y).
"""


@pytest.fixture
def chain_query():
    return parse_query(CHAIN_QUERY_TEXT)


@pytest.fixture
def chain_db():
    facts = []
    depth = 24
    # A single flat fact at the bottom forces level-by-level
    # propagation: the fixpoint needs ~depth recursive rounds.
    for i in range(depth):
        facts.append(("up", ("x%d" % i, "x%d" % (i + 1))))
        facts.append(("down", ("y%d" % (i + 1), "y%d" % i)))
    facts.append(("flat", ("x%d" % depth, "y%d" % depth)))
    facts.append(("up", ("a", "x0")))
    facts.append(("down", ("y0", "b")))
    return Database.from_facts(facts)


class TestResourceBudget:
    def test_unlimited_never_raises(self):
        budget = ResourceBudget()
        assert budget.is_unlimited()
        for _ in range(100):
            budget.check(EvalStats())

    def test_deadline_with_fake_clock(self):
        clock = FakeClock(step=1.0)
        budget = ResourceBudget(timeout=2.5, clock=clock)
        budget.start()
        budget.check()  # t=1
        budget.check()  # t=2
        with pytest.raises(DeadlineExceeded) as info:
            budget.check()  # t=3 > 2.5
        assert info.value.elapsed is not None

    def test_fact_budget_carries_partial_stats(self):
        budget = ResourceBudget(max_facts=10)
        stats = EvalStats()
        stats.facts_derived = 11
        with pytest.raises(FactBudgetExceeded) as info:
            budget.check(stats)
        assert info.value.stats is stats
        assert info.value.stats.facts_derived == 11

    def test_round_budget(self):
        budget = ResourceBudget(max_rounds=3)
        budget.check()
        budget.check()
        budget.check()
        with pytest.raises(RoundBudgetExceeded):
            budget.check()

    def test_cancellation_token(self):
        token = CancellationToken()
        budget = ResourceBudget(token=token)
        budget.check()
        token.cancel()
        with pytest.raises(EvaluationCancelled):
            budget.check()

    def test_budget_errors_are_not_evaluation_errors(self):
        # The counting executors relabel EvaluationError as divergence;
        # budget errors must never travel that path.
        assert not issubclass(BudgetExceededError, EvaluationError)

    def test_remaining_and_expired(self):
        clock = FakeClock(step=0.0)
        budget = ResourceBudget(timeout=5.0, clock=clock)
        assert budget.remaining() == pytest.approx(5.0)
        assert not budget.expired()
        clock.now = 10.0
        assert budget.expired()

    def test_remaining_clamped_at_zero_after_deadline(self):
        # Callers feed remaining() into queue.get(timeout=...) and
        # child() timeouts; a negative value raises or means "no limit".
        clock = FakeClock(step=0.0)
        budget = ResourceBudget(timeout=5.0, clock=clock)
        budget.start()
        clock.now = 12.0
        assert budget.remaining() == 0.0
        child = budget.child()
        assert child.timeout == 0.0

    def test_remaining_without_timeout_is_none(self):
        assert ResourceBudget().remaining() is None

    def test_expired_matches_check_comparison(self):
        # expired() must agree with check(): strictly-greater, so at
        # the exact deadline instant neither path fires.
        clock = FakeClock(step=0.0)
        budget = ResourceBudget(timeout=5.0, clock=clock)
        budget.start()
        clock.now = 5.0
        assert not budget.expired()
        budget.check()  # must not raise either
        clock.now = 5.0001
        assert budget.expired()
        with pytest.raises(DeadlineExceeded):
            budget.check()

    def test_expired_starts_the_clock(self):
        # Probing a never-started budget must start its clock, exactly
        # as the first check() would — otherwise a budget with a
        # timeout reports "not expired" forever until someone calls
        # start() explicitly.
        clock = FakeClock(step=0.0)
        budget = ResourceBudget(timeout=5.0, clock=clock)
        assert not budget.expired()
        assert budget._started is not None
        clock.now = 10.0
        assert budget.expired()
        assert not ResourceBudget(clock=clock).expired()

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget(timeout=-1)
        with pytest.raises(ValueError):
            ResourceBudget(max_facts=-1)
        with pytest.raises(ValueError):
            ResourceBudget(max_rounds=-1)


class TestEngineBudgets:
    def test_seminaive_deadline_fires_within_one_round(self, chain_query,
                                                       chain_db):
        clock = FakeClock(step=0.0)
        budget = ResourceBudget(timeout=1.0, clock=clock)
        engine = SemiNaiveEngine(chain_query.program, chain_db,
                                 budget=budget)

        # Expire the clock mid-run: the very next round boundary must
        # abort, so the overshoot is bounded by one round.
        rounds_before_expiry = 2

        class TrippingClock:
            def __call__(self):
                if budget.rounds > rounds_before_expiry:
                    return 100.0
                return 0.0

        budget._clock = TrippingClock()
        budget.start()
        with pytest.raises(DeadlineExceeded):
            engine.run()
        assert budget.rounds == rounds_before_expiry + 1

    def test_fact_budget_aborts_naive(self, chain_query, chain_db):
        budget = ResourceBudget(max_facts=5)
        with pytest.raises(FactBudgetExceeded) as info:
            run_strategy("naive", chain_query, chain_db, budget=budget)
        # Partial stats show how far evaluation got before the abort.
        assert info.value.stats is not None
        assert info.value.stats.facts_derived > 5

    @pytest.mark.parametrize("method", sorted(STRATEGIES))
    def test_every_strategy_accepts_a_budget(self, method, chain_query,
                                             chain_db):
        result = run_strategy(
            method, chain_query, chain_db,
            budget=ResourceBudget(timeout=60.0, max_facts=10_000_000),
        )
        assert len(result.answers) > 0

    @pytest.mark.parametrize(
        "method",
        ["naive", "magic", "qsq", "pointer_counting", "cyclic_counting",
         "magic_counting"],
    )
    def test_cancellation_stops_every_engine_family(self, method,
                                                    chain_query, chain_db):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(EvaluationCancelled):
            run_strategy(method, chain_query, chain_db,
                         budget=ResourceBudget(token=token))


class TestIterationCap:
    def test_cap_checked_before_round(self):
        # A chain needing ~20 rounds, capped at 5: the engine must do
        # exactly 5 rounds (initial naive round included), not 6.
        facts = " ".join(
            "arc(n%d, n%d)." % (i, i + 1) for i in range(20)
        )
        program = parse_program("""
            path(X, Y) :- arc(X, Y).
            path(X, Y) :- arc(X, Z), path(Z, Y).
            %s
        """ % facts)
        stats = EvalStats()
        with pytest.raises(EvaluationError):
            evaluate_program(program, Database(), stats=stats,
                             max_iterations=5)
        assert stats.iterations == 5

    def test_cap_allows_exact_convergence(self):
        # Converging in exactly N rounds under max_iterations=N is fine.
        program = parse_program("""
            path(X, Y) :- arc(X, Y).
            path(X, Y) :- arc(X, Z), path(Z, Y).
            arc(a, b). arc(b, c).
        """)
        stats = EvalStats()
        derived = evaluate_program(program, Database(), stats=stats)
        converged_in = stats.iterations
        again = evaluate_program(program, Database(),
                                 max_iterations=converged_in)
        assert again[("path", 2)].tuples == derived[("path", 2)].tuples


class TestDivergenceGuard:
    """Satellite: divergence must fail typed and fast, never hang."""

    @pytest.fixture
    def cyclic_db(self, example5_db):
        return example5_db

    def test_classical_counting_diverges_typed(self, sg_query, cyclic_db):
        with pytest.raises(CountingDivergenceError):
            run_strategy("classical_counting", sg_query, cyclic_db)

    def test_classical_counting_diverges_under_deadline(self, sg_query,
                                                        cyclic_db):
        # A generous deadline must not mask the divergence check: the
        # iteration bound fires first and keeps the typed error.
        with pytest.raises(CountingDivergenceError):
            run_strategy("classical_counting", sg_query, cyclic_db,
                         budget=ResourceBudget(timeout=60.0))

    def test_encoded_counting_diverges_typed(self, sg_query, cyclic_db):
        # The second _divergence_bound call site.
        with pytest.raises(CountingDivergenceError):
            run_strategy("encoded_counting", sg_query, cyclic_db)

    def test_divergence_bound_scales_with_constants(self):
        small = Database.from_text("up(a, b).")
        large = Database.from_text(
            " ".join("up(n%d, n%d)." % (i, i + 1) for i in range(10))
        )
        assert _divergence_bound(large) > _divergence_bound(small)
        assert _divergence_bound(small) == len(small.constants()) + 3

    def test_tight_budget_beats_divergence_bound(self, sg_query,
                                                 cyclic_db):
        # A fact budget tighter than the divergence bound surfaces as a
        # budget error, not divergence — the caller's limit fired first.
        with pytest.raises(FactBudgetExceeded):
            run_strategy("classical_counting", sg_query, cyclic_db,
                         budget=ResourceBudget(max_facts=2))
