"""The public API surface promised by docs/api.md must exist."""

import importlib

import pytest

SURFACE = {
    "repro": [
        "parse_program", "parse_query", "parse_atom",
        "Program", "Rule", "Query",
        "Atom", "Negation", "Comparison",
        "Variable", "Constant", "Compound",
        "format_program", "format_query", "format_rule",
        "Database", "EvalStats", "evaluate", "evaluate_query",
        "QueryResult",
        "adorn_query", "magic_rewrite", "classical_counting_rewrite",
        "extended_counting_rewrite", "reduce_rewriting", "optimize",
        "run_strategy", "STRATEGIES", "ExecutionResult",
        "OptimizationPlan", "errors",
    ],
    "repro.datalog": [
        "cons", "make_list", "make_tuple", "unify", "substitute",
        "resolve", "check_rule_safety", "check_program_safety",
        "is_safe", "ProgramAnalysis", "pprint",
    ],
    "repro.datalog.validation": [
        "validate_query", "ValidationReport", "MethodVerdict",
    ],
    "repro.engine": [
        "Database", "Relation", "SemiNaiveEngine", "evaluate_program",
        "evaluate_query", "EvalStats", "DerivationTrace",
        "reorder_body", "WILDCARD",
    ],
    "repro.rewriting": [
        "adorn_query", "canonicalize_clique", "magic_rewrite",
        "supplementary_magic_rewrite", "classical_counting_rewrite",
        "encoded_counting_rewrite", "extended_counting_rewrite",
        "reduce_rewriting", "cyclic_counting_program_text",
        "rule_shape", "is_mixed_linear", "is_right_linear_program",
        "is_left_linear_program", "optimize", "choose_method",
    ],
    "repro.exec": [
        "run_strategy", "STRATEGIES", "CountingEngine",
        "MagicCountingEngine", "recurring_nodes", "QSQEngine",
        "qsq_evaluate", "wavefront_counting_table",
        "tables_equivalent",
    ],
    "repro.graph": [
        "classify_arcs", "node_classes", "is_tree", "is_acyclic",
        "elementary_cycles", "EdgeSpec", "LeftGraph", "QueryGraph",
        "left_classification",
    ],
    "repro.graph.properties": ["strongly_connected_components"],
    "repro.data": ["WORKLOADS", "get_workload", "generators"],
    "repro.bench": [
        "run_matrix", "sweep", "matrix_table", "format_table",
        "speedup", "summarize",
    ],
    "repro.errors": [
        "ReproError", "ParseError", "SafetyError", "AnalysisError",
        "NotStratifiedError", "RewritingError", "NotApplicableError",
        "CountingDivergenceError", "EvaluationError",
    ],
}

EXPECTED_STRATEGIES = {
    "naive", "magic", "sup_magic", "qsq", "classical_counting",
    "encoded_counting", "extended_counting", "reduced_counting",
    "pointer_counting", "cyclic_counting", "magic_counting",
    "parallel",
}


@pytest.mark.parametrize(
    "module,name",
    [(m, n) for m, names in sorted(SURFACE.items()) for n in names],
)
def test_symbol_exists(module, name):
    mod = importlib.import_module(module)
    assert hasattr(mod, name), "%s.%s" % (module, name)


def test_strategy_registry_complete():
    from repro.exec import STRATEGIES

    assert set(STRATEGIES) == EXPECTED_STRATEGIES


def test_api_doc_mentions_every_strategy():
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "docs", "api.md")) as handle:
        text = handle.read()
    for name in EXPECTED_STRATEGIES:
        assert name in text, name


def test_all_lists_are_accurate():
    for module in ("repro", "repro.datalog", "repro.engine",
                   "repro.rewriting", "repro.exec", "repro.graph",
                   "repro.data", "repro.bench"):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", ()):
            assert hasattr(mod, name), "%s.%s" % (module, name)
