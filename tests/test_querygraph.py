"""Query graph construction tests (Section 2's G_L, G_R, G_E)."""

import pytest

from repro.datalog import parse_program
from repro.engine import Database
from repro.graph.querygraph import (
    EdgeSpec,
    LeftGraph,
    QueryGraph,
    enumerate_arcs,
    left_classification,
)


def spec_from_rule(text, source_vars, target_vars, shared_vars=(),
                   label="r1"):
    rule = parse_program(text).rules[0]
    return EdgeSpec(label, rule.body, source_vars, target_vars,
                    shared_vars)


@pytest.fixture
def up_spec():
    return spec_from_rule(
        "edge(X, X1) :- up(X, X1).", ("X",), ("X1",)
    )


@pytest.fixture
def db():
    return Database.from_text("""
        up(a, b). up(b, c). up(b, d). up(x, y).
        down(m, n).
        flat(c, m).
    """)


class TestLeftGraph:
    def test_successors(self, up_spec, db):
        graph = LeftGraph(db, [up_spec])
        succ = dict()
        for target, label in graph.successors(("b",)):
            succ[target] = label
        assert set(succ) == {("c",), ("d",)}
        assert succ[("c",)] == ("r1", ())

    def test_no_successors(self, up_spec, db):
        graph = LeftGraph(db, [up_spec])
        assert graph.successors(("zzz",)) == []

    def test_shared_values_on_labels(self, db):
        db.add_fact("up3", "a", "b", 7)
        spec = spec_from_rule(
            "edge(X, X1, W) :- up3(X, X1, W).",
            ("X",), ("X1",), ("W",),
        )
        graph = LeftGraph(db, [spec])
        [(target, (label, shared))] = graph.successors(("a",))
        assert target == ("b",)
        assert shared == (7,)

    def test_multi_literal_left_part(self, db):
        db.add_fact("color", "b", "blue")
        spec = spec_from_rule(
            "edge(X, X1) :- up(X, X1), color(X1, blue).",
            ("X",), ("X1",),
        )
        graph = LeftGraph(db, [spec])
        targets = {t for t, _l in graph.successors(("a",))}
        assert targets == {("b",)}

    def test_classification_restricted_to_reachable(self, up_spec, db):
        classification = left_classification(db, [up_spec], ("a",))
        nodes = {values[0] for values in classification.nodes}
        assert nodes == {"a", "b", "c", "d"}  # x, y unreachable


class TestEnumerateArcs:
    def test_full_enumeration(self, up_spec, db):
        arcs = enumerate_arcs(db, up_spec)
        assert len(arcs) == 4  # includes the x -> y arc

    def test_labels(self, db):
        spec = spec_from_rule(
            "e(Y1, Y) :- down(Y1, Y).", ("Y1",), ("Y",), label="rr"
        )
        [arc] = enumerate_arcs(db, spec)
        assert arc.source == ("m",)
        assert arc.target == ("n",)
        assert arc.label == ("rr", ())


class TestQueryGraph:
    def test_build(self, up_spec, db):
        right = spec_from_rule(
            "e(Y1, Y) :- down(Y1, Y).", ("Y1",), ("Y",)
        )
        exit_spec = spec_from_rule(
            "e(X, Y) :- flat(X, Y).", ("X",), ("Y",)
        )
        graph = QueryGraph.build(
            db, [up_spec], [right], [exit_spec], ("a",)
        )
        assert len(graph.left_arcs) == 3  # reachable from a only
        assert len(graph.right_arcs) == 1
        assert len(graph.exit_arcs) == 1
        assert "QueryGraph" in repr(graph)
