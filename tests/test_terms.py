"""Unit tests for the term layer."""

import pytest

from repro.datalog.terms import (
    NIL,
    Compound,
    Constant,
    Variable,
    cons,
    eval_arith,
    ground_value,
    is_arith,
    make_list,
    make_tuple,
)
from repro.errors import EvaluationError


class TestVariable:
    def test_not_ground(self):
        assert not Variable("X").is_ground()

    def test_variables(self):
        assert Variable("X").variables() == {"X"}

    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_distinct_from_constant(self):
        assert Variable("X") != Constant("X")


class TestConstant:
    def test_ground(self):
        assert Constant("a").is_ground()

    def test_no_variables(self):
        assert Constant("a").variables() == set()

    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)

    def test_tuple_values(self):
        assert Constant(("a", "b")).value == ("a", "b")

    def test_nil_is_empty_tuple(self):
        assert NIL.value == ()


class TestCompound:
    def test_groundness(self):
        assert Compound("+", (Constant(1), Constant(2))).is_ground()
        assert not Compound("+", (Variable("I"), Constant(1))).is_ground()

    def test_variables_collected(self):
        term = Compound("f", (Variable("X"), Compound("g", (Variable("Y"),))))
        assert term.variables() == {"X", "Y"}

    def test_equality_structural(self):
        a = Compound("f", (Constant(1),))
        b = Compound("f", (Constant(1),))
        assert a == b
        assert a != Compound("g", (Constant(1),))


class TestLists:
    def test_make_list_ground(self):
        term = make_list([Constant("a"), Constant("b")])
        assert ground_value(term) == ("a", "b")

    def test_make_list_empty(self):
        assert ground_value(make_list([])) == ()

    def test_open_tail(self):
        term = make_list([Constant("a")], tail=Variable("L"))
        assert not term.is_ground()
        assert term.variables() == {"L"}

    def test_cons_decomposition_shape(self):
        cell = cons(Constant("h"), NIL)
        assert ground_value(cell) == ("h",)

    def test_nested_lists(self):
        inner = make_list([Constant(1), Constant(2)])
        outer = make_list([inner, Constant(3)])
        assert ground_value(outer) == ((1, 2), 3)

    def test_bad_tail_raises(self):
        cell = cons(Constant("h"), Constant("not-a-list"))
        with pytest.raises(EvaluationError):
            ground_value(cell)


class TestTuples:
    def test_make_tuple(self):
        term = make_tuple([Constant("r1"), make_list([Constant(5)])])
        assert ground_value(term) == ("r1", (5,))

    def test_empty_tuple(self):
        assert ground_value(make_tuple([])) == ()


class TestArithmetic:
    def test_is_arith(self):
        assert is_arith(Compound("+", (Constant(1), Constant(2))))
        assert not is_arith(Compound("f", (Constant(1),)))
        assert not is_arith(Constant(1))

    @pytest.mark.parametrize(
        "op,values,expected",
        [
            ("+", [2, 3], 5),
            ("-", [5, 3], 2),
            ("*", [4, 3], 12),
            ("//", [7, 2], 3),
            ("min", [4, 9], 4),
            ("max", [4, 9], 9),
        ],
    )
    def test_operators(self, op, values, expected):
        assert eval_arith(op, values) == expected

    def test_fold_on_ground_value(self):
        term = Compound("+", (Constant(1), Compound("*", (Constant(2),
                                                          Constant(3)))))
        assert ground_value(term) == 7

    def test_non_numeric_raises(self):
        with pytest.raises(EvaluationError):
            eval_arith("+", ["a", 1])

    def test_unknown_functor_raises(self):
        with pytest.raises(EvaluationError):
            eval_arith("?", [1, 2])


class TestGroundValue:
    def test_variable_raises(self):
        with pytest.raises(EvaluationError):
            ground_value(Variable("X"))

    def test_unknown_functor_raises(self):
        with pytest.raises(EvaluationError):
            ground_value(Compound("weird", (Constant(1),)))
