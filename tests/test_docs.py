"""Documentation regression: the tutorial's printed programs must stay
exactly what the docs claim, and the top-level docs must exist."""

import os

from repro import (
    Database,
    classical_counting_rewrite,
    evaluate,
    extended_counting_rewrite,
    magic_rewrite,
    optimize,
    parse_query,
    reduce_rewriting,
)
from repro.datalog import format_query

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PEER_QUERY = parse_query("""
    peer(X, Y) :- flat(X, Y).
    peer(X, Y) :- up(X, X1), peer(X1, Y1), down(Y1, Y).
    ?- peer(ann, Y).
""")

PEER_DB_TEXT = """
    up(ann, bea).  up(bea, cleo).
    flat(cleo, kai). flat(bea, lou).
    down(kai, mia). down(mia, noa). down(lou, pat).
"""


class TestTutorialSnippets:
    def test_step1_answers(self):
        db = Database.from_text(PEER_DB_TEXT)
        assert sorted(evaluate(PEER_QUERY, db).answers) == [
            ("noa",), ("pat",)
        ]

    def test_step2_magic_program(self):
        text = format_query(magic_rewrite(PEER_QUERY).query)
        assert text == (
            "m_peer__bf(ann).\n"
            "m_peer__bf(X1) :- m_peer__bf(X), up(X, X1).\n"
            "peer__bf(X, Y) :- m_peer__bf(X), flat(X, Y).\n"
            "peer__bf(X, Y) :- m_peer__bf(X), up(X, X1), "
            "peer__bf(X1, Y1), down(Y1, Y).\n"
            "?- peer__bf(ann, Y)."
        )

    def test_step3_classical_program(self):
        text = format_query(classical_counting_rewrite(PEER_QUERY).query)
        assert "c_peer__bf(ann, 0)." in text
        assert "CNT_J is CNT_I + 1" in text
        assert "CNT_I is CNT_J - 1, CNT_I >= 0" in text
        assert text.endswith("?- peer__bf(Y, 0).")

    def test_step4_extended_program(self):
        text = format_query(
            extended_counting_rewrite(PEER_QUERY).query, show_labels=True
        )
        assert "c_peer__bf(ann, [])." in text
        assert "[(r1, []) | CNT_PATH]" in text
        assert text.endswith("?- peer__bf(Y, []).")

    def test_step5_optimizer_switch(self):
        db = Database.from_text(PEER_DB_TEXT)
        assert optimize(PEER_QUERY, db).method == "pointer_counting"
        cyclic = db.copy()
        cyclic.add_fact("up", "cleo", "ann")
        assert optimize(PEER_QUERY, cyclic).method == "cyclic_counting"

    def test_step6_reduced_program(self):
        mixed = parse_query("""
            p(X, Y) :- flat(X, Y).
            p(X, Y) :- up(X, X1), p(X1, Y).
            p(X, Y) :- p(X, Y1), down(Y1, Y).
            ?- p(a, Y).
        """)
        text = format_query(
            reduce_rewriting(extended_counting_rewrite(mixed)).query
        )
        assert text == (
            "c_p__bf(a).\n"
            "c_p__bf(X1) :- c_p__bf(X), up(X, X1).\n"
            "p__bf(Y) :- c_p__bf(X), flat(X, Y).\n"
            "p__bf(Y) :- p__bf(Y1), down(Y1, Y).\n"
            "?- p__bf(Y)."
        )


class TestDocFilesPresent:
    def test_required_documents(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     os.path.join("docs", "tutorial.md"),
                     os.path.join("docs", "paper_map.md")):
            path = os.path.join(ROOT, name)
            assert os.path.exists(path), name
            with open(path) as handle:
                assert len(handle.read()) > 500, name

    def test_experiments_cover_all_bench_modules(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        with open(os.path.join(ROOT, "EXPERIMENTS.md")) as handle:
            experiments = handle.read()
        for name in os.listdir(bench_dir):
            if name.startswith("bench_e") and name.endswith(".py"):
                assert name in experiments, name

    def test_design_lists_every_experiment(self):
        with open(os.path.join(ROOT, "DESIGN.md")) as handle:
            design = handle.read()
        for exp in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                    "E9", "E10", "A1", "A2"):
            assert "| %s " % exp in design, exp
