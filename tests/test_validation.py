"""Validation report tests (datalog.validation + the check command)."""

import io

import pytest

from repro import parse_query
from repro.cli import main
from repro.datalog.validation import validate_query


class TestValidateQuery:
    def test_clean_linear_query(self, sg_query):
        report = validate_query(sg_query)
        assert report.ok()
        assert report.goal_is_recursive
        assert report.is_linear
        assert report.clique_predicates == (("sg__bf", 2),)
        assert report.verdict_for("classical_counting").applicable
        assert report.verdict_for("cyclic_counting").applicable
        assert report.verdict_for("magic").applicable

    def test_unsafe_program(self):
        query = parse_query("p(X, Y) :- q(X). ?- p(a, Y).")
        report = validate_query(query)
        assert not report.ok()
        assert report.safety_errors
        assert not report.verdict_for("naive").applicable
        assert "UNSAFE" in report.render()

    def test_not_stratified(self):
        query = parse_query("""
            win(X) :- move(X, Y), not win(Y).
            ?- win(a).
        """)
        report = validate_query(query)
        assert not report.ok()
        assert report.stratification_error
        assert "NOT STRATIFIED" in report.render()

    def test_nonlinear_rules_out_counting(self):
        query = parse_query("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            ?- tc(a, Y).
        """)
        report = validate_query(query)
        assert report.ok()
        assert not report.is_linear
        verdict = report.verdict_for("extended_counting")
        assert not verdict.applicable
        # The square shape is flagged as linearizable.
        assert "linearization" in verdict.reason
        assert report.verdict_for("magic").applicable

    def test_non_square_nonlinear_gets_no_linearize_hint(self):
        query = parse_query("""
            p(X, Y) :- base(X, Y).
            p(X, Y) :- p(X, Z), p(Y, Z).
            ?- p(a, Y).
        """)
        report = validate_query(query)
        verdict = report.verdict_for("extended_counting")
        assert not verdict.applicable
        assert "linearization" not in verdict.reason

    def test_multi_rule_rules_out_classical_only(self, example3_query):
        report = validate_query(example3_query)
        assert not report.verdict_for("classical_counting").applicable
        assert report.verdict_for("extended_counting").applicable

    def test_mixed_linear_reduction_verdict(self, example6_query):
        report = validate_query(example6_query)
        verdict = report.verdict_for("reduced_counting")
        assert verdict.applicable
        assert "disappears" in verdict.reason
        shapes = set(report.rule_shapes.values())
        assert shapes == {"left-linear", "right-linear"}

    def test_non_recursive_goal(self):
        query = parse_query("""
            gp(X, Z) :- par(X, Y), par(Y, Z).
            ?- gp(a, Z).
        """)
        report = validate_query(query)
        assert report.ok()
        assert not report.goal_is_recursive
        assert not report.verdict_for("cyclic_counting").applicable

    def test_type_checked(self):
        with pytest.raises(TypeError):
            validate_query("?- p(a).")

    def test_render_mentions_shapes(self, example6_query):
        text = validate_query(example6_query).render()
        assert "right-linear" in text
        assert "left-linear" in text


class TestCheckCommand:
    def run_check(self, tmp_path, text):
        path = tmp_path / "q.dl"
        path.write_text(text)
        out = io.StringIO()
        code = main(["check", str(path)], out=out)
        return code, out.getvalue()

    def test_ok_query(self, tmp_path):
        code, text = self.run_check(tmp_path, """
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
            ?- sg(a, Y).
        """)
        assert code == 0
        assert "safe and stratified" in text
        assert "classical_counting" in text

    def test_unsafe_query_nonzero_exit(self, tmp_path):
        code, text = self.run_check(tmp_path, """
            p(X, Y) :- q(X).
            ?- p(a, Y).
        """)
        assert code == 1
        assert "UNSAFE" in text
