"""Deterministic fault injection: budgets, isolation, typed failures."""

import pytest

from repro import Database, ResourceBudget, run_strategy
from repro.durability import DurableDatabase, WalReader, recover
from repro.engine.faults import (
    FaultInjector,
    InjectedFault,
    SimulatedCrash,
    active_injector,
)
from repro.engine.relation import Relation
from repro.errors import (
    DeadlineExceeded,
    EvaluationError,
    ReproError,
    WalError,
)


class TestInjectorLifecycle:
    def test_install_uninstall_restores_patches(self, fault_injector):
        original_lookup = Relation.lookup
        original_copy = Relation.copy
        fault_injector.delay_probes(0.0).corrupt_copies()
        with fault_injector:
            assert Relation.lookup is not original_lookup
            assert Relation.copy is not original_copy
            assert active_injector() is fault_injector
        assert Relation.lookup is original_lookup
        assert Relation.copy is original_copy
        assert active_injector() is None

    def test_single_injector_at_a_time(self, fault_injector):
        with fault_injector:
            with pytest.raises(RuntimeError):
                FaultInjector().install()

    def test_uninstall_is_idempotent(self, fault_injector):
        fault_injector.install()
        fault_injector.uninstall()
        fault_injector.uninstall()
        assert active_injector() is None

    def test_plan_validation(self, fault_injector):
        with pytest.raises(ValueError):
            fault_injector.raise_mid_fixpoint(after=0)
        with pytest.raises(ValueError):
            fault_injector.delay_probes(0.1, every=0)
        with pytest.raises(ValueError):
            fault_injector.corrupt_copies(every=0)


class TestMidFixpointRaise:
    def test_raises_typed_repro_error(self, sg_query, sg_db,
                                      fault_injector):
        fault_injector.raise_mid_fixpoint(after=1)
        with fault_injector:
            with pytest.raises(InjectedFault) as info:
                run_strategy("naive", sg_query, sg_db)
        # Injected failures travel the normal typed channel.
        assert isinstance(info.value, EvaluationError)
        assert isinstance(info.value, ReproError)
        assert fault_injector.faults_raised == 1

    def test_fires_in_dedicated_evaluator(self, sg_query, sg_db,
                                          fault_injector):
        fault_injector.raise_mid_fixpoint(after=1, points=("unwind",))
        with fault_injector:
            with pytest.raises(InjectedFault):
                run_strategy("pointer_counting", sg_query, sg_db)

    def test_one_shot(self, sg_query, sg_db, fault_injector):
        fault_injector.raise_mid_fixpoint(after=1)
        with fault_injector:
            with pytest.raises(InjectedFault):
                run_strategy("naive", sg_query, sg_db)
            # The plan is consumed; the next run completes.
            result = run_strategy("naive", sg_query, sg_db)
        assert len(result.answers) > 0

    def test_later_checkpoint(self, sg_query, fault_injector):
        # A deep chain: enough fixpoint rounds to reach checkpoint 3.
        facts = [("flat", ("x8", "y8"))]
        for i in range(8):
            facts.append(("up", ("x%d" % i, "x%d" % (i + 1))))
            facts.append(("down", ("y%d" % (i + 1), "y%d" % i)))
        deep_db = Database.from_facts(facts)
        fault_injector.raise_mid_fixpoint(after=3)
        with fault_injector:
            with pytest.raises(InjectedFault) as info:
                run_strategy("naive", sg_query, deep_db)
        assert "checkpoint 3" in str(info.value)


class TestProbeDelay:
    def test_delay_triggers_deadline(self, sg_query, sg_db,
                                     fault_injector):
        # Fake sleeper feeding a fake clock: every probe "costs" 1 s
        # against a 3 s deadline, so the budget fires deterministically
        # and within one round of the overrun.
        elapsed = [0.0]
        fault_injector._sleep = lambda s: elapsed.__setitem__(
            0, elapsed[0] + s
        )
        fault_injector.delay_probes(1.0, every=1)
        budget = ResourceBudget(timeout=3.0, clock=lambda: elapsed[0])
        with fault_injector:
            with pytest.raises(DeadlineExceeded):
                run_strategy("naive", sg_query, sg_db, budget=budget)
        assert fault_injector.probes_delayed >= 3

    def test_delay_every_k(self, sg_query, sg_db, fault_injector):
        calls = []
        fault_injector._sleep = calls.append
        fault_injector.delay_probes(0.25, every=4)
        with fault_injector:
            run_strategy("naive", sg_query, sg_db)
        assert calls == [0.25] * len(calls)
        assert fault_injector.probes_delayed == len(calls)
        assert fault_injector.probes_delayed > 0


class TestCopyCorruption:
    def test_corrupts_clone_not_source(self, fault_injector):
        relation = Relation("up", 2)
        relation.add(("a", "b"))
        relation.add(("b", "c"))
        before = set(relation.tuples)
        fault_injector.corrupt_copies(every=1)
        with fault_injector:
            clone = relation.copy()
        assert relation.tuples == before
        assert clone.tuples != before
        assert fault_injector.copies_corrupted == 1
        bogus = [row for row in clone.tuples
                 if any("__corrupt" in str(v) for v in row)]
        assert len(bogus) == 1

    def test_seed_determinism(self):
        def corrupt_once(seed):
            relation = Relation("up", 2)
            for i in range(10):
                relation.add(("n%d" % i, "n%d" % (i + 1)))
            injector = FaultInjector(seed=seed).corrupt_copies(every=1)
            with injector:
                return frozenset(relation.copy().tuples)

        assert corrupt_once(7) == corrupt_once(7)
        assert corrupt_once(7) != corrupt_once(8)

    def test_database_copy_goes_through_injector(self, sg_db,
                                                 fault_injector):
        fault_injector.corrupt_copies(every=1)
        before = sg_db.to_text()
        with fault_injector:
            clone = sg_db.copy()
        assert sg_db.to_text() == before
        assert clone.to_text() != before
        assert fault_injector.copies_corrupted > 0


def _crash_two_batches(directory, injector, fsync="always"):
    """Open a durable db, append two batches, crash on the armed plan.

    Returns the (now failed) database.  The first batch brings ``p/2``
    to epoch 2; the second (``q/1``) is where every plan in these
    tests is armed to strike.
    """
    db = DurableDatabase(directory, fsync=fsync)
    with injector:
        with pytest.raises(SimulatedCrash):
            db.add_facts([("p", ("a", "b")), ("p", ("b", "c"))])
            db.add_facts([("q", ("x",))])
    return db


class TestWalCrashPlans:
    def test_torn_write_loses_only_torn_record(self, tmp_path,
                                               fault_injector):
        fault_injector.torn_wal_write(after=2)
        db = _crash_two_batches(str(tmp_path / "wal"), fault_injector)
        # The batch that crashed mid-log never reached memory either:
        # the write-ahead order makes the batch all-or-nothing.
        assert ("q", 1) not in db.keys()
        recovered, report = recover(str(tmp_path / "wal"), fsync="off")
        assert report.wal_records == 1
        assert "torn" in (report.truncated_tail or "")
        assert recovered.epoch_of(("p", 2)) == 2
        assert ("q", 1) not in recovered.keys()
        recovered.close()
        assert fault_injector.wal_torn == 1

    def test_torn_write_keep_zero_leaves_clean_tail(self, tmp_path,
                                                    fault_injector):
        fault_injector.torn_wal_write(after=2, keep=0)
        _crash_two_batches(str(tmp_path / "wal"), fault_injector)
        # Zero bytes of the record made it out: the log is simply one
        # record shorter, with nothing to truncate.
        recovered, report = recover(str(tmp_path / "wal"), fsync="off")
        assert report.wal_records == 1
        assert report.truncated_tail is None
        recovered.close()

    def test_corrupt_record_detected_by_checksum(self, tmp_path,
                                                 fault_injector):
        fault_injector.corrupt_wal_record(after=2)
        _crash_two_batches(str(tmp_path / "wal"), fault_injector)
        recovered, report = recover(str(tmp_path / "wal"), fsync="off")
        assert report.wal_records == 1
        assert "checksum mismatch" in (report.truncated_tail or "")
        assert recovered.epoch_of(("p", 2)) == 2
        recovered.close()
        assert fault_injector.wal_corrupted == 1

    def test_crash_before_fsync_may_keep_the_bytes(self, tmp_path,
                                                   fault_injector):
        # The record's bytes reached the file; only the fsync was
        # skipped.  Whether they survive a *real* crash is up to the
        # kernel — recovery of an intact file legitimately sees them.
        # What the plan guarantees is the crash itself and the skipped
        # fsync, not the loss.
        fault_injector.crash_before_fsync(after=2)
        _crash_two_batches(str(tmp_path / "wal"), fault_injector)
        assert fault_injector.wal_fsyncs_skipped == 1
        recovered, report = recover(str(tmp_path / "wal"), fsync="off")
        assert report.wal_records == 2
        assert report.truncated_tail is None
        recovered.close()

    def test_failed_wal_refuses_further_appends(self, tmp_path,
                                                fault_injector):
        fault_injector.torn_wal_write(after=1)
        db = DurableDatabase(str(tmp_path / "wal"), fsync="always")
        with fault_injector:
            with pytest.raises(SimulatedCrash):
                db.add_facts([("p", ("a", "b"))])
            # The "dead" process's log stays dead until reopened.
            with pytest.raises(WalError):
                db.add_facts([("p", ("b", "c"))])

    def test_simulated_crash_is_not_an_evaluation_error(self):
        # Nothing upstream may classify a crashed process as a failed
        # *evaluation* and retry through it.
        assert issubclass(SimulatedCrash, ReproError)
        assert not issubclass(SimulatedCrash, EvaluationError)

    def test_same_seed_same_damage(self, tmp_path):
        def crashed_file(seed, name):
            directory = str(tmp_path / name)
            injector = FaultInjector(seed=seed).torn_wal_write(after=2)
            db = DurableDatabase(directory, fsync="always")
            with injector:
                with pytest.raises(SimulatedCrash):
                    db.add_facts([("p", ("a", "b")), ("p", ("b", "c"))])
                    db.add_facts([("q", ("x%d" % i,)) for i in range(8)])
            path = str(tmp_path / name / "wal.log")
            with open(path, "rb") as handle:
                data = handle.read()
            reader = WalReader(path)
            # The lineage token in the header is random per log; the
            # *records and damage* past it must be byte-identical.
            header_len = len(b"REPROWL1") + 24 + 1
            return data[header_len:], len(reader.records), reader.tail_error

        first = crashed_file(7, "a")
        second = crashed_file(7, "b")
        assert first == second  # byte-identical damage, same verdict

    def test_counters_only_advance_while_installed(self, tmp_path,
                                                   fault_injector):
        db = DurableDatabase(str(tmp_path / "wal"), fsync="always")
        db.add_facts([("p", ("a", "b"))])
        assert fault_injector.wal_appends == 0
        assert fault_injector.wal_fsyncs == 0
        with fault_injector:
            db.add_facts([("p", ("b", "c"))])
        assert fault_injector.wal_appends == 1
        assert fault_injector.wal_fsyncs == 1
        db.close()

    def test_plan_validation(self, fault_injector):
        with pytest.raises(ValueError):
            fault_injector.torn_wal_write(after=0)
        with pytest.raises(ValueError):
            fault_injector.torn_wal_write(keep=-1)
        with pytest.raises(ValueError):
            fault_injector.corrupt_wal_record(after=0)
        with pytest.raises(ValueError):
            fault_injector.crash_before_fsync(after=0)


class TestCheckpointsQuietByDefault:
    def test_no_injector_means_no_faults(self, sg_query, sg_db):
        assert active_injector() is None
        result = run_strategy("naive", sg_query, sg_db)
        assert len(result.answers) > 0

    def test_noop_injector_changes_nothing(self, sg_query, sg_db,
                                           fault_injector):
        baseline = run_strategy("naive", sg_query, sg_db)
        with fault_injector:
            injected = run_strategy("naive", sg_query, sg_db)
        assert injected.answers == baseline.answers
        assert injected.stats.as_dict() == baseline.stats.as_dict()
        assert fault_injector.checkpoints_seen > 0
