"""Deterministic fault injection: budgets, isolation, typed failures."""

import pytest

from repro import Database, ResourceBudget, run_strategy
from repro.engine.faults import FaultInjector, InjectedFault, active_injector
from repro.engine.relation import Relation
from repro.errors import DeadlineExceeded, EvaluationError, ReproError


class TestInjectorLifecycle:
    def test_install_uninstall_restores_patches(self, fault_injector):
        original_lookup = Relation.lookup
        original_copy = Relation.copy
        fault_injector.delay_probes(0.0).corrupt_copies()
        with fault_injector:
            assert Relation.lookup is not original_lookup
            assert Relation.copy is not original_copy
            assert active_injector() is fault_injector
        assert Relation.lookup is original_lookup
        assert Relation.copy is original_copy
        assert active_injector() is None

    def test_single_injector_at_a_time(self, fault_injector):
        with fault_injector:
            with pytest.raises(RuntimeError):
                FaultInjector().install()

    def test_uninstall_is_idempotent(self, fault_injector):
        fault_injector.install()
        fault_injector.uninstall()
        fault_injector.uninstall()
        assert active_injector() is None

    def test_plan_validation(self, fault_injector):
        with pytest.raises(ValueError):
            fault_injector.raise_mid_fixpoint(after=0)
        with pytest.raises(ValueError):
            fault_injector.delay_probes(0.1, every=0)
        with pytest.raises(ValueError):
            fault_injector.corrupt_copies(every=0)


class TestMidFixpointRaise:
    def test_raises_typed_repro_error(self, sg_query, sg_db,
                                      fault_injector):
        fault_injector.raise_mid_fixpoint(after=1)
        with fault_injector:
            with pytest.raises(InjectedFault) as info:
                run_strategy("naive", sg_query, sg_db)
        # Injected failures travel the normal typed channel.
        assert isinstance(info.value, EvaluationError)
        assert isinstance(info.value, ReproError)
        assert fault_injector.faults_raised == 1

    def test_fires_in_dedicated_evaluator(self, sg_query, sg_db,
                                          fault_injector):
        fault_injector.raise_mid_fixpoint(after=1, points=("unwind",))
        with fault_injector:
            with pytest.raises(InjectedFault):
                run_strategy("pointer_counting", sg_query, sg_db)

    def test_one_shot(self, sg_query, sg_db, fault_injector):
        fault_injector.raise_mid_fixpoint(after=1)
        with fault_injector:
            with pytest.raises(InjectedFault):
                run_strategy("naive", sg_query, sg_db)
            # The plan is consumed; the next run completes.
            result = run_strategy("naive", sg_query, sg_db)
        assert len(result.answers) > 0

    def test_later_checkpoint(self, sg_query, fault_injector):
        # A deep chain: enough fixpoint rounds to reach checkpoint 3.
        facts = [("flat", ("x8", "y8"))]
        for i in range(8):
            facts.append(("up", ("x%d" % i, "x%d" % (i + 1))))
            facts.append(("down", ("y%d" % (i + 1), "y%d" % i)))
        deep_db = Database.from_facts(facts)
        fault_injector.raise_mid_fixpoint(after=3)
        with fault_injector:
            with pytest.raises(InjectedFault) as info:
                run_strategy("naive", sg_query, deep_db)
        assert "checkpoint 3" in str(info.value)


class TestProbeDelay:
    def test_delay_triggers_deadline(self, sg_query, sg_db,
                                     fault_injector):
        # Fake sleeper feeding a fake clock: every probe "costs" 1 s
        # against a 3 s deadline, so the budget fires deterministically
        # and within one round of the overrun.
        elapsed = [0.0]
        fault_injector._sleep = lambda s: elapsed.__setitem__(
            0, elapsed[0] + s
        )
        fault_injector.delay_probes(1.0, every=1)
        budget = ResourceBudget(timeout=3.0, clock=lambda: elapsed[0])
        with fault_injector:
            with pytest.raises(DeadlineExceeded):
                run_strategy("naive", sg_query, sg_db, budget=budget)
        assert fault_injector.probes_delayed >= 3

    def test_delay_every_k(self, sg_query, sg_db, fault_injector):
        calls = []
        fault_injector._sleep = calls.append
        fault_injector.delay_probes(0.25, every=4)
        with fault_injector:
            run_strategy("naive", sg_query, sg_db)
        assert calls == [0.25] * len(calls)
        assert fault_injector.probes_delayed == len(calls)
        assert fault_injector.probes_delayed > 0


class TestCopyCorruption:
    def test_corrupts_clone_not_source(self, fault_injector):
        relation = Relation("up", 2)
        relation.add(("a", "b"))
        relation.add(("b", "c"))
        before = set(relation.tuples)
        fault_injector.corrupt_copies(every=1)
        with fault_injector:
            clone = relation.copy()
        assert relation.tuples == before
        assert clone.tuples != before
        assert fault_injector.copies_corrupted == 1
        bogus = [row for row in clone.tuples
                 if any("__corrupt" in str(v) for v in row)]
        assert len(bogus) == 1

    def test_seed_determinism(self):
        def corrupt_once(seed):
            relation = Relation("up", 2)
            for i in range(10):
                relation.add(("n%d" % i, "n%d" % (i + 1)))
            injector = FaultInjector(seed=seed).corrupt_copies(every=1)
            with injector:
                return frozenset(relation.copy().tuples)

        assert corrupt_once(7) == corrupt_once(7)
        assert corrupt_once(7) != corrupt_once(8)

    def test_database_copy_goes_through_injector(self, sg_db,
                                                 fault_injector):
        fault_injector.corrupt_copies(every=1)
        before = sg_db.to_text()
        with fault_injector:
            clone = sg_db.copy()
        assert sg_db.to_text() == before
        assert clone.to_text() != before
        assert fault_injector.copies_corrupted > 0


class TestCheckpointsQuietByDefault:
    def test_no_injector_means_no_faults(self, sg_query, sg_db):
        assert active_injector() is None
        result = run_strategy("naive", sg_query, sg_db)
        assert len(result.answers) > 0

    def test_noop_injector_changes_nothing(self, sg_query, sg_db,
                                           fault_injector):
        baseline = run_strategy("naive", sg_query, sg_db)
        with fault_injector:
            injected = run_strategy("naive", sg_query, sg_db)
        assert injected.answers == baseline.answers
        assert injected.stats.as_dict() == baseline.stats.as_dict()
        assert fault_injector.checkpoints_seen > 0
