"""Data generator and workload tests."""

import pytest

from repro.data import WORKLOADS, get_workload
from repro.data import generators as g
from repro.engine.database import Database
from repro.graph import adjacency_successors, classify_arcs, is_acyclic
from repro.graph.dfs import Arc


def arcs_of(facts, pred="arc"):
    return [Arc(a, b) for p, (a, b) in facts if p == pred]


class TestChainAndCycle:
    def test_chain_length(self):
        facts = g.chain(5)
        assert len(facts) == 5
        assert facts[0] == ("arc", ("n0", "n1"))

    def test_cycle_closes(self):
        facts = g.cycle(4)
        assert ("arc", ("n3", "n0")) in facts
        succ = adjacency_successors(arcs_of(facts))
        assert not is_acyclic("n0", succ)

    def test_chain_acyclic(self):
        succ = adjacency_successors(arcs_of(g.chain(6)))
        assert is_acyclic("n0", succ)


class TestTrees:
    def test_full_tree_node_count(self):
        facts, root, leaves = g.full_tree(2, 3)
        assert root == "t0"
        assert len(leaves) == 8
        assert len(facts) == 2 + 4 + 8

    def test_inverted_tree_flips(self):
        facts, _root, _leaves = g.inverted_tree(2, 2)
        sources = {a for _p, (a, _b) in facts}
        assert "v0" not in sources  # root has no outgoing arcs

    def test_tree_is_tree(self):
        facts, root, _leaves = g.full_tree(3, 3)
        from repro.graph import is_tree

        assert is_tree(root, adjacency_successors(arcs_of(facts)))


class TestShortcutChain:
    def test_many_distances(self):
        facts = g.shortcut_chain(6)
        succ = adjacency_successors(arcs_of(facts))
        assert is_acyclic("s0", succ)
        # Node s4 reachable at distances 2..4.
        # Count (node, distance) pairs via BFS levels.
        levels = {("s0", 0)}
        frontier = {("s0", 0)}
        while frontier:
            new = set()
            for node, depth in frontier:
                for target, _lbl in succ(node):
                    pair = (target, depth + 1)
                    if pair not in levels:
                        levels.add(pair)
                        new.add(pair)
            frontier = new
        distances_s4 = {d for n, d in levels if n == "s4"}
        assert len(distances_s4) >= 2


class TestCylinder:
    def test_shape(self):
        facts, first, last = g.cylinder(3, 4)
        assert len(first) == 3
        assert len(last) == 3
        assert len(facts) == 3 * 4 * 2

    def test_acyclic(self):
        facts, first, _last = g.cylinder(3, 4)
        succ = adjacency_successors(arcs_of(facts))
        assert is_acyclic(first[0], succ)


class TestRandomGraphs:
    def test_dag_is_acyclic(self):
        facts = g.random_dag(15, 40, seed=1)
        succ = adjacency_successors(arcs_of(facts))
        for node in {a for _p, (a, _b) in facts}:
            assert is_acyclic(node, succ)

    def test_deterministic(self):
        assert g.random_dag(10, 20, seed=5) == g.random_dag(10, 20, seed=5)
        assert g.random_graph(10, 20, 5) == g.random_graph(10, 20, 5)

    def test_arc_counts(self):
        assert len(g.random_dag(10, 20, seed=2)) == 20
        assert len(g.random_graph(10, 20, seed=2)) == 20

    def test_caps_at_max_arcs(self):
        facts = g.random_dag(4, 100, seed=0)
        assert len(facts) == 6


class TestSgBuilders:
    def test_sg_tree_db(self):
        db, root = g.sg_tree_db(2, 3)
        assert isinstance(db, Database)
        assert len(db.relation("up", 2)) == 14
        assert len(db.relation("down", 2)) == 14
        assert len(db.relation("flat", 2)) == 8
        assert root == "a0"

    def test_sg_chain_db(self):
        db, source = g.sg_chain_db(5)
        assert source == "x0"
        assert len(db.relation("flat", 2)) == 6

    def test_sg_cyclic_db_has_cycle(self):
        db, source = g.sg_cyclic_db(4, 10)
        arcs = [Arc(a, b) for a, b in db.relation("up", 2)]
        succ = adjacency_successors(arcs)
        assert not is_acyclic(source, succ)

    def test_duplication_dag(self):
        db, source = g.duplication_dag_db(3, 4, 2, seed=9)
        assert source == "root"
        assert len(db.relation("flat", 2)) == 4
        classification = classify_arcs(
            source,
            adjacency_successors(
                [Arc(a, b) for a, b in db.relation("up", 2)]
            ),
        )
        assert classification.is_acyclic()

    def test_duplication_increases_with_parents(self):
        low, _ = g.duplication_dag_db(3, 4, 0, seed=9)
        high, _ = g.duplication_dag_db(3, 4, 3, seed=9)
        assert (len(high.relation("up", 2))
                > len(low.relation("up", 2)))


class TestWorkloadRegistry:
    def test_get_workload(self):
        assert get_workload("sg_tree").name == "sg_tree"
        with pytest.raises(ValueError):
            get_workload("nope")

    def test_all_workloads_build(self):
        for name, workload in WORKLOADS.items():
            db, source = workload.make_db()
            assert db.total_facts() > 0, name
            assert source == "a"

    def test_queries_parse_with_goal_constant_a(self):
        for workload in WORKLOADS.values():
            goal = workload.query.goal
            assert goal.args[0].is_ground()

    def test_descriptions_present(self):
        for workload in WORKLOADS.values():
            assert workload.description
            assert workload.applicable
