"""Unification and substitution tests, including the structured-value
decomposition rules the counting programs rely on."""

from repro.datalog.terms import (
    Compound,
    Constant,
    Variable,
    cons,
    make_list,
    make_tuple,
)
from repro.datalog.unify import (
    is_bound,
    rename_apart,
    resolve,
    substitute,
    unify,
    walk,
)


def V(name):
    return Variable(name)


def C(value):
    return Constant(value)


class TestWalk:
    def test_unbound(self):
        assert walk(V("X"), {}) == V("X")

    def test_chain(self):
        subst = {"X": V("Y"), "Y": C(1)}
        assert walk(V("X"), subst) == C(1)

    def test_non_variable(self):
        assert walk(C(1), {"X": C(2)}) == C(1)


class TestUnifyBasics:
    def test_var_constant(self):
        subst = unify(V("X"), C("a"), {})
        assert subst["X"] == C("a")

    def test_constant_var(self):
        subst = unify(C("a"), V("X"), {})
        assert subst["X"] == C("a")

    def test_equal_constants(self):
        assert unify(C(1), C(1), {}) == {}

    def test_unequal_constants(self):
        assert unify(C(1), C(2), {}) is None

    def test_var_var(self):
        subst = unify(V("X"), V("Y"), {})
        assert walk(V("X"), subst) == walk(V("Y"), subst)

    def test_same_var(self):
        assert unify(V("X"), V("X"), {}) == {}

    def test_input_not_mutated(self):
        original = {}
        unify(V("X"), C(1), original)
        assert original == {}

    def test_respects_existing_binding(self):
        subst = {"X": C(1)}
        assert unify(V("X"), C(2), subst) is None
        assert unify(V("X"), C(1), subst) == subst


class TestUnifyCompound:
    def test_same_functor(self):
        subst = unify(
            Compound("f", (V("X"),)), Compound("f", (C(1),)), {}
        )
        assert subst["X"] == C(1)

    def test_functor_mismatch(self):
        assert unify(
            Compound("f", (V("X"),)), Compound("g", (C(1),)), {}
        ) is None

    def test_arity_mismatch(self):
        assert unify(
            Compound("f", (V("X"),)),
            Compound("f", (C(1), C(2))),
            {},
        ) is None


class TestStructuredDecomposition:
    def test_cons_against_tuple_constant(self):
        pattern = cons(V("H"), V("T"))
        subst = unify(pattern, C(("a", "b", "c")), {})
        assert subst["H"] == C("a")
        assert subst["T"] == C(("b", "c"))

    def test_cons_against_empty_fails(self):
        assert unify(cons(V("H"), V("T")), C(()), {}) is None

    def test_cons_symmetric(self):
        subst = unify(C(("a",)), cons(V("H"), V("T")), {})
        assert subst["H"] == C("a")
        assert subst["T"] == C(())

    def test_tuple_pattern(self):
        pattern = make_tuple((C("r1"), V("C")))
        subst = unify(pattern, C(("r1", (5,))), {})
        assert subst["C"] == C((5,))

    def test_tuple_width_mismatch(self):
        pattern = make_tuple((V("A"), V("B")))
        assert unify(pattern, C(("x",)), {}) is None

    def test_tuple_label_mismatch(self):
        pattern = make_tuple((C("r1"), V("C")))
        assert unify(pattern, C(("r2", ())), {}) is None

    def test_path_entry_roundtrip(self):
        # [(r1, [W]) | L] against a ground path value.
        entry = make_tuple((C("r1"), make_list([V("W")])))
        pattern = cons(entry, V("L"))
        path_value = (("r1", (7,)), ("r2", ()))
        subst = unify(pattern, C(path_value), {})
        assert subst["W"] == C(7)
        assert subst["L"] == C((("r2", ()),))

    def test_cons_against_non_tuple_fails(self):
        assert unify(cons(V("H"), V("T")), C("abc"), {}) is None


class TestSubstituteResolve:
    def test_substitute_recursive(self):
        term = Compound("f", (V("X"), V("Y")))
        out = substitute(term, {"X": C(1)})
        assert out == Compound("f", (C(1), V("Y")))

    def test_resolve_folds_ground_arith(self):
        term = Compound("+", (V("I"), C(1)))
        assert resolve(term, {"I": C(4)}) == C(5)

    def test_resolve_folds_ground_list(self):
        term = make_list([V("A"), C("b")])
        assert resolve(term, {"A": C("a")}) == C(("a", "b"))

    def test_resolve_keeps_open_terms(self):
        term = make_list([C("a")], tail=V("L"))
        out = resolve(term, {})
        assert isinstance(out, Compound)

    def test_is_bound(self):
        assert is_bound(V("X"), {"X": C(1)})
        assert not is_bound(V("X"), {})


class TestRenameApart:
    def test_renames_everywhere(self):
        from repro.datalog import parse_program

        rule = parse_program(
            "p(X, Y) :- q(X, Z), not r(Z), Y is Z + 1."
        ).rules[0]
        renamed = rename_apart(rule, "_1")
        assert renamed.variables() == {"X_1", "Y_1", "Z_1"}
        assert renamed.label == rule.label
