"""Square-rule linearization tests (the §6 extension direction)."""

import random

import pytest

from repro import Database, optimize, parse_program, parse_query
from repro.datalog import Query, format_program
from repro.engine import evaluate_query
from repro.errors import NotApplicableError
from repro.exec.strategies import run_naive
from repro.rewriting.linearize import (
    is_square_rule,
    linearize_square_rules,
)

TC = """
tc(X, Y) :- arc(X, Y).
tc(X, Y) :- tc(X, Z), tc(Z, Y).
"""


class TestDetection:
    def test_square_recognized(self):
        rule = parse_program(TC).rules[1]
        assert is_square_rule(rule)

    @pytest.mark.parametrize(
        "text",
        [
            "tc(X, Y) :- tc(X, Z), arc(Z, Y).",     # linear
            "tc(X, Y) :- tc(Z, X), tc(Z, Y).",      # wrong chaining
            "tc(X, X) :- tc(X, Z), tc(Z, X).",      # repeated head var
            "tc(X, Y) :- tc(X, Z), tc(Z, Y), ok(X).",  # extra literal
            "tc(X, Y, W) :- tc(X, Z, W), tc(Z, Y, W).",  # arity 3
        ],
    )
    def test_non_square_rejected(self, text):
        rule = parse_program(text).rules[0]
        assert not is_square_rule(rule)


class TestRewriting:
    def test_tc_becomes_right_linear(self):
        program = linearize_square_rules(parse_program(TC))
        text = format_program(program)
        assert "tc(X, Z), tc(Z, Y)" not in text
        # One linearized rule per exit rule, stepping through the exit
        # body.
        recursive = [
            r for r in program
            if any(a.pred == "tc" for a in r.body_atoms())
        ]
        assert len(recursive) == 1
        assert recursive[0].body_atoms()[0].pred == "arc"

    def test_multiple_exit_rules(self):
        program = linearize_square_rules(parse_program("""
            tc(X, Y) :- road(X, Y).
            tc(X, Y) :- rail(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        """))
        recursive = [
            r for r in program
            if any(a.pred == "tc" for a in r.body_atoms())
        ]
        assert len(recursive) == 2
        steps = {r.body_atoms()[0].pred for r in recursive}
        assert steps == {"road", "rail"}

    def test_no_square_rule_raises(self):
        with pytest.raises(NotApplicableError):
            linearize_square_rules(parse_program(
                "tc(X, Y) :- tc(X, Z), arc(Z, Y). tc(X, Y) :- arc(X, Y)."
            ))

    def test_mixed_clique_refused(self):
        with pytest.raises(NotApplicableError):
            linearize_square_rules(parse_program("""
                tc(X, Y) :- arc(X, Y).
                tc(X, Y) :- tc(X, Z), tc(Z, Y).
                tc(X, Y) :- tc(X, Z), hop(Z, Y).
            """))

    def test_no_exit_rule_refused(self):
        with pytest.raises(NotApplicableError):
            linearize_square_rules(parse_program(
                "tc(X, Y) :- tc(X, Z), tc(Z, Y)."
            ))


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_same_closure_on_random_graphs(self, seed):
        rng = random.Random(seed)
        program = parse_program(TC)
        linearized = linearize_square_rules(program)
        db = Database()
        n = rng.randrange(3, 9)
        for _ in range(rng.randrange(2, 3 * n)):
            db.add_fact("arc", "n%d" % rng.randrange(n),
                        "n%d" % rng.randrange(n))
        goal = parse_query(TC + "?- tc(X, Y).").goal
        original = evaluate_query(Query(goal, program), db)
        rewritten = evaluate_query(Query(goal, linearized), db)
        assert original.answers == rewritten.answers

    def test_multi_exit_equivalence(self):
        program = parse_program("""
            tc(X, Y) :- road(X, Y).
            tc(X, Y) :- rail(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        """)
        linearized = linearize_square_rules(program)
        db = Database.from_text("""
            road(a, b). rail(b, c). road(c, d). rail(d, a).
        """)
        goal = parse_query(
            "p(X) :- q(X). ?- tc(X, Y)."
        ).goal
        original = evaluate_query(Query(goal, program), db)
        rewritten = evaluate_query(Query(goal, linearized), db)
        assert original.answers == rewritten.answers


class TestPipelineIntegration:
    def test_optimizer_linearizes_tc(self):
        query = parse_query(TC + "?- tc(a, Y).")
        db = Database.from_text("""
            arc(a, b). arc(b, c). arc(c, d). arc(x, y).
        """)
        plan = optimize(query, db)
        assert plan.method != "magic"
        assert "linearization" in plan.reason
        result = plan.execute(db)
        naive = run_naive(query, db)
        assert result.answers == naive.answers == {
            ("b",), ("c",), ("d",)
        }

    def test_optimizer_linearizes_cyclic_tc(self):
        query = parse_query(TC + "?- tc(a, Y).")
        db = Database.from_text("arc(a, b). arc(b, a). arc(b, c).")
        plan = optimize(query, db)
        assert "linearization" in plan.reason
        result = plan.execute(db)
        assert result.answers == run_naive(query, db).answers

    def test_truly_nonlinear_still_magic(self):
        # A non-square non-linear rule: no linearization applies.
        query = parse_query("""
            p(X, Y) :- base(X, Y).
            p(X, Y) :- p(X, Z), p(Y, Z).
            ?- p(a, Y).
        """)
        plan = optimize(query)
        assert plan.method == "magic"
