"""The set-at-a-time compiled join path: parity with the legacy
tuple-at-a-time evaluator, batched relation lookups, and constant
interning.

The compiled engine's contract is strict: on the supported fragment it
must enumerate the same results in the same order as the legacy stack
evaluator and update the paper's work counters identically — so most
tests here are differential.
"""

import pytest

from repro import Database, parse_program
from repro.engine import EvalStats, SemiNaiveEngine
from repro.engine.compile import BoundQuery, CompiledRule, compile_body
from repro.engine.interning import InternPool
from repro.engine.join import evaluate_body
from repro.engine.relation import WILDCARD, EmptyRelation, Relation
from repro.engine.seminaive import evaluate_program
from repro.exec.strategies import run_strategy


WORK_KEYS = (
    "rule_firings", "tuples_scanned", "facts_derived",
    "facts_duplicate", "iterations",
)


def work_counters(stats):
    d = stats.as_dict()
    return {k: d[k] for k in WORK_KEYS}


class _Unsupported(CompiledRule):
    """A CompiledRule stub that always reports the legacy fallback."""

    def __init__(self, rule):
        self.rule = rule
        self.compiled = None
        self.head = None
        self.premises = None


def run_legacy(monkeypatch, program, db):
    """Evaluate via the legacy path only, returning (derived, stats)."""
    import repro.engine.seminaive as seminaive

    monkeypatch.setattr(seminaive, "CompiledRule", _Unsupported)
    stats = EvalStats()
    derived = evaluate_program(program, db, stats=stats)
    monkeypatch.undo()
    return derived, stats


def run_compiled(program, db):
    stats = EvalStats()
    derived = evaluate_program(program, db, stats=stats)
    return derived, stats


def assert_differential(monkeypatch, text, facts):
    program = parse_program(text)
    db_a = Database.from_text(facts)
    db_b = Database.from_text(facts)
    compiled, cstats = run_compiled(program, db_a)
    legacy, lstats = run_legacy(monkeypatch, program, db_b)
    assert {k: set(rel) for k, rel in compiled.items()} == {
        k: set(rel) for k, rel in legacy.items()
    }
    assert work_counters(cstats) == work_counters(lstats)
    return compiled, cstats


class TestCompiledVsLegacy:
    def test_flat_join(self, monkeypatch):
        assert_differential(
            monkeypatch,
            "path(X, Y) :- edge(X, Y). "
            "path(X, Y) :- edge(X, Z), path(Z, Y).",
            "edge(a, b). edge(b, c). edge(c, d). edge(a, c).",
        )

    def test_repeated_variable(self, monkeypatch):
        assert_differential(
            monkeypatch,
            "loop(X) :- edge(X, X). refl(X, X) :- node(X).",
            "edge(a, a). edge(a, b). edge(c, c). node(a). node(b).",
        )

    def test_constants_and_comparisons(self, monkeypatch):
        assert_differential(
            monkeypatch,
            "big(X) :- val(X, N), N > 2. "
            "next(X, M) :- val(X, N), M is N + 1. "
            "special(X) :- val(X, 3).",
            "val(a, 1). val(b, 3). val(c, 5).",
        )

    def test_negation(self, monkeypatch):
        assert_differential(
            monkeypatch,
            "orphan(X) :- node(X), not parent(X). "
            "parent(X) :- edge(X, Y).",
            "node(a). node(b). node(c). edge(a, b).",
        )

    def test_structured_list_terms(self, monkeypatch):
        # The extended-counting shape: path arguments as cons cells.
        assert_differential(
            monkeypatch,
            "p(X, [X]) :- seed(X). "
            "p(Y, [Y | L]) :- p(X, L), edge(X, Y). "
            "first(H) :- p(x3, [H | T]).",
            "seed(x0). edge(x0, x1). edge(x1, x2). edge(x2, x3).",
        )

    def test_counting_strategies_match_naive(self, sg_query, sg_db):
        baseline = run_strategy("naive", sg_query, sg_db)
        for method in ("extended_counting", "pointer_counting",
                       "magic_counting"):
            result = run_strategy(method, sg_query, sg_db)
            assert result.answers == baseline.answers

    def test_enumeration_order_identical(self):
        # Order matters downstream (counting-table discovery order);
        # compare the compiled executor against the legacy stack
        # discipline directly on one body.
        program = parse_program(
            "q(X, Z) :- e(X, Y), e(Y, Z)."
        )
        rule = program.rules[0]
        db = Database.from_text(
            "e(a, b). e(b, c). e(a, c). e(c, d). e(b, d)."
        )

        def resolver(_index, atom):
            return db.get(atom.key)

        compiled = CompiledRule(rule)
        assert compiled.supported
        body = compiled.compiled
        got = [
            compiled.head(slots)
            for slots in body.execute(resolver, body.make_slots())
        ]
        from repro.engine.join import ground_head

        expected = [
            ground_head(rule.head, subst)
            for subst in evaluate_body(rule.body, resolver, {})
        ]
        assert got == expected


class TestCompiledFragment:
    def test_unbound_negation_falls_back(self):
        program = parse_program("p(X) :- not q(X), r(X).")
        assert compile_body(program.rules[0].body) is None

    def test_unbound_comparison_falls_back(self):
        program = parse_program("p(X) :- X < 3, r(X).")
        assert compile_body(program.rules[0].body) is None

    def test_unsupported_rule_reports_fallback(self):
        program = parse_program("p(X) :- X < 3, r(X).")
        compiled = CompiledRule(program.rules[0])
        assert not compiled.supported

    def test_supported_body_binds_all(self):
        program = parse_program("p(X, Y) :- e(X, Y), Y != X.")
        compiled = compile_body(program.rules[0].body)
        assert compiled is not None
        assert compiled.bound_after == {"X", "Y"}


class TestBoundQuery:
    def make_resolver(self, text):
        db = Database.from_text(text)

        def resolver(_index, atom):
            return db.get(atom.key)

        return resolver

    def test_projection(self):
        program = parse_program("q(X) :- e(X, Y), f(Y, Z).")
        body = program.rules[0].body
        resolver = self.make_resolver(
            "e(a, b). e(a, c). f(b, n1). f(c, n2)."
        )
        query = BoundQuery(body, ("X",), ("Y", "Z"))
        assert query.compiled is not None
        got = set(query.run(resolver, ("a",)))
        assert got == {("b", "n1"), ("c", "n2")}

    def test_compiled_matches_legacy_order_and_stats(self):
        program = parse_program("q(X) :- e(X, Y), f(Y, Z).")
        body = program.rules[0].body
        resolver = self.make_resolver(
            "e(a, b). e(a, c). f(b, n1). f(c, n2). f(b, n3)."
        )
        query = BoundQuery(body, ("X",), ("Y", "Z"))
        fast_stats = EvalStats()
        fast = list(query.run(resolver, ("a",), fast_stats))
        slow_stats = EvalStats()
        slow = list(query._run_legacy(resolver, ("a",), slow_stats))
        assert fast == slow
        assert fast_stats.tuples_scanned == slow_stats.tuples_scanned

    def test_duplicate_in_names_later_wins(self):
        program = parse_program("q(X) :- e(X, Y).")
        body = program.rules[0].body
        resolver = self.make_resolver("e(a, b). e(z, w).")
        query = BoundQuery(body, ("X", "X"), ("Y",))
        assert set(query.run(resolver, ("z", "a"))) == {("b",)}


class TestRelationLookup:
    def make(self):
        rel = Relation("p", 2)
        rel.add(("a", "b"))
        rel.add(("a", "c"))
        rel.add(("x", "y"))
        return rel

    def test_scalar_key_single_position(self):
        rel = self.make()
        assert sorted(rel.lookup((0,), "a")) == [("a", "b"), ("a", "c")]
        assert list(rel.lookup((1,), "y")) == [("x", "y")]
        assert list(rel.lookup((0,), "zzz")) == []

    def test_tuple_key_multi_position(self):
        rel = self.make()
        assert list(rel.lookup((0, 1), ("a", "c"))) == [("a", "c")]
        assert list(rel.lookup((0, 1), ("a", "zzz"))) == []

    def test_full_scan(self):
        rel = self.make()
        assert sorted(rel.lookup((), None)) == sorted(rel.tuples)

    def test_without_indexes_filters(self):
        rel = self.make()
        rel.use_indexes = False
        assert sorted(rel.lookup((0,), "a")) == [("a", "b"), ("a", "c")]
        assert rel._indexes == {}

    def test_stats_counters(self):
        rel = self.make()
        stats = EvalStats()
        rel.lookup((0,), "a", stats)
        assert stats.index_builds == 1
        assert stats.index_probes == 1
        rel.lookup((0,), "x", stats)
        assert stats.index_builds == 1
        assert stats.index_probes == 2

    def test_index_maintained_after_add(self):
        rel = self.make()
        rel.lookup((0,), "a")
        rel.add(("a", "zz"))
        assert sorted(rel.lookup((0,), "a")) == [
            ("a", "b"), ("a", "c"), ("a", "zz")
        ]

    def test_ensure_index_prebuilds(self):
        rel = Relation("p", 2)
        rel.ensure_index((0,))
        assert (0,) in rel._indexes
        rel.add(("a", "b"))
        stats = EvalStats()
        assert list(rel.lookup((0,), "a", stats)) == [("a", "b")]
        assert stats.index_builds == 0

    def test_empty_relation_lookup(self):
        empty = EmptyRelation("p", 2)
        assert list(empty.lookup((0,), "a")) == []


class TestRelationCopy:
    def test_copy_carries_indexes(self):
        rel = Relation("p", 2)
        rel.add(("a", "b"))
        list(rel.match(("a", WILDCARD)))  # build an index
        clone = rel.copy()
        assert clone._indexes.keys() == rel._indexes.keys()

    def test_copy_answers_match_after_divergent_adds(self):
        rel = Relation("p", 2)
        rel.add(("a", "b"))
        list(rel.match(("a", WILDCARD)))
        clone = rel.copy()
        rel.add(("a", "orig-only"))
        clone.add(("a", "clone-only"))
        assert sorted(rel.match(("a", WILDCARD))) == [
            ("a", "b"), ("a", "orig-only")
        ]
        assert sorted(clone.match(("a", WILDCARD))) == [
            ("a", "b"), ("a", "clone-only")
        ]


@pytest.mark.parametrize("make_relation", [
    lambda: Relation("p", 2),
    lambda: EmptyRelation("p", 2),
], ids=["Relation", "EmptyRelation"])
class TestMatchArityParity:
    """Both relation classes reject patterns of the wrong arity."""

    def test_wrong_arity_raises(self, make_relation):
        rel = make_relation()
        with pytest.raises(ValueError):
            list(rel.match(("a",)))
        with pytest.raises(ValueError):
            list(rel.match(("a", "b", "c")))

    def test_right_arity_accepted(self, make_relation):
        rel = make_relation()
        assert list(rel.match((WILDCARD, WILDCARD))) == []


class TestInterning:
    def test_equal_rows_share_instances(self):
        db = Database()
        db.add_fact("e", "node-1", "node-2")
        db.add_fact("f", "node-1", ("node-2", "node-1"))
        (row_e,) = db.get(("e", 2))
        (row_f,) = db.get(("f", 2))
        assert row_e[0] is row_f[0]
        assert row_f[1][0] is row_e[1]

    def test_equal_but_distinct_types_kept_apart(self):
        pool = InternPool()
        assert pool.intern(1) == pool.intern(True)
        assert pool.intern(1) is not pool.intern(True)
        assert type(pool.intern(1.0)) is float

    def test_ids_stable_and_append_only(self):
        pool = InternPool()
        first = pool.ident("a")
        second = pool.ident("b")
        assert first != second
        assert pool.ident("a") == first
        assert len(pool) == 2

    def test_copy_shares_pool(self):
        db = Database.from_text("e(a, b).")
        ident = db.intern_pool.ident("a")
        clone = db.copy()
        assert clone.intern_pool is db.intern_pool
        assert clone.intern_pool.ident("a") == ident

    def test_rendered_output_unchanged(self):
        text = 'e(a, b).\ne(a, c).\nv(1, x).'
        db = Database.from_text(text)
        assert db.to_text() == text


class TestProfile:
    def test_rule_profile_collected(self, sg_query, sg_db):
        stats = EvalStats()
        engine = SemiNaiveEngine(sg_query.program, sg_db, stats=stats)
        engine.run()
        assert stats.rule_profile
        table = stats.profile_table()
        labels = [entry[0] for entry in table]
        assert set(labels) == set(stats.rule_profile)
        for _label, seconds, calls, derived in table:
            assert seconds >= 0.0
            assert calls >= 1
            assert derived >= 0
        assert stats.batch_rows > 0
        assert stats.index_probes > 0
