"""Weakly stratified counting-set construction (Theorem 2(1), §3.4).

The wavefront evaluator fires the node-keyed counting rule exactly when
its self-negation becomes definitively false; the result must be the
same table (up to id renaming) the DFS-based engine builds.
"""

import random

import pytest

from repro.exec.counting_engine import SOURCE_TRIPLE
from repro.exec.weak_stratification import (
    tables_equivalent,
    wavefront_counting_table,
    weakly_stratified_counting_table,
)
from repro.graph import Arc, adjacency_successors, classify_arcs


def successors_of(pairs):
    return adjacency_successors(
        [Arc(("p", a), ("p", b), ("r1", ())) for a, b in pairs]
    )


EXAMPLE5_UP = [
    ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "d"),
    ("b", "e"),
]


class TestExample5:
    def table(self):
        return weakly_stratified_counting_table(
            ("p", "a"), successors_of(EXAMPLE5_UP)
        )

    def test_admission_waits_for_all_ahead_preds(self):
        table = self.table()
        # e has ahead predecessors b and d; with the wavefront
        # discipline d must be admitted before e fires.
        order = [row.values for row in table.rows]
        assert order.index("d") < order.index("e")
        assert order.index("c") < order.index("d")

    def test_same_predecessor_sets_as_dfs(self):
        wavefront = self.table()
        classification = classify_arcs(
            ("p", "a"), successors_of(EXAMPLE5_UP)
        )
        from repro.exec.counting_engine import CountingTable

        dfs = CountingTable()
        source_row = dfs.row_for(*classification.order[0])
        dfs.source_id = source_row.id
        source_row.triples.append(SOURCE_TRIPLE)
        for node in classification.order:
            dfs.row_for(*node)
        for arc in classification.ahead + classification.back:
            target = dfs.row_for(*arc.target)
            label, shared = arc.label
            target.triples.append(
                (label, shared, dfs.row_for(*arc.source).id)
            )
        assert tables_equivalent(wavefront, dfs)

    def test_back_arc_counted(self):
        table = self.table()
        assert table.back_arc_count == 1
        assert table.ahead_arc_count == 5

    def test_source_sentinel_present(self):
        table = self.table()
        assert SOURCE_TRIPLE in table.rows[table.source_id].triples


class TestAgainstCountingEngine:
    def engine_table(self, query, db):
        from repro.exec.counting_engine import CountingEngine
        from repro.rewriting.adornment import adorn_query
        from repro.rewriting.canonical import (
            canonicalize_clique,
            query_constants,
        )
        from repro.rewriting.support import goal_clique_of

        adorned = adorn_query(query)
        clique, _support = goal_clique_of(adorned)
        canonical = canonicalize_clique(clique, adorned)
        engine = CountingEngine(
            canonical, adorned.goal.key,
            query_constants(adorned.goal), db.get,
        )
        table = engine.build_counting_set()
        classification = classify_arcs(
            (adorned.goal.key, query_constants(adorned.goal)),
            engine._successors,
        )
        return table, classification

    def test_example5_program(self, sg_query, example5_db):
        dfs_table, classification = self.engine_table(
            sg_query, example5_db
        )
        wavefront = wavefront_counting_table(classification)
        assert tables_equivalent(wavefront, dfs_table)

    def test_shared_vars_program(self, example4_query, example4_db_a):
        dfs_table, classification = self.engine_table(
            example4_query, example4_db_a
        )
        wavefront = wavefront_counting_table(classification)
        assert tables_equivalent(wavefront, dfs_table)


class TestRandomGraphs:
    @pytest.mark.parametrize("seed", range(12))
    def test_wavefront_matches_dfs(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(3, 14)
        pairs = []
        for _ in range(rng.randrange(2, 3 * n)):
            pairs.append(("n%d" % rng.randrange(n),
                          "n%d" % rng.randrange(n)))
        pairs.append(("a", "n0"))
        succ = successors_of(pairs)
        classification = classify_arcs(("p", "a"), succ)
        wavefront = wavefront_counting_table(classification)

        from repro.exec.counting_engine import CountingTable

        dfs = CountingTable()
        source_row = dfs.row_for(("p", "a")[0], ("p", "a")[1])
        dfs.source_id = source_row.id
        source_row.triples.append(SOURCE_TRIPLE)
        for node in classification.order:
            dfs.row_for(*node)
        for arc in classification.ahead + classification.back:
            label, shared = arc.label
            dfs.row_for(*arc.target).triples.append(
                (label, shared, dfs.row_for(*arc.source).id)
            )
        assert tables_equivalent(wavefront, dfs)

    @pytest.mark.parametrize("seed", range(6))
    def test_all_reachable_nodes_admitted(self, seed):
        rng = random.Random(100 + seed)
        pairs = [("n%d" % rng.randrange(8), "n%d" % rng.randrange(8))
                 for _ in range(14)]
        pairs.append(("a", "n0"))
        succ = successors_of(pairs)
        classification = classify_arcs(("p", "a"), succ)
        table = wavefront_counting_table(classification)
        assert len(table) == len(classification.order)
