"""WAL, checkpoint, recovery, and audit-log unit contracts."""

import os

import pytest

from repro import AnswerCache, Database, PreparedQuery
from repro.durability import (
    AuditLog,
    CheckpointStore,
    DurableDatabase,
    WalReader,
    WriteAheadLog,
    read_audit,
    read_checkpoint,
    recover,
    verify_audit,
    write_checkpoint,
)
from repro.durability.audit import (
    epoch_hash,
    jsonable_constants,
    result_fingerprint,
)
from repro.durability.wal import _encode_record, _HEADER_LEN, MAGIC
from repro.errors import CheckpointError, RecoveryError, WalError

LINEAGE = "ab" * 12


def wal_path(tmp_path, name="wal.log"):
    return str(tmp_path / name)


SG_FACTS = [
    ("up", ("a", "b")), ("up", ("b", "c")),
    ("flat", ("c", "c1")), ("flat", ("b", "b1")),
    ("down", ("c1", "d1")), ("down", ("d1", "e1")),
    ("down", ("b1", "f1")),
]


class TestWalRoundTrip:
    def test_append_read_preserves_batches_exactly(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog.create(path, LINEAGE, fsync="always")
        # Duplicates and order are the caller's; the log keeps both.
        first = [("p", ("a", "b")), ("p", ("a", "b")), ("q", ("x",))]
        second = [("p", ("b", "a"))]
        assert wal.append(first, {}) == 1
        assert wal.append(second, {("p", 2): 3, ("q", 1): 1}) == 2
        assert wal.seq == 2
        wal.close()

        reader = WalReader(path)
        assert reader.lineage == LINEAGE
        assert reader.tail_error is None
        assert len(reader) == 2
        records = list(reader)
        assert records[0].seq == 1
        assert records[0].facts == first
        assert records[0].stamps == {}
        assert records[1].facts == second
        assert records[1].stamps == {("p", 2): 3, ("q", 1): 1}

    def test_reopen_resumes_sequence(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog.create(path, LINEAGE, fsync="batch") as wal:
            wal.append([("p", ("a",))], {})
        wal, reader = WriteAheadLog.open(path, fsync="batch")
        assert wal.lineage == LINEAGE
        assert len(reader) == 1
        wal.append([("p", ("b",))], {("p", 1): 1})
        wal.close()
        final = WalReader(path)
        assert [record.seq for record in final] == [1, 2]
        assert final.records[1].facts == [("p", ("b",))]

    def test_stats_track_appends_and_fsyncs(self, tmp_path):
        wal = WriteAheadLog.create(
            wal_path(tmp_path), LINEAGE, fsync="always"
        )
        wal.append([("p", ("a",))], {})
        wal.append([("p", ("b",))], {("p", 1): 1})
        wal.close()
        assert wal.stats["appends"] == 2
        assert wal.stats["fsyncs"] == 2
        assert wal.stats["bytes"] > 0
        assert wal.stats["append_seconds"] > 0.0

    def test_batch_policy_fsyncs_only_on_flush(self, tmp_path):
        wal = WriteAheadLog.create(
            wal_path(tmp_path), LINEAGE, fsync="batch"
        )
        wal.append([("p", ("a",))], {})
        wal.append([("p", ("b",))], {("p", 1): 1})
        assert wal.stats["fsyncs"] == 0
        wal.flush()
        assert wal.stats["fsyncs"] == 1
        wal.flush()  # nothing dirty: no second fsync
        assert wal.stats["fsyncs"] == 1
        wal.close()

    def test_create_validates_lineage_and_policy(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog.create(wal_path(tmp_path), "short")
        with pytest.raises(WalError):
            WriteAheadLog.create(
                wal_path(tmp_path), LINEAGE, fsync="sometimes"
            )

    def test_create_refuses_existing_file(self, tmp_path):
        path = wal_path(tmp_path)
        WriteAheadLog.create(path, LINEAGE).close()
        with pytest.raises(FileExistsError):
            WriteAheadLog.create(path, LINEAGE)

    def test_dump_renders_records_as_fact_program(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog.create(path, LINEAGE, fsync="off")
        wal.append([("p", ("a", "b")), ("q", (7,))], {})
        text = wal.dump()
        wal.close()
        assert "lineage=%s" % LINEAGE in text
        assert "% record 1:" in text
        assert "p(a, b)." in text
        assert "q(7)." in text


class TestWalTailDamage:
    def _one_record_log(self, tmp_path):
        path = wal_path(tmp_path)
        wal = WriteAheadLog.create(path, LINEAGE, fsync="always")
        wal.append([("p", ("a", "b"))], {})
        wal.close()
        return path

    def test_torn_record_head_is_reported_not_raised(self, tmp_path):
        path = self._one_record_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02")  # 2 of the 8 head bytes
        reader = WalReader(path)
        assert len(reader) == 1
        assert "torn record head" in reader.tail_error

    def test_torn_record_body_is_reported_not_raised(self, tmp_path):
        path = self._one_record_log(tmp_path)
        extra = _encode_record(2, {("p", 2): 1}, [("p", ("b", "c"))])
        with open(path, "ab") as handle:
            handle.write(extra[:-3])
        reader = WalReader(path)
        assert len(reader) == 1
        assert "torn record 2" in reader.tail_error

    def test_checksum_mismatch_ends_the_clean_prefix(self, tmp_path):
        path = self._one_record_log(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes((last[0] ^ 0xFF,)))
        reader = WalReader(path)
        assert len(reader) == 0
        assert "checksum mismatch at record 1" in reader.tail_error
        assert reader.valid_bytes == _HEADER_LEN

    def test_open_truncates_torn_tail_and_resumes(self, tmp_path):
        path = self._one_record_log(tmp_path)
        clean_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x99" * 17)
        wal, reader = WriteAheadLog.open(path, fsync="always")
        assert reader.tail_error is not None
        assert os.path.getsize(path) == clean_size
        wal.append([("p", ("b", "c"))], {("p", 2): 1})
        wal.close()
        final = WalReader(path)
        assert len(final) == 2
        assert final.tail_error is None

    def test_short_header_reads_as_empty(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(MAGIC + b"abc")
        reader = WalReader(path)
        assert reader.lineage is None
        assert len(reader) == 0
        assert "short header" in reader.tail_error

    def test_open_recreates_over_torn_header(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(MAGIC[:4])
        wal, reader = WriteAheadLog.open(path, fsync="off")
        assert reader.lineage is None
        assert wal.seq == 0
        assert len(wal.lineage) == 24
        wal.append([("p", ("a",))], {})
        wal.close()
        assert WalReader(path).tail_error is None

    def test_bad_magic_is_structural(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"NOTAWAL!" + b"0" * 25 + b"x" * 64)
        with pytest.raises(WalError):
            WalReader(path)

    def test_mid_log_sequence_gap_is_structural(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(MAGIC + LINEAGE.encode("ascii") + b"\n")
            # First record claims seq 2: no crash can produce this.
            handle.write(_encode_record(2, {}, [("p", ("a",))]))
        with pytest.raises(WalError) as info:
            WalReader(path)
        assert "sequence gap" in str(info.value)

    def test_failed_log_refuses_append_and_flush(self, tmp_path):
        wal = WriteAheadLog.create(
            wal_path(tmp_path), LINEAGE, fsync="off"
        )
        wal._failed = "simulated"
        with pytest.raises(WalError):
            wal.append([("p", ("a",))], {})
        with pytest.raises(WalError):
            wal.flush()
        wal.close()  # failed close is a no-op, not an error


class TestCheckpointFiles:
    def _db(self):
        return Database.from_facts(SG_FACTS)

    def test_round_trip_restores_identical_state(self, tmp_path):
        db = self._db()
        path = str(tmp_path / "ckpt-000000000001.bin")
        assert write_checkpoint(path, db, wal_seq=1) == path
        checkpoint = read_checkpoint(path)
        assert checkpoint.wal_seq == 1
        assert checkpoint.lineage == db.lineage
        restored = checkpoint.restore(Database())
        assert restored.to_text() == db.to_text()
        assert restored.lineage == db.lineage
        for key in db.keys():
            assert restored.epoch_of(key) == db.epoch_of(key)

    def test_restore_refuses_nonempty_database(self, tmp_path):
        db = self._db()
        path = str(tmp_path / "ckpt-000000000001.bin")
        write_checkpoint(path, db, wal_seq=1)
        occupied = Database.from_facts([("up", ("x", "y"))])
        with pytest.raises(ValueError):
            read_checkpoint(path).restore(occupied)

    def test_corruption_raises_soft_checkpoint_error(self, tmp_path):
        db = self._db()
        path = str(tmp_path / "ckpt-000000000001.bin")
        write_checkpoint(path, db, wal_seq=1)
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes((last[0] ^ 0xFF,)))
        with pytest.raises(CheckpointError) as info:
            read_checkpoint(path)
        assert "checksum mismatch" in str(info.value)

    def test_short_file_and_bad_magic(self, tmp_path):
        short = str(tmp_path / "short.bin")
        with open(short, "wb") as handle:
            handle.write(b"RE")
        with pytest.raises(CheckpointError):
            read_checkpoint(short)
        bad = str(tmp_path / "bad.bin")
        with open(bad, "wb") as handle:
            handle.write(b"NOTACKPT" + b"\x00" * 32)
        with pytest.raises(CheckpointError):
            read_checkpoint(bad)

    def test_store_prunes_beyond_keep(self, tmp_path):
        db = self._db()
        store = CheckpointStore(str(tmp_path), keep=2)
        for seq in (1, 2, 3):
            store.write(db, seq)
        names = [os.path.basename(p) for p in store.paths()]
        assert names == ["ckpt-000000000003.bin", "ckpt-000000000002.bin"]

    def test_store_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path), keep=0)

    def test_load_newest_falls_back_past_corruption(self, tmp_path):
        db = self._db()
        store = CheckpointStore(str(tmp_path), keep=5)
        store.write(db, 1)
        newest = store.write(db, 2)
        with open(newest, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes((last[0] ^ 0xFF,)))
        checkpoint, skipped = store.load_newest(lineage=db.lineage)
        assert checkpoint.wal_seq == 1
        assert len(skipped) == 1
        assert skipped[0][0] == newest

    def test_load_newest_filters_lineage_and_future(self, tmp_path):
        db = self._db()
        store = CheckpointStore(str(tmp_path), keep=5)
        store.write(db, 3)
        # Wrong lineage: the file describes some other log's history.
        checkpoint, skipped = store.load_newest(lineage="f" * 24)
        assert checkpoint is None
        assert "lineage" in skipped[0][1]
        # "From the future": claims more WAL records than survived.
        checkpoint, skipped = store.load_newest(
            lineage=db.lineage, max_seq=2
        )
        assert checkpoint is None
        assert "beyond surviving log" in skipped[0][1]


class TestDurableDatabase:
    def test_fresh_directory_reports_fresh(self, tmp_path):
        with DurableDatabase(str(tmp_path / "d"), fsync="off") as db:
            assert db.recovery.fresh
            assert db.wal_seq == 0
            assert db.recovery.to_dict()["epochs"] == {}

    def test_ingest_close_recover_is_identity(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableDatabase(directory, fsync="always") as db:
            db.add_facts(SG_FACTS)
            db.add_fact("up", "c", "d")
            before_text = db.to_text()
            before_epochs = {key: db.epoch_of(key) for key in db.keys()}
            lineage = db.lineage
        recovered, report = recover(directory, fsync="off")
        assert recovered.to_text() == before_text
        assert report.epochs == before_epochs
        assert recovered.lineage == lineage
        assert report.wal_records == 2
        assert report.replayed == 2
        assert report.checkpoint_seq == 0
        assert not report.fresh
        recovered.close()

    def test_generator_batches_are_logged_as_lists(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableDatabase(directory, fsync="off") as db:
            db.add_facts(
                ("edge", (str(i), str(i + 1))) for i in range(3)
            )
        reader = WalReader(os.path.join(directory, "wal.log"))
        assert reader.records[0].facts == [
            ("edge", ("0", "1")), ("edge", ("1", "2")),
            ("edge", ("2", "3")),
        ]

    def test_checkpoint_skips_replayed_prefix(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableDatabase(directory, fsync="batch") as db:
            db.add_facts(SG_FACTS)
            db.checkpoint()
            db.add_facts([("up", ("c", "d"))])
            expected = db.to_text()
        recovered, report = recover(directory, fsync="off")
        assert report.checkpoint_seq == 1
        assert report.wal_records == 2
        assert report.replayed == 1
        assert recovered.to_text() == expected
        recovered.close()

    def test_wal_stats_surface_on_the_database(self, tmp_path):
        with DurableDatabase(str(tmp_path / "d"), fsync="off") as db:
            db.add_facts(SG_FACTS)
            stats = db.wal_stats
        assert stats["appends"] == 1
        assert stats["bytes"] > 0

    def test_torn_tail_costs_only_the_torn_record(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableDatabase(directory, fsync="always") as db:
            db.add_facts(SG_FACTS)
            expected = db.to_text()
        with open(os.path.join(directory, "wal.log"), "ab") as handle:
            handle.write(b"\x99" * 23)
        recovered, report = recover(directory, fsync="off")
        assert report.truncated_tail is not None
        assert recovered.to_text() == expected
        # The tail was physically truncated: a second recovery is clean.
        recovered.close()
        second, report2 = recover(directory, fsync="off")
        assert report2.truncated_tail is None
        assert second.to_text() == expected
        second.close()

    def test_checkpoints_without_wal_refuse_to_guess(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableDatabase(directory, fsync="off") as db:
            db.add_facts(SG_FACTS)
            db.checkpoint()
        os.remove(os.path.join(directory, "wal.log"))
        with pytest.raises(RecoveryError) as info:
            DurableDatabase(directory, fsync="off")
        assert "refusing to guess" in str(info.value)

    def test_torn_header_with_checkpoints_is_contradiction(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableDatabase(directory, fsync="off") as db:
            db.add_facts(SG_FACTS)
            db.checkpoint()
        with open(os.path.join(directory, "wal.log"), "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(RecoveryError) as info:
            DurableDatabase(directory, fsync="off")
        assert "torn but checkpoints exist" in str(info.value)

    def test_torn_header_alone_restarts_fresh(self, tmp_path):
        directory = str(tmp_path / "d")
        with DurableDatabase(directory, fsync="off") as db:
            old_lineage = db.lineage
        with open(os.path.join(directory, "wal.log"), "r+b") as handle:
            handle.truncate(10)
        recovered, report = recover(directory, fsync="off")
        assert report.fresh
        assert "short header" in report.truncated_tail
        assert recovered.lineage != old_lineage
        recovered.close()

    def test_stamp_mismatch_is_two_histories(self, tmp_path):
        directory = str(tmp_path / "d")
        os.makedirs(directory)
        path = os.path.join(directory, "wal.log")
        wal = WriteAheadLog.create(path, LINEAGE, fsync="off")
        wal.append([("p", ("a", "b"))], {})
        # Record 2 claims p/2 sat at epoch 5 before it — but replaying
        # record 1 leaves it at 1.  The files disagree about history.
        wal.append([("p", ("b", "c"))], {("p", 2): 5})
        wal.close()
        with pytest.raises(RecoveryError) as info:
            recover(directory, fsync="off")
        assert "two different histories" in str(info.value)


class TestWarmCacheAcrossRecovery:
    def test_recovered_lineage_keeps_cache_entries_valid(
        self, tmp_path, sg_query
    ):
        directory = str(tmp_path / "d")
        db = DurableDatabase(directory, fsync="always")
        db.add_facts(SG_FACTS)
        cache = AnswerCache()
        prepared = PreparedQuery(sg_query, db, cache=cache)
        cold = prepared.run(("a",), db=db)
        assert not cold.extras.get("cache_hit")
        db.close()

        recovered, _ = recover(directory, fsync="off")
        warm = prepared.run(("a",), db=recovered)
        assert warm.extras.get("cache_hit") is True
        assert warm.answers == cold.answers
        # Mutating the recovered database still invalidates as usual.
        recovered.add_facts([("flat", ("a", "zz"))])
        fresh = prepared.run(("a",), db=recovered)
        assert not fresh.extras.get("cache_hit")
        assert ("zz",) in fresh.answers
        recovered.close()


class TestAuditLog:
    def test_buffering_honors_flush_every(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = AuditLog(path, flush_every=3)
        log.record({"request_id": 1})
        log.record({"request_id": 2})
        assert read_audit(path)[0] == []  # still buffered
        log.record({"request_id": 3})    # hits the threshold
        entries, torn = read_audit(path)
        assert [e["request_id"] for e in entries] == [1, 2, 3]
        assert torn is None
        log.record({"request_id": 4})
        log.close()                      # close drains the buffer
        assert len(read_audit(path)[0]) == 4
        log.record({"request_id": 5})    # after close: dropped, no error
        assert len(read_audit(path)[0]) == 4

    def test_flush_every_validation(self, tmp_path):
        with pytest.raises(ValueError):
            AuditLog(str(tmp_path / "a.jsonl"), flush_every=0)

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_audit(str(tmp_path / "nope.jsonl")) == ([], None)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"request_id": 1}\n{"request_id": 2, "out')
        entries, torn = read_audit(path)
        assert [e["request_id"] for e in entries] == [1]
        assert "torn final entry" in torn

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"request_id": 1}\ngarbage\n{"request_id": 3}\n')
        with pytest.raises(ValueError) as info:
            read_audit(path)
        assert "line 2" in str(info.value)

    def test_result_fingerprint_is_order_insensitive(self):
        a = result_fingerprint([("x",), ("y", 2)])
        b = result_fingerprint([("y", 2), ("x",)])
        assert a == b
        assert a != result_fingerprint([("x",)])

    def test_epoch_hash_names_state_and_lineage(self):
        db = Database.from_facts(SG_FACTS)
        before = epoch_hash(db)
        scoped = epoch_hash(db, keys=[("up", 2)])
        db.add_fact("flat", "q", "r")
        assert epoch_hash(db) != before
        # The scoped name ignores relations outside the read set.
        assert epoch_hash(db, keys=[("up", 2)]) == scoped
        twin = Database.from_facts(SG_FACTS)
        twin.add_fact("flat", "q", "r")
        assert epoch_hash(twin) != epoch_hash(db)  # different lineage

    def test_jsonable_constants(self):
        rendered, replayable = jsonable_constants(("a", 3, None))
        assert rendered == ["a", 3, None]
        assert replayable
        rendered, replayable = jsonable_constants((("r1", ("w",)),))
        assert rendered == [repr(("r1", ("w",)))]
        assert not replayable


class TestVerifyAudit:
    def test_matched_skipped_and_mismatched(self, tmp_path, sg_query):
        db = Database.from_facts(SG_FACTS)
        prepared = PreparedQuery(sg_query, db)
        result = prepared.run(("a",), db=db)
        good = {
            "request_id": 1, "outcome": "completed",
            "replayable": True, "constants": ["a"],
            "epoch_hash": epoch_hash(db),
            "result_fingerprint": result_fingerprint(result.answers),
        }
        failed = dict(good, request_id=2, outcome="failed")
        stale = dict(good, request_id=3, epoch_hash="0" * 64)
        lying = dict(good, request_id=4, result_fingerprint="f" * 64)
        path = str(tmp_path / "audit.jsonl")
        with AuditLog(path, flush_every=1) as log:
            for entry in (good, failed, stale, lying):
                log.record(entry)
        report = verify_audit(path, prepared, db)
        assert report["entries"] == 4
        assert report["checked"] == 2
        assert report["matched"] == 1
        assert report["skipped"] == 2
        assert [m[0] for m in report["mismatched"]] == [4]
        assert report["torn_tail"] is None
