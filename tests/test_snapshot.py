"""Epoch-pinned snapshots: read views that never move.

The serving layer evaluates every request against a
``Database.snapshot()`` generation.  The contract under test: a reader
pinned to epoch E observes exactly the first E insertions of each
relation — never a row added after the pin, never a half-applied
``add_facts`` batch — even while writer threads mutate the source
concurrently.
"""

import threading

import pytest

from repro import Database, DatabaseSnapshot, evaluate_query, parse_query
from repro.engine.relation import Relation, WILDCARD


class TestRelationPinned:
    def test_pinned_prefix_matches_insertion_order(self):
        rel = Relation("r", 1)
        for index in range(5):
            rel.add((index,))
        view = rel.pinned(3)
        assert set(view) == {(0,), (1,), (2,)}
        assert view.epoch == 3
        assert len(view) == 3

    def test_pinned_ignores_later_adds(self):
        rel = Relation("r", 1)
        rel.add((1,))
        view = rel.pinned(rel.epoch)
        rel.add((2,))
        assert set(view) == {(1,)}
        assert (2,) not in view

    def test_pinned_bounds_checked(self):
        rel = Relation("r", 1)
        rel.add((1,))
        with pytest.raises(ValueError):
            rel.pinned(2)
        with pytest.raises(ValueError):
            rel.pinned(-1)

    def test_duplicate_adds_do_not_bump_epoch_or_log(self):
        rel = Relation("r", 1)
        rel.add((1,))
        rel.add((1,))
        assert rel.epoch == 1
        assert set(rel.pinned(1)) == {(1,)}

    def test_pinned_lookup_and_match_work(self):
        rel = Relation("r", 2)
        rel.add(("a", 1))
        rel.add(("a", 2))
        view = rel.pinned(1)
        assert list(view.lookup((0,), "a")) == [("a", 1)]
        assert set(view.match(("a", WILDCARD))) == {("a", 1)}


class TestDatabaseSnapshot:
    def test_snapshot_is_frozen_view(self):
        db = Database.from_text("up(a, b). flat(b, c).")
        snap = db.snapshot()
        db.add_fact("up", "b", "c")
        db.add_fact("down", "x", "y")
        assert set(snap.get(("up", 2))) == {("a", "b")}
        assert len(snap.get(("down", 2))) == 0
        assert set(db.get(("up", 2))) == {("a", "b"), ("b", "c")}

    def test_snapshot_is_read_only(self):
        snap = Database.from_text("up(a, b).").snapshot()
        with pytest.raises(TypeError):
            snap.add_fact("up", "x", "y")
        with pytest.raises(TypeError):
            snap.add_facts([("up", ("x", "y"))])

    def test_snapshot_of_snapshot_is_itself(self):
        snap = Database.from_text("up(a, b).").snapshot()
        assert snap.snapshot() is snap
        assert isinstance(snap, DatabaseSnapshot)
        assert isinstance(snap, Database)

    def test_relation_access_never_creates(self):
        snap = Database.from_text("up(a, b).").snapshot()
        missing = snap.relation("ghost", 2)
        assert len(missing) == 0
        assert ("ghost", 2) not in snap.keys()

    def test_snapshot_epochs_are_pinned(self):
        db = Database.from_text("up(a, b).")
        snap = db.snapshot()
        before = snap.epochs((("up", 2),))
        db.add_fact("up", "b", "c")
        assert snap.epochs((("up", 2),)) == before
        assert db.epochs((("up", 2),)) != before

    def test_snapshot_copy_is_mutable_and_detached(self):
        db = Database.from_text("up(a, b).")
        snap = db.snapshot()
        clone = snap.copy()
        clone.add_fact("up", "b", "c")
        assert set(clone.get(("up", 2))) == {("a", "b"), ("b", "c")}
        assert set(snap.get(("up", 2))) == {("a", "b")}

    def test_evaluate_against_snapshot(self):
        query = parse_query("""
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
            ?- sg(a, Y).
        """)
        db = Database.from_text("""
            up(a, b). flat(b, c). down(c, d).
        """)
        snap = db.snapshot()
        before = evaluate_query(query, snap).answers
        db.add_fact("flat", "a", "direct")
        after_live = evaluate_query(query, db).answers
        after_snap = evaluate_query(query, snap).answers
        assert after_snap == before
        assert ("direct",) in after_live
        assert ("direct",) not in after_snap


class TestConcurrentPinning:
    """Property: a reader pinned to epoch E never sees row E+1."""

    WRITERS = 4
    ROWS_PER_WRITER = 300

    def test_reader_never_sees_rows_past_pin(self):
        db = Database()
        db.add_fact("r", 0, 0)
        stop = threading.Event()
        errors = []

        def writer(writer_id):
            for index in range(1, self.ROWS_PER_WRITER + 1):
                db.add_fact("r", writer_id, index)

        def reader():
            try:
                while not stop.is_set():
                    snap = db.snapshot()
                    rel = snap.get(("r", 2))
                    pinned_epoch = rel.epoch
                    first = set(rel)
                    # Re-reads of the same pinned view are frozen ...
                    assert set(rel) == first
                    assert len(first) == pinned_epoch
                    # ... while the live relation only ever grows.
                    assert len(db.get(("r", 2))) >= pinned_epoch
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [
            threading.Thread(target=writer, args=(writer_id,))
            for writer_id in range(self.WRITERS)
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert errors == []
        assert len(db.get(("r", 2))) == (
            self.WRITERS * self.ROWS_PER_WRITER + 1
        )

    def test_add_facts_batches_are_atomic_under_snapshots(self):
        """A snapshot sees whole ``add_facts`` batches or nothing."""
        db = Database()
        batch_size = 7
        batches = 120
        stop = threading.Event()
        errors = []

        def writer():
            for batch_id in range(batches):
                db.add_facts(
                    ("r", (batch_id, item))
                    for item in range(batch_size)
                )

        def reader():
            try:
                while not stop.is_set():
                    snap = db.snapshot()
                    count = len(snap.get(("r", 2)))
                    assert count % batch_size == 0, (
                        "snapshot saw a torn batch: %d rows" % count
                    )
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        reader_threads = [
            threading.Thread(target=reader) for _ in range(3)
        ]
        writer_thread = threading.Thread(target=writer)
        for thread in reader_threads:
            thread.start()
        writer_thread.start()
        writer_thread.join()
        stop.set()
        for thread in reader_threads:
            thread.join()
        assert errors == []
        assert len(db.get(("r", 2))) == batch_size * batches

    def test_interning_identity_stable_across_threads(self):
        """Interned constants keep one identity under concurrent adds."""
        db = Database()
        names = ["c%d" % index for index in range(50)]

        def writer(offset):
            for index, name in enumerate(names):
                db.add_fact("r", name, offset * 1000 + index)

        threads = [
            threading.Thread(target=writer, args=(offset,))
            for offset in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pool = db.intern_pool
        for name in names:
            assert pool.ident(name) == pool.ident(name)
        idents = [pool.ident(name) for name in names]
        assert len(set(idents)) == len(names)
