"""Safety checking and program analysis tests."""

import pytest

from repro.datalog import ProgramAnalysis, parse_program
from repro.datalog.safety import (
    check_program_safety,
    check_rule_safety,
    is_safe,
)
from repro.errors import AnalysisError, SafetyError


class TestSafety:
    def test_safe_rule(self):
        program = parse_program("p(X, Y) :- q(X, Z), r(Z, Y).")
        check_program_safety(program)

    def test_unbound_head_var(self):
        program = parse_program("p(X, Y) :- q(X).")
        with pytest.raises(SafetyError):
            check_program_safety(program)

    def test_negation_needs_bound_vars(self):
        program = parse_program("p(X) :- q(X), not r(X, Y).")
        with pytest.raises(SafetyError):
            check_program_safety(program)

    def test_negation_after_binding_ok(self):
        program = parse_program("p(X) :- q(X, Y), not r(X, Y).")
        check_program_safety(program)

    def test_comparison_needs_bound(self):
        program = parse_program("p(X) :- q(X), X < Y.")
        with pytest.raises(SafetyError):
            check_program_safety(program)

    def test_is_binds_left(self):
        program = parse_program("p(X, J) :- q(X, I), J is I + 1.")
        check_program_safety(program)

    def test_is_needs_ground_right(self):
        program = parse_program("p(X, J) :- q(X), J is I + 1.")
        with pytest.raises(SafetyError):
            check_program_safety(program)

    def test_in_binds_left(self):
        program = parse_program("p(A) :- s(T), A in T.")
        check_program_safety(program)

    def test_eq_binds_one_side(self):
        program = parse_program("p(X, Y) :- q(X), Y = X.")
        check_program_safety(program)
        program = parse_program("p(X, Y) :- q(X), X = Y.")
        check_program_safety(program)

    def test_eq_both_unbound_unsafe(self):
        program = parse_program("p(X, Y) :- q(X), Y = Z.")
        with pytest.raises(SafetyError):
            check_program_safety(program)

    def test_bound_head_vars_seed(self):
        rule = parse_program("p(X, Y) :- d(X, Y1), Y is Y1 + 0.").rules[0]
        check_rule_safety(rule)

    def test_is_safe_wrapper(self):
        assert is_safe(parse_program("p(X) :- q(X)."))
        assert not is_safe(parse_program("p(X) :- q(Y)."))

    def test_head_expression_vars_must_be_bound(self):
        # Head expressions fold at emission; their variables come from
        # the body, so an unbound one is a safety error.
        program = parse_program("p(X, I + 1) :- q(X).")
        with pytest.raises(SafetyError):
            check_program_safety(program)


SG = """
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
"""

MUTUAL = """
even(X) :- zero(X).
even(X) :- succ(X, Y), odd(Y).
odd(X) :- succ(X, Y), even(Y).
"""


class TestAnalysis:
    def test_sg_single_clique(self):
        analysis = ProgramAnalysis(parse_program(SG))
        cliques = analysis.recursive_cliques()
        assert len(cliques) == 1
        assert cliques[0].predicates == {("sg", 2)}

    def test_exit_vs_recursive(self):
        analysis = ProgramAnalysis(parse_program(SG))
        clique = analysis.clique_of(("sg", 2))
        assert len(clique.exit_rules) == 1
        assert len(clique.recursive_rules) == 1

    def test_mutual_recursion_one_clique(self):
        analysis = ProgramAnalysis(parse_program(MUTUAL))
        clique = analysis.clique_of(("even", 1))
        assert clique.predicates == {("even", 1), ("odd", 1)}

    def test_mutually_recursive_predicate_pairs(self):
        analysis = ProgramAnalysis(parse_program(MUTUAL))
        assert analysis.mutually_recursive(("even", 1), ("odd", 1))
        assert not analysis.mutually_recursive(("even", 1), ("zero", 1))

    def test_depends_on_transitive(self):
        program = parse_program("""
            a(X) :- b(X).
            b(X) :- c(X).
            c(X) :- base(X).
        """)
        analysis = ProgramAnalysis(program)
        assert analysis.depends_on(("a", 1), ("c", 1))
        assert not analysis.depends_on(("c", 1), ("a", 1))

    def test_topological_order(self):
        program = parse_program("""
            top(X) :- mid(X).
            mid(X) :- mid(X1), step(X1, X).
            mid(X) :- base(X).
        """)
        analysis = ProgramAnalysis(program)
        keys = [tuple(sorted(c.predicates)) for c in analysis.components]
        assert keys.index((("mid", 1),)) < keys.index((("top", 1),))

    def test_linearity(self):
        analysis = ProgramAnalysis(parse_program(SG))
        assert analysis.is_linear()
        nonlinear = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        """)
        assert not ProgramAnalysis(nonlinear).is_linear()

    def test_recursive_atom(self):
        analysis = ProgramAnalysis(parse_program(SG))
        clique = analysis.clique_of(("sg", 2))
        rule = clique.recursive_rules[0]
        assert clique.recursive_atom(rule).pred == "sg"

    def test_recursive_atom_rejects_nonlinear(self):
        nonlinear = parse_program("""
            tc(X, Y) :- arc(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        """)
        analysis = ProgramAnalysis(nonlinear)
        clique = analysis.clique_of(("tc", 2))
        with pytest.raises(AnalysisError):
            clique.recursive_atom(clique.recursive_rules[0])

    def test_split_body_positional(self):
        analysis = ProgramAnalysis(parse_program(SG))
        clique = analysis.clique_of(("sg", 2))
        rule = clique.recursive_rules[0]
        left, rec, right = clique.split_body(rule)
        assert [a.pred for a in left] == ["up"]
        assert rec.pred == "sg"
        assert [a.pred for a in right] == ["down"]

    def test_base_predicates(self):
        analysis = ProgramAnalysis(parse_program(SG))
        assert analysis.base_predicates() == {
            ("flat", 2), ("up", 2), ("down", 2)
        }

    def test_clique_of_base_is_none(self):
        analysis = ProgramAnalysis(parse_program(SG))
        assert analysis.clique_of(("up", 2)) is None

    def test_facts_do_not_create_derived(self):
        program = parse_program("p(a). q(X) :- p(X).")
        analysis = ProgramAnalysis(program)
        assert ("p", 1) not in analysis.derived
        assert ("q", 1) in analysis.derived
