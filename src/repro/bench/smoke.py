"""Benchmark smoke pass: a fast work/time summary for CI artifacts.

Runs a small, fixed subset of the paper's workloads under the main
strategies and writes one ``BENCH_<tag>.json`` file containing, per
(workload, method) cell, the deterministic work counters and the
wall-clock time.  CI uploads the file on every push, so the perf
trajectory of the repository accumulates run over run.

The pass is deliberately tiny (a few hundred milliseconds) — it is a
trend probe, not a rigorous measurement; the real experiments live in
``benchmarks/``.

Usage::

    python -m repro.bench.smoke [output-directory]
"""

import json
import os
import platform
import sys
import time

from ..data.workloads import WORKLOADS
from .export import rows_to_records
from .harness import run_matrix

#: (workload name, make_db kwargs, methods) cells of the smoke pass.
SMOKE_CELLS = (
    ("multi_rule", {"depth": 32},
     ("encoded_counting", "extended_counting", "pointer_counting")),
    ("sg_tree", {"fanout": 2, "depth": 6},
     ("magic", "pointer_counting")),
    ("sg_chain", {"depth": 32},
     ("magic", "classical_counting", "pointer_counting")),
)

#: (workload name, make_db kwargs) cells probed through the resilient
#: runner.  ``sg_chain`` succeeds on the first stage (depth 0);
#: ``sg_cyclic`` forces real degradation (pointer and extended counting
#: both fail on cyclic data), so the artifact tracks fallback cost.
RESILIENCE_CELLS = (
    ("sg_chain", {"depth": 32}),
    ("sg_cyclic", {}),
)


def run_smoke():
    """Run the smoke cells; returns flattened benchmark records."""
    rows = []
    for name, kwargs, methods in SMOKE_CELLS:
        workload = WORKLOADS[name]
        db, _source = workload.make_db(**kwargs)
        rows.extend(
            run_matrix(
                workload.query, db, list(methods),
                label=name, params=kwargs,
            )
        )
    return rows_to_records(rows)


def run_resilience_probe():
    """Run the resilience cells; returns one record per cell.

    Each record tracks the robustness counters the roadmap cares
    about: ``budget_aborts`` (attempts killed by a budget) and
    ``fallback_depth`` (failed stages before the winning one), plus
    the per-attempt error classes so a silent change in degradation
    behaviour shows up in the artifact diff.
    """
    from ..exec.resilient import FallbackPolicy, run_resilient

    records = []
    for name, kwargs in RESILIENCE_CELLS:
        workload = WORKLOADS[name]
        db, _source = workload.make_db(**kwargs)
        # A generous budget: normal cells never hit it, so any abort
        # recorded here is a robustness regression.
        policy = FallbackPolicy(timeout=30.0)
        report = run_resilient(workload.query, db, policy)
        records.append(
            {
                "label": name,
                "method": report.method,
                "answers": len(report.result.answers),
                "fallback_depth": report.fallback_depth,
                "budget_aborts": report.budget_aborts,
                "attempts": [
                    {"method": a.method, "error": a.error_class,
                     "elapsed": a.elapsed}
                    for a in report.attempts
                ],
                "total_elapsed": report.total_elapsed,
            }
        )
    return records


def run_storage_probe():
    """Run one fixed cell under both storage backends.

    The ``storage`` block of the artifact: per backend, the wall-clock
    time, the semantic work counters, and the database's
    ``storage_info()`` descriptor — so the perf trajectory records the
    columnar speedup run over run, and a counter divergence between
    the backends (they must be identical) shows up in the diff.
    """
    from ..engine.columnar import columnar_enabled, use_backend
    from ..exec.strategies import run_strategy

    cells = (
        ("multi_rule", {"depth": 32}, "pointer_counting"),
        ("sg_tree", {"fanout": 2, "depth": 6}, "magic"),
    )
    sides = {}
    for enabled, label in ((False, "rows"), (True, "columnar")):
        records = []
        for name, kwargs, method in cells:
            workload = WORKLOADS[name]
            with use_backend(enabled):
                db, _source = workload.make_db(**kwargs)
                result = run_strategy(method, workload.query, db)
            info = db.storage_info()
            records.append(
                {
                    "label": name,
                    "method": method,
                    "backend": info["backend"],
                    "column_bytes": info["column_bytes"],
                    "answers": len(result.answers),
                    "work": result.stats.total_work,
                    "facts_derived": result.stats.facts_derived,
                    "elapsed": result.elapsed,
                }
            )
        sides[label] = records
    counters_match = all(
        rows["answers"] == cols["answers"]
        and rows["work"] == cols["work"]
        and rows["facts_derived"] == cols["facts_derived"]
        for rows, cols in zip(sides["rows"], sides["columnar"])
    )
    return {
        "default_backend": "columnar" if columnar_enabled() else "rows",
        "rows": sides["rows"],
        "columnar": sides["columnar"],
        "counters_match": counters_match,
    }


def run_guard_overhead():
    """Measure the resource-guard overhead on one fixed cell.

    Runs ``sg_chain``/``pointer_counting`` once without a budget and
    once under a loose :class:`ResourceBudget`, and reports both times.
    The round-boundary checks are designed to be O(rounds), not
    O(tuples), so the guarded run should stay within a few percent of
    the unguarded one (the e8/a3 benchmarks enforce 5 %).
    """
    from ..engine.guard import ResourceBudget
    from ..exec.strategies import run_strategy

    workload = WORKLOADS["sg_chain"]
    db, _source = workload.make_db(depth=64)
    unguarded = run_strategy("pointer_counting", workload.query, db)
    guarded = run_strategy(
        "pointer_counting", workload.query, db,
        budget=ResourceBudget(timeout=30.0, max_facts=10_000_000),
    )
    assert guarded.answers == unguarded.answers
    return {
        "label": "sg_chain",
        "method": "pointer_counting",
        "unguarded_elapsed": unguarded.elapsed,
        "guarded_elapsed": guarded.elapsed,
        "budget_aborts": 0,
    }


def run_query_cache_probe():
    """Measure the prepared-query layer on a repeated-binding stream.

    Cold: a fresh ``run_strategy`` pipeline per binding.  Warm: one
    :class:`~repro.exec.prepared.PreparedQuery` with an answer cache
    and a counting-table store.  A third pass with an empty answer
    cache but the warm store counts how many counting sets phase 1
    reused.  Answers are cross-checked on every binding.
    """
    import time as time_module

    from ..data.workloads import WORKLOADS, forest_bindings, sg_forest
    from ..exec.cache import AnswerCache, CountingTableStore
    from ..exec.prepared import PreparedQuery
    from ..exec.strategies import run_strategy

    trees, queries = 4, 16
    db, _source = sg_forest(trees=trees, fanout=2, depth=5)
    bindings = forest_bindings(trees=trees, queries=queries)
    cache = AnswerCache(capacity=64)
    store = CountingTableStore(capacity=32)
    prepared = PreparedQuery(
        WORKLOADS["sg_forest"].query, db, cache=cache,
        counting_store=store,
    )

    started = time_module.perf_counter()
    cold = [
        run_strategy(prepared.method, prepared.bind(binding), db)
        for binding in bindings
    ]
    cold_elapsed = time_module.perf_counter() - started

    started = time_module.perf_counter()
    warm = prepared.run_batch(bindings, db=db)
    warm_elapsed = time_module.perf_counter() - started

    answers_match = all(
        w.answers == c.answers for w, c in zip(warm, cold)
    )

    reuse_client = PreparedQuery(
        WORKLOADS["sg_forest"].query, db,
        cache=AnswerCache(capacity=64), counting_store=store,
    )
    hits_before = store.hits
    reuse = reuse_client.run_batch(bindings[:trees], db=db)
    answers_match = answers_match and all(
        r.answers == c.answers for r, c in zip(reuse, cold)
    )

    return {
        "label": "sg_forest",
        "method": prepared.method,
        "queries": queries,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "hit_rate": cache.hit_rate,
        "cold_elapsed": cold_elapsed,
        "warm_elapsed": warm_elapsed,
        "counting_table_reuse": store.hits - hits_before,
        "answers_match": answers_match,
    }


def run_service_probe():
    """Exercise the serving layer: one healthy and one poisoned pass.

    Healthy: every binding is admitted and completes on the primary
    strategy; answers are cross-checked against single-threaded runs.
    Poisoned: :func:`~repro.data.workloads.poison_forest` closes an
    up-cycle in one tree, the primary strategy fails typed until its
    breaker trips, and requests still answer through the fallback
    chain.  The poisoned pass uses one worker so every counter —
    admissions, fallbacks, breaker trips and rejections — is
    deterministic and a behaviour drift shows up in the artifact diff.
    """
    from ..data.workloads import (
        WORKLOADS,
        forest_bindings,
        forest_root,
        poison_forest,
        sg_forest,
    )
    from ..exec.prepared import PreparedQuery
    from ..exec.strategies import run_strategy
    from ..serve import BreakerBoard, QueryService, RetryPolicy

    trees, queries = 2, 8
    db, _source = sg_forest(trees=trees, fanout=2, depth=4)
    prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
    bindings = forest_bindings(trees=trees, queries=queries)

    with QueryService(prepared, db, workers=2, queue_capacity=queries,
                      retry=RetryPolicy(seed=0)) as service:
        futures = [service.submit(b, timeout=30.0) for b in bindings]
        results = [f.result(timeout=60.0) for f in futures]
    answers_match = all(
        r.answers == run_strategy(
            prepared.method, prepared.bind(b), db
        ).answers
        for b, r in zip(bindings, results)
    )
    healthy = service.counters()

    poison_forest(db, tree=trees - 1)
    poisoned_binding = (forest_root(trees - 1),)
    baseline = run_strategy(
        "naive", prepared.bind(poisoned_binding), db
    ).answers
    board = BreakerBoard(threshold=2, cooldown=60.0)
    with QueryService(prepared, db, workers=1, queue_capacity=queries,
                      breakers=board) as service:
        poisoned = [
            service.run(poisoned_binding, wait=60.0) for _ in range(4)
        ]
    answers_match = answers_match and all(
        r.answers == baseline for r in poisoned
    )
    degraded = service.counters()

    keep = ("submitted", "admitted", "completed", "failed",
            "shed_overload", "shed_expired", "retried", "fallbacks",
            "breaker_trips", "breaker_rejections")
    return {
        "label": "sg_forest",
        "method": prepared.method,
        "queries": queries,
        "answers_match": answers_match,
        "healthy": {key: healthy[key] for key in keep},
        "poisoned": dict(
            {key: degraded[key] for key in keep},
            breaker_states=degraded["breaker_states"],
        ),
    }


def run_tenancy_probe():
    """Exercise the multi-tenant serving layer on a tiny two-tenant mix.

    A ``well`` tenant submits a bounded batch of registered-form
    requests; a ``hog`` tenant submits a burst far past its
    token-bucket quota, so most of it is shed typed
    (``QuotaExceeded``/``Overloaded``, each carrying a
    machine-readable ``retry_after``) while everything admitted still
    answers.  The artifact tracks the per-tenant admission ledgers,
    whether every shed was typed with a hint, and whether every served
    answer matches single-threaded evaluation — so a drift in quota
    enforcement, fair scheduling, or tenant isolation shows up in the
    artifact diff.
    """
    from ..data.workloads import WORKLOADS, forest_bindings, sg_forest
    from ..errors import Overloaded, QuotaExceeded
    from ..exec.strategies import run_strategy
    from ..serve import QueryService
    from ..tenancy import FormRegistry, TenantQuota

    trees, queries = 2, 8
    db, _source = sg_forest(trees=trees, fanout=2, depth=3)
    registry = FormRegistry(db=db)
    registry.register("sg", WORKLOADS["sg_forest"].query, db=db)
    bindings = forest_bindings(trees=trees, queries=queries)
    tenants = {
        "well": TenantQuota(weight=2.0, queue_capacity=queries),
        "hog": TenantQuota(rate=50.0, burst=2.0, queue_capacity=4),
    }
    service = QueryService(
        None, db, workers=2, queue_capacity=queries,
        registry=registry, tenants=tenants,
    )
    well = [service.submit(binding, tenant="well", form="sg")
            for binding in bindings]
    hog, sheds = [], []
    for binding in bindings * 6:
        try:
            hog.append(
                (binding, service.submit(binding, tenant="hog",
                                         form="sg"))
            )
        except (QuotaExceeded, Overloaded) as exc:
            sheds.append(exc)
    results = [future.result(timeout=60.0) for future in well]
    service.drain()
    form = registry.get("sg").prepared
    answers_match = all(
        result.answers == run_strategy(
            form.method, form.bind(binding), db
        ).answers
        for binding, result in (
            list(zip(bindings, results))
            + [(binding, future.result(0)) for binding, future in hog
               if future.exception(timeout=0) is None]
        )
    )
    counters = service.counters()
    keep = ("submitted", "admitted", "completed", "failed",
            "shed_overload", "shed_quota", "inflight")
    return {
        "label": "sg_forest",
        "method": form.method,
        "queries": queries,
        "answers_match": answers_match,
        # Every rate shed carries a retry_after hint; a queue_full
        # shed may predate the first completion, before the service
        # has a drain-time estimate to offer.
        "sheds_typed_with_hints": all(
            exc.tenant == "hog"
            and (not isinstance(exc, QuotaExceeded)
                 or exc.retry_after is not None)
            for exc in sheds
        ),
        "forms": counters["forms"],
        "tenants": {
            name: {key: block[key] for key in keep}
            for name, block in counters["tenants"].items()
        },
    }


def run_parallel_probe():
    """Exercise the sharded-fixpoint executor on one fixed cell.

    Runs the S1 cylinder once through the serial oracle (the same
    engine inline, zero processes) and once on a two-worker pool, and
    records the artifact's ``parallel`` block: the wall-clock speedup,
    the exchange volume, the barrier count, and whether the pool run
    reproduced the oracle's answers and merged work counters exactly —
    the executor's core contract, so a divergence shows up in the
    artifact diff before any differential suite runs.
    """
    from ..exec.strategies import run_strategy

    workload = WORKLOADS["sg_cylinder"]
    db, _source = workload.make_db(width=6, height=16)
    serial = run_strategy(
        "parallel", workload.query, db, workers=1, inline=True
    )
    pooled = run_strategy("parallel", workload.query, db, workers=2)
    return {
        "label": "sg_cylinder",
        "workers": 2,
        "serial_elapsed": serial.elapsed,
        "parallel_elapsed": pooled.elapsed,
        "speedup": serial.elapsed / max(pooled.elapsed, 1e-9),
        "exchange_bytes": pooled.extras["exchange_bytes"],
        "barriers": pooled.extras["barriers"],
        "answers": len(pooled.answers),
        "answers_match": pooled.answers == serial.answers,
        "counters_match": (pooled.stats.as_dict()
                           == serial.stats.as_dict()),
        "plan": pooled.extras["plan"],
    }


def run_self_healing_probe():
    """Exercise the self-healing supervision layer on one fixed drill.

    The barrier-crash drill at probe size: SIGKILL worker 1 of a
    two-worker pool at its second round barrier and let the default
    reassign policy repair the pool in place.  The artifact tracks the
    recovery counters (repairs, rounds replayed, recovery seconds) and
    whether the healed run reproduced the undisturbed run's answers
    and merged work counters exactly — the recovery invariant — so a
    drift in either the repair mechanics or their cost shows up in the
    artifact diff.
    """
    from ..engine.faults import FaultInjector
    from ..exec.strategies import run_strategy

    workload = WORKLOADS["sg_cylinder"]
    db, _source = workload.make_db(width=6, height=16)
    oracle = run_strategy("parallel", workload.query, db, workers=2)
    injector = FaultInjector(seed=0).crash_at_barrier(
        worker=1, barrier=2
    )
    with injector:
        healed = run_strategy(
            "parallel", workload.query, db, workers=2
        )
    recovery = healed.extras["recovery"]
    return {
        "label": "sg_cylinder",
        "workers": 2,
        "mode": recovery["policy"]["mode"],
        "crashes": recovery["crashes"],
        "hangs": recovery["hangs"],
        "repairs": recovery["repairs"],
        "reassignments": recovery["reassignments"],
        "respawns": recovery["respawns"],
        "rounds_replayed": recovery["rounds_replayed"],
        "recovery_seconds": recovery["recovery_seconds"],
        "checkpoints": recovery["checkpoints"],
        "healed_elapsed": healed.elapsed,
        "oracle_elapsed": oracle.elapsed,
        "answers_match": healed.answers == oracle.answers,
        "counters_match": (healed.stats.as_dict()
                           == oracle.stats.as_dict()),
    }


def run_durability_probe():
    """Exercise the durability layer: logged ingest, crash, recovery.

    One small ingest through a :class:`~repro.durability.durable.
    DurableDatabase` (``fsync="batch"``), a checkpoint, a suffix batch,
    then recovery of the directory.  The artifact tracks the WAL's own
    cost counters (appends, bytes, fsyncs, seconds — the price of
    durability), the recovery shape (checkpoint sequence + records
    replayed), and whether the recovered state is byte-identical to
    the uncrashed ingest — so a silent regression in either the
    overhead or the recovery contract shows up in the artifact diff.
    """
    import shutil
    import tempfile
    import time as time_module

    from ..durability import recover
    from ..durability.durable import DurableDatabase
    from ..engine.database import Database

    batches = [
        [("edge", ("n%d" % i, "n%d" % (i + 1)))
         for i in range(k * 64, (k + 1) * 64)]
        for k in range(16)
    ]
    directory = tempfile.mkdtemp(prefix="repro-smoke-dur-")
    try:
        control = Database()
        db = DurableDatabase(directory, fsync="batch")
        started = time_module.perf_counter()
        for batch in batches:
            db.add_facts(batch)
        db.flush()
        ingest_elapsed = time_module.perf_counter() - started
        for batch in batches:
            control.add_facts(batch)
        stats = db.wal_stats
        db.checkpoint()
        suffix = [("edge", ("s0", "s1")), ("edge", ("s1", "s2"))]
        db.add_facts(suffix)
        control.add_facts(suffix)
        db.close()

        started = time_module.perf_counter()
        recovered, report = recover(directory, fsync="off")
        recovery_elapsed = time_module.perf_counter() - started
        state_ok = (
            recovered.to_text() == control.to_text()
            and recovered.lineage == report.lineage
        )
        recovered.close()
        return {
            "batches": len(batches),
            "facts": control.total_facts(),
            "ingest_elapsed": ingest_elapsed,
            "wal_appends": stats["appends"],
            "wal_bytes": stats["bytes"],
            "wal_fsyncs": stats["fsyncs"],
            "wal_append_seconds": stats["append_seconds"],
            "wal_overhead": stats["append_seconds"]
            / max(ingest_elapsed - stats["append_seconds"], 1e-9),
            "recovery_elapsed": recovery_elapsed,
            "checkpoint_seq": report.checkpoint_seq,
            "replayed": report.replayed,
            "wal_records": report.wal_records,
            "state_identical": state_ok,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def write_smoke(directory=".", tag=None):
    """Run the smoke pass and write ``BENCH_<tag>.json`` in ``directory``.

    The default tag is a UTC timestamp, so successive CI runs never
    overwrite each other's artifacts.  Returns the file path.
    """
    records = run_smoke()
    if tag is None:
        tag = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    payload = {
        "tag": tag,
        "python": platform.python_version(),
        "records": records,
        "storage": run_storage_probe(),
        "resilience": run_resilience_probe(),
        "guard_overhead": run_guard_overhead(),
        "query_cache": run_query_cache_probe(),
        "service": run_service_probe(),
        "tenancy": run_tenancy_probe(),
        "parallel": run_parallel_probe(),
        "self_healing": run_self_healing_probe(),
        "durability": run_durability_probe(),
        "total_elapsed": sum(
            r["elapsed"] for r in records if r["elapsed"] is not None
        ),
    }
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_%s.json" % tag)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    directory = argv[0] if argv else "."
    path = write_smoke(directory)
    print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
