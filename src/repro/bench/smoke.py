"""Benchmark smoke pass: a fast work/time summary for CI artifacts.

Runs a small, fixed subset of the paper's workloads under the main
strategies and writes one ``BENCH_<tag>.json`` file containing, per
(workload, method) cell, the deterministic work counters and the
wall-clock time.  CI uploads the file on every push, so the perf
trajectory of the repository accumulates run over run.

The pass is deliberately tiny (a few hundred milliseconds) — it is a
trend probe, not a rigorous measurement; the real experiments live in
``benchmarks/``.

Usage::

    python -m repro.bench.smoke [output-directory]
"""

import json
import os
import platform
import sys
import time

from ..data.workloads import WORKLOADS
from .export import rows_to_records
from .harness import run_matrix

#: (workload name, make_db kwargs, methods) cells of the smoke pass.
SMOKE_CELLS = (
    ("multi_rule", {"depth": 32},
     ("encoded_counting", "extended_counting", "pointer_counting")),
    ("sg_tree", {"fanout": 2, "depth": 6},
     ("magic", "pointer_counting")),
    ("sg_chain", {"depth": 32},
     ("magic", "classical_counting", "pointer_counting")),
)


def run_smoke():
    """Run the smoke cells; returns flattened benchmark records."""
    rows = []
    for name, kwargs, methods in SMOKE_CELLS:
        workload = WORKLOADS[name]
        db, _source = workload.make_db(**kwargs)
        rows.extend(
            run_matrix(
                workload.query, db, list(methods),
                label=name, params=kwargs,
            )
        )
    return rows_to_records(rows)


def write_smoke(directory=".", tag=None):
    """Run the smoke pass and write ``BENCH_<tag>.json`` in ``directory``.

    The default tag is a UTC timestamp, so successive CI runs never
    overwrite each other's artifacts.  Returns the file path.
    """
    records = run_smoke()
    if tag is None:
        tag = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    payload = {
        "tag": tag,
        "python": platform.python_version(),
        "records": records,
        "total_elapsed": sum(
            r["elapsed"] for r in records if r["elapsed"] is not None
        ),
    }
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_%s.json" % tag)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    directory = argv[0] if argv else "."
    path = write_smoke(directory)
    print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
