"""Benchmark harness: strategy matrices, sweeps and table rendering."""

from .export import rows_to_records, write_csv, write_json
from .harness import BenchRow, matrix_table, run_matrix, summarize, sweep
from .reporting import format_table, speedup

__all__ = [
    "BenchRow",
    "format_table",
    "matrix_table",
    "rows_to_records",
    "run_matrix",
    "speedup",
    "summarize",
    "sweep",
    "write_csv",
    "write_json",
]
