"""Benchmark harness: strategy matrices, sweeps and table rendering."""

from .export import rows_to_records, write_csv, write_json
from .harness import BenchRow, matrix_table, run_matrix, summarize, sweep
from .reporting import format_table, speedup

# NOTE: ``.smoke`` is deliberately not imported here — it is an
# executable module (``python -m repro.bench.smoke``) and importing it
# from the package __init__ triggers a double-import RuntimeWarning
# under ``runpy``.  Import it explicitly: ``from repro.bench.smoke
# import run_smoke, write_smoke``.

__all__ = [
    "BenchRow",
    "format_table",
    "matrix_table",
    "rows_to_records",
    "run_matrix",
    "speedup",
    "summarize",
    "sweep",
    "write_csv",
    "write_json",
]
