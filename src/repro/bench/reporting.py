"""Plain-text table rendering for benchmark results.

The paper's evaluation content is qualitative (who wins, by what
factor); the harness therefore prints compact ASCII tables with a
deterministic *work* column (join effort counted by the engine) next to
wall-clock time, plus per-experiment extra columns (counting-set sizes,
magic-set sizes, ...).
"""


def format_table(headers, rows, title=None):
    """Render ``rows`` (lists of values) under ``headers`` as text."""
    columns = [str(h) for h in headers]
    text_rows = [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(columns)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _format_cell(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001:
            return "%.2e" % value
        return "%.4f" % value
    if value is None:
        return "-"
    return str(value)


def speedup(baseline_work, work):
    """Work ratio baseline/method, rendered as e.g. ``3.4x``."""
    if not work:
        return "-"
    return "%.1fx" % (baseline_work / work)
