"""Export benchmark rows to CSV or JSON for downstream analysis.

The ASCII tables are for eyeballing; these exporters produce machine-
readable records — one per (workload, method) cell — with the stats
counters flattened and the per-method extras preserved under their own
keys.  The CLI's ``bench`` subcommand exposes both via ``--csv`` and
``--json``.
"""

import csv
import json

#: Stable leading columns; extras follow alphabetically.
BASE_FIELDS = (
    "label", "method", "answers", "work", "elapsed",
    "rule_firings", "tuples_scanned", "facts_derived",
    "facts_duplicate", "iterations", "error",
)


def rows_to_records(rows):
    """Flatten :class:`~repro.bench.harness.BenchRow` objects."""
    records = []
    for row in rows:
        record = {
            "label": row.label,
            "method": row.method,
            "answers": row.answers,
            "work": row.work,
            "elapsed": row.elapsed,
            "error": (
                None if row.error is None else type(row.error).__name__
            ),
        }
        if row.stats is not None:
            record.update(
                {
                    "rule_firings": row.stats.rule_firings,
                    "tuples_scanned": row.stats.tuples_scanned,
                    "facts_derived": row.stats.facts_derived,
                    "facts_duplicate": row.stats.facts_duplicate,
                    "iterations": row.stats.iterations,
                }
            )
        else:
            record.update(
                {
                    "rule_firings": None,
                    "tuples_scanned": None,
                    "facts_derived": None,
                    "facts_duplicate": None,
                    "iterations": None,
                }
            )
        for key, value in sorted(row.extras.items()):
            record["extra_%s" % key] = value
        for key, value in sorted(row.params.items()):
            record["param_%s" % key] = value
        records.append(record)
    return records


def _fieldnames(records):
    names = list(BASE_FIELDS)
    seen = set(names)
    for record in records:
        for key in record:
            if key not in seen:
                seen.add(key)
                names.append(key)
    return names


def write_csv(rows, path):
    """Write bench rows as CSV; returns the number of records."""
    records = rows_to_records(rows)
    fieldnames = _fieldnames(records)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames,
                                restval="")
        writer.writeheader()
        for record in records:
            writer.writerow(record)
    return len(records)


def write_json(rows, path):
    """Write bench rows as a JSON array; returns the record count."""
    records = rows_to_records(rows)
    with open(path, "w") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(records)
