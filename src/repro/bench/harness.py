"""Benchmark harness: run strategy matrices over parameter sweeps.

:func:`run_matrix` evaluates one query under several strategies and
returns :class:`BenchRow` records; :func:`sweep` repeats a matrix over
a parameter grid.  Rows carry the deterministic work counters and the
per-strategy extras, and :func:`matrix_table` renders the comparison
the way the paper's discussion frames it (method vs work, with the
magic-set method as the reference point).

Every experiment module under ``benchmarks/`` builds on these
functions, so a single entry point regenerates any experiment::

    from repro.bench import run_matrix, matrix_table
    rows = run_matrix(query, db, ["magic", "pointer_counting"])
    print(matrix_table(rows))
"""

from ..errors import ReproError
from ..exec.strategies import run_strategy
from .reporting import format_table, speedup


class BenchRow:
    """One (strategy, database) measurement."""

    __slots__ = ("label", "method", "answers", "work", "elapsed", "stats",
                 "extras", "error", "params")

    def __init__(self, label, method, result=None, error=None, params=None):
        self.label = label
        self.method = method
        self.params = dict(params or {})
        if result is not None:
            self.answers = len(result.answers)
            self.work = result.stats.total_work
            self.elapsed = result.elapsed
            self.stats = result.stats
            self.extras = result.extras
            self.error = None
        else:
            self.answers = None
            self.work = None
            self.elapsed = None
            self.stats = None
            self.extras = {}
            self.error = error

    def __repr__(self):
        if self.error is not None:
            return "BenchRow(%s/%s: %s)" % (
                self.label, self.method, type(self.error).__name__
            )
        return "BenchRow(%s/%s: work=%d)" % (
            self.label, self.method, self.work
        )


def run_matrix(query, db, methods, label="", params=None):
    """Run ``query`` over ``db`` under every strategy in ``methods``.

    Strategies raising a :class:`ReproError` produce a row with the
    error recorded instead of numbers — divergence *is* a result for
    several experiments (E5 expects classical counting to fail) — so a
    matrix always completes.  Methods that do produce answers are
    cross-checked against the first one; a disagreement raises
    ``AssertionError`` because it would invalidate the comparison.
    """
    rows = []
    reference = None
    for method in methods:
        try:
            result = run_strategy(method, query, db)
        except ReproError as exc:
            rows.append(BenchRow(label, method, error=exc, params=params))
            continue
        row = BenchRow(label, method, result=result, params=params)
        rows.append(row)
        if reference is None:
            reference = result.answers
        elif result.answers != reference:
            raise AssertionError(
                "strategy %s disagrees on %s: %d vs %d answers"
                % (method, label, len(result.answers), len(reference))
            )
    return rows


def sweep(query, make_db, methods, param_grid, label_key=None):
    """Run a matrix for every parameter assignment in ``param_grid``.

    ``param_grid`` is an iterable of dicts passed to ``make_db``;
    ``make_db(**params)`` must return ``(db, source)`` (the source is
    ignored — queries hard-code their constant).  ``label_key`` picks
    the parameter used as the row label.
    """
    rows = []
    for params in param_grid:
        db, _source = make_db(**params)
        if label_key is not None:
            label = "%s=%s" % (label_key, params[label_key])
        else:
            label = ",".join(
                "%s=%s" % item for item in sorted(params.items())
            )
        rows.extend(
            run_matrix(query, db, methods, label=label, params=params)
        )
    return rows


def matrix_table(rows, extra_columns=(), title=None, baseline="magic"):
    """Render bench rows as a table with a speedup-vs-baseline column."""
    headers = ["workload", "method", "answers", "work",
               "vs_%s" % baseline, "seconds"]
    headers.extend(extra_columns)
    baseline_work = {}
    for row in rows:
        if row.method == baseline and row.work is not None:
            baseline_work[row.label] = row.work
    table_rows = []
    for row in rows:
        if row.error is not None:
            cells = [row.label, row.method,
                     "(%s)" % type(row.error).__name__, None, None, None]
            cells.extend(None for _ in extra_columns)
            table_rows.append(cells)
            continue
        base = baseline_work.get(row.label)
        cells = [
            row.label,
            row.method,
            row.answers,
            row.work,
            speedup(base, row.work) if base else "-",
            row.elapsed,
        ]
        cells.extend(row.extras.get(name) for name in extra_columns)
        table_rows.append(cells)
    return format_table(headers, table_rows, title=title)


def summarize(rows):
    """Per-method totals over a sweep (used in EXPERIMENTS.md)."""
    totals = {}
    for row in rows:
        if row.work is None:
            continue
        entry = totals.setdefault(
            row.method, {"work": 0, "elapsed": 0.0, "runs": 0}
        )
        entry["work"] += row.work
        entry["elapsed"] += row.elapsed
        entry["runs"] += 1
    return totals
