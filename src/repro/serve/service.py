"""A concurrent, overload-safe, multi-tenant front end over prepared
queries.

:class:`QueryService` serves prepared query forms from a pool of worker
threads, with the failure modes of a production query tier designed in
rather than bolted on:

* **Admission control / load shedding** — every tenant owns a bounded
  admission lane.  A submit that finds its lane full fails *fast* with
  a typed :class:`~repro.errors.Overloaded` error (carrying the tenant
  and a ``retry_after`` hint) instead of piling latency onto every
  queued request behind it.  Queue depth can therefore never exceed the
  configured capacity, no matter the offered load.
* **Weighted-fair scheduling** — workers drain the lanes by deficit
  round-robin (:class:`~repro.tenancy.scheduler.FairScheduler`), so
  under saturation each tenant's long-run service is proportional to
  its quota weight and a hog's backlog cannot starve a well-behaved
  neighbour.  An untenanted service has a single default lane, which
  degenerates to exactly the old FIFO queue.
* **Tenant quotas** — token-bucket request rates, concurrent-slot caps
  and cumulative resource pools (facts / rounds / wall-clock seconds,
  charged post-paid from each attempt's budget usage) shed with typed
  :class:`~repro.errors.QuotaExceeded` carrying the refill time as
  ``retry_after``.  One tenant exhausting its allowance never affects
  another's admissions.
* **Form registry** — with a
  :class:`~repro.tenancy.forms.FormRegistry` attached, tenants submit
  ``(form_name, constants)``; the form's static cost class prices its
  deficit-round-robin cost, so heavy forms drain a tenant's scheduling
  weight faster than cheap lookups.
* **Deadline propagation** — each request carries a deadline.  It is
  threaded into every evaluation attempt as a derived
  :class:`~repro.engine.guard.ResourceBudget`
  (:meth:`~repro.engine.guard.ResourceBudget.child` clamps each
  attempt to the request's remaining allowance), and a queued request
  whose deadline already passed is shed by the worker without spending
  any join work on it.
* **Retries with seeded backoff** — attempts that die on a
  timing-dependent budget abort are retried under a
  :class:`~repro.serve.retry.RetryPolicy`; delays are deterministic per
  ``(seed, request id, tenant stream)``, so one tenant's schedule
  replays identically whatever its neighbours do.  Deterministic aborts
  (:class:`~repro.errors.FactBudgetExceeded` /
  :class:`~repro.errors.RoundBudgetExceeded`) fail fast — against the
  request's pinned snapshot a retry would fail identically.
* **Per-strategy circuit breakers, per tenant** — strategy failures
  feed a :class:`~repro.serve.breaker.BreakerBoard` scoped to the
  tenant, so one tenant poisoning a strategy (feeding it data that
  turned cyclic, say) trips only its own board.
* **Snapshot isolation** — requests evaluate against an epoch-pinned
  :meth:`~repro.engine.database.Database.snapshot` generation, so a
  concurrent writer can never show a worker a half-applied mutation;
  the generation is refreshed (cheaply, only when epochs actually
  moved) at admission time.
* **Atomic observability** — admission counters, breaker boards the
  service created, and the ``inflight`` gauge all share one metrics
  lock, so a :meth:`counters` snapshot is a single consistent cut: at
  every snapshot ``admitted == completed + failed + cancelled +
  shed_expired + inflight`` exactly.
* **Graceful drain** — :meth:`QueryService.drain` stops admissions,
  lets workers finish queued and in-flight work, and after an optional
  grace period flips the straggling requests'
  :class:`~repro.engine.guard.CancellationToken`\\ s so evaluation
  stops at the next round boundary.  Every admitted request resolves
  exactly once — answered, shed, or cancelled.

Answers served concurrently are byte-identical to single-threaded
evaluation of the same requests — the overload and multi-tenant
benchmarks (``benchmarks/bench_s4_service_overload.py``,
``benchmarks/bench_s6_multitenant.py``) enforce exactly that.
"""

import threading
import time
import zlib

from ..engine.guard import CancellationToken, ResourceBudget
from ..errors import (
    BudgetExceededError,
    CircuitOpenError,
    CountingDivergenceError,
    EvaluationCancelled,
    EvaluationError,
    FactBudgetExceeded,
    NotApplicableError,
    Overloaded,
    QuotaExceeded,
    ReproError,
    RoundBudgetExceeded,
    ServiceClosed,
)
from ..exec.resilient import DEFAULT_CHAIN, FallbackPolicy, run_resilient
from ..tenancy.scheduler import FairScheduler
from .breaker import BreakerBoard
from .retry import RetryPolicy

#: Strategy-health failures: these trip breakers and degrade to the
#: fallback chain.  Budget aborts are deliberately absent — they
#: describe the caller's limits and are handled by retry instead.
_STRATEGY_ERRORS = (
    NotApplicableError,
    CountingDivergenceError,
    EvaluationError,
)

#: Resource-pool names, in the order admission checks them.
_POOL_ORDER = ("facts", "rounds", "seconds")


def _tenant_stream(name):
    """Deterministic per-tenant RNG stream for retry backoff.

    CRC32 of the name, *not* ``hash()`` — the builtin string hash is
    salted per process, and retry schedules must replay across runs.
    The default (untenanted) stream is 0, which
    :meth:`~repro.serve.retry.RetryPolicy.backoff` maps to the exact
    pre-tenancy delays.
    """
    if name is None:
        return 0
    return zlib.crc32(str(name).encode("utf-8"))


class ServiceStats:
    """Thread-safe counters describing one service's lifetime.

    The admission ledger always balances: ``submitted == admitted +
    shed_overload + shed_quota + rejected_closed``, and — because
    admission and every terminal transition move the ``inflight`` gauge
    under the same lock — at *every* snapshot ``admitted == completed +
    failed + cancelled + shed_expired + inflight`` exactly, not just at
    quiescence.  Passing a shared ``lock`` lets the service make this
    snapshot atomic with its breaker boards too.
    """

    __slots__ = ("_lock", "submitted", "admitted", "shed_overload",
                 "shed_expired", "shed_quota", "rejected_closed",
                 "completed", "failed", "cancelled", "retried",
                 "fallbacks", "refreshes", "max_queue_depth",
                 "inflight")

    def __init__(self, lock=None):
        self._lock = lock if lock is not None else threading.Lock()
        self.submitted = 0
        self.admitted = 0
        self.shed_overload = 0
        self.shed_expired = 0
        self.shed_quota = 0
        self.rejected_closed = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.retried = 0
        self.fallbacks = 0
        self.refreshes = 0
        self.max_queue_depth = 0
        #: Admitted requests not yet terminal (queued or being served).
        self.inflight = 0

    def bump(self, name, amount=1):
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def note_admitted(self):
        """Count an admission and raise the inflight gauge atomically."""
        with self._lock:
            self.admitted += 1
            self.inflight += 1

    def note_terminal(self, name):
        """Count a terminal outcome (``completed`` / ``failed`` /
        ``cancelled`` / ``shed_expired``) and drop the inflight gauge
        in the same critical section — the two must never be observable
        apart, or the ledger tears under concurrent snapshots."""
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)
            self.inflight -= 1

    def retract_admitted(self):
        """Undo a provisional admission (the lane refused the offer)."""
        with self._lock:
            self.admitted -= 1
            self.inflight -= 1

    def note_depth(self, depth):
        with self._lock:
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    def as_dict(self):
        with self._lock:
            return {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "shed_overload": self.shed_overload,
                "shed_expired": self.shed_expired,
                "shed_quota": self.shed_quota,
                "rejected_closed": self.rejected_closed,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "retried": self.retried,
                "fallbacks": self.fallbacks,
                "refreshes": self.refreshes,
                "max_queue_depth": self.max_queue_depth,
                "inflight": self.inflight,
            }

    def __repr__(self):
        return "ServiceStats(%s)" % ", ".join(
            "%s=%d" % (k, v) for k, v in self.as_dict().items() if v
        )


class QueryFuture:
    """The pending outcome of one submitted request.

    :meth:`result` blocks for the answer (re-raising the request's
    typed error if it failed); :meth:`cancel` flips the request's
    cancellation token, which stops evaluation cooperatively at the
    next budget checkpoint.
    """

    __slots__ = ("request_id", "_done", "_result", "_error", "_token")

    def __init__(self, request_id, token):
        self.request_id = request_id
        self._done = threading.Event()
        self._result = None
        self._error = None
        self._token = token

    def done(self):
        return self._done.is_set()

    def result(self, timeout=None):
        """The :class:`~repro.exec.strategies.ExecutionResult`, or the
        request's typed error re-raised.  Raises ``TimeoutError`` if
        the outcome does not land within ``timeout`` seconds."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                "request %d not done within %gs" % (self.request_id,
                                                    timeout)
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout=None):
        """The request's error (``None`` on success); blocks like
        :meth:`result`."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                "request %d not done within %gs" % (self.request_id,
                                                    timeout)
            )
        return self._error

    def cancel(self):
        """Request cooperative cancellation of this request."""
        self._token.cancel()

    def _resolve(self, result=None, error=None):
        self._result = result
        self._error = error
        self._done.set()

    def __repr__(self):
        state = "pending"
        if self._done.is_set():
            state = "error: %s" % type(self._error).__name__ \
                if self._error is not None else "done"
        return "QueryFuture(#%d, %s)" % (self.request_id, state)


class _TenantState:
    """Mutable runtime state for one tenant on one service."""

    __slots__ = ("name", "quota", "bucket", "pools", "stream", "board",
                 "stats", "in_system")

    def __init__(self, name, quota, bucket, pools, board, stats):
        self.name = name
        self.quota = quota
        self.bucket = bucket
        self.pools = pools
        self.stream = _tenant_stream(name)
        self.board = board
        #: Per-tenant ServiceStats (None for the default lane, whose
        #: traffic is only the service-wide ledger).
        self.stats = stats
        #: Requests in the system (queued + in flight), guarded by the
        #: service admission lock; enforces ``max_concurrent``.
        self.in_system = 0


class _Request:
    __slots__ = ("id", "prepared", "constants", "deadline", "budget",
                 "token", "future", "db", "submitted_at", "tenant",
                 "tstate", "form", "cost", "eval_workers")

    def __init__(self, request_id, prepared, constants, deadline,
                 budget, token, future, db, submitted_at, tenant,
                 tstate, form, cost, eval_workers=None):
        self.id = request_id
        #: The resolved prepared form this request evaluates.
        self.prepared = prepared
        self.constants = constants
        #: Absolute deadline on the service clock, or ``None``.
        self.deadline = deadline
        #: Caller-supplied parent budget (optional) — attempts derive
        #: children from it so its fact/round caps propagate too.
        self.budget = budget
        self.token = token
        self.future = future
        #: The snapshot generation pinned at admission.
        self.db = db
        self.submitted_at = submitted_at
        self.tenant = tenant
        self.tstate = tstate
        #: Registered form name (None when serving the default form).
        self.form = form
        self.cost = cost
        #: Granted data-parallel evaluation pool size (post tenant
        #: clamp), or None for serial evaluation.
        self.eval_workers = eval_workers


class QueryService:
    """Serve prepared query forms concurrently to multiple tenants.

    Parameters
    ----------
    prepared : :class:`~repro.exec.prepared.PreparedQuery` or None
        The default query form, served to submits that name no
        ``form``.  Anything duck-typing its ``method`` /
        ``run(constants, db=..., budget=...)`` / ``bind`` surface works
        (tests exploit this).  May be ``None`` when a ``registry`` is
        attached — then every submit must name a form.
    db : :class:`~repro.engine.database.Database`
        The live database.  Requests are evaluated against epoch-pinned
        snapshot generations of it (unless ``snapshots=False``).
    workers : int
        Worker-thread pool size.
    queue_capacity : int
        Per-lane admission-queue capacity (a tenant quota's
        ``queue_capacity`` overrides it for that tenant's lane);
        admission past it sheds with :class:`~repro.errors.Overloaded`.
    default_timeout : float or None
        Per-request deadline (seconds from admission) used when a
        submit names none.
    retry : :class:`~repro.serve.retry.RetryPolicy` or None
        Backoff schedule for budget-aborted attempts (None = one
        attempt).  Delays draw from a per-tenant seed stream.
    breakers : :class:`~repro.serve.breaker.BreakerBoard` or None
        The *default* tenant's per-strategy breakers; a board on the
        service's shared metrics lock is created when omitted.  Named
        tenants always get their own board with the same settings.
    fallback : bool
        Degrade through the resilient strategy chain when the prepared
        method fails or its breaker is open (True by default).
    snapshots : bool
        Pin an epoch snapshot per admission generation (True) or serve
        the live database directly (False — only safe without
        concurrent writers).
    audit : :class:`~repro.durability.audit.AuditLog` or None
        Per-request JSONL audit trail.  Workers record every request's
        outcome — request id, tenant, form, epoch-table hash, strategy,
        attempts, execution time, and a deterministic result
        fingerprint — and :meth:`drain` flushes the buffer, so the log
        is replay-checkable after recovery, per tenant (see
        :func:`~repro.durability.audit.verify_audit`).
    clock, sleep : callables
        Injectable time sources for deadlines/quotas/breakers and
        backoff sleeps; tests drive fake time through these.
    registry : :class:`~repro.tenancy.forms.FormRegistry` or None
        Named, versioned forms; submits may pass ``form=`` (and
        ``version=``) to select one, and its cost class prices the
        request's scheduling cost.
    tenants : ``{name: TenantQuota}`` or None
        Named tenants with their quotas and weights.  ``None`` (or an
        empty mapping) configures a single anonymous default lane —
        exactly the untenanted service of old.  A default lane exists
        either way, so ``submit(tenant=None)`` always works.
    quantum : float
        Deficit-round-robin quantum (deficit earned per rotation per
        unit weight).
    eval_workers : int or None
        Default data-parallel evaluation pool size per request (the
        sharded-fixpoint ``parallel`` strategy / parallel counting
        phase 1).  ``None`` = serial.  A submit's ``eval_workers``
        overrides it per request; the tenant quota's
        ``max_eval_workers`` clamps whatever was asked, so one tenant
        cannot fan out past its allowance.  Worker failures are
        repaired in place by the sharded executor's self-healing
        policy (``eval_recovery``); evaluation degrades to serial only
        once that allowance is spent — parallelism never changes
        answers.
    eval_recovery : RecoveryPolicy, str or None
        Self-healing policy for data-parallel attempts (a
        :class:`~repro.parallel.supervisor.RecoveryPolicy` or a mode
        string ``"reassign"`` / ``"respawn"`` / ``"serial"``).
        ``None`` leaves the executor's default (shard reassignment).
    """

    def __init__(self, prepared, db, workers=2, queue_capacity=16,
                 default_timeout=None, retry=None, breakers=None,
                 fallback=True, snapshots=True, audit=None, clock=None,
                 sleep=None, registry=None, tenants=None, quantum=1.0,
                 eval_workers=None, eval_recovery=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if prepared is None and registry is None:
            raise ValueError(
                "need a prepared query, a form registry, or both"
            )
        self.prepared = prepared
        self.db = db
        self.registry = registry
        self.queue_capacity = queue_capacity
        self.default_timeout = default_timeout
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=1
        )
        self.fallback = fallback
        self.snapshots = snapshots
        self.audit = audit
        if eval_workers is not None and eval_workers < 1:
            raise ValueError("eval_workers must be >= 1")
        self.eval_workers = eval_workers
        self.eval_recovery = eval_recovery
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep
        #: One lock under which admission counters, the inflight gauge
        #: and every service-created breaker transition move — a
        #: ``counters()`` snapshot taken under it is a single
        #: consistent cut of the whole service block.  Re-entrant,
        #: because snapshotting a board re-acquires it per breaker.
        self._metrics_lock = threading.RLock()
        self.stats = ServiceStats(lock=self._metrics_lock)
        self.breakers = breakers if breakers is not None else \
            BreakerBoard(lock=self._metrics_lock)
        #: EMA of per-request service time, for retry_after hints.
        self._ema_service = None
        self._scheduler = FairScheduler(quantum=quantum)
        self._tenants = {}
        self._multi = bool(tenants)
        self._add_tenant_state(None, None)
        for name, quota in (tenants or {}).items():
            if name is None:
                raise ValueError(
                    "None is the default lane, not a tenant name"
                )
            self._add_tenant_state(name, quota)
        self._admit_lock = threading.Lock()
        self._closed = False
        self._next_id = 0
        #: Admitted-but-unfinished requests, for drain cancellation.
        self._outstanding = {}
        self._generation = db.snapshot() if snapshots else db
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name="repro-serve-%d" % index,
                daemon=True,
            )
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    def _add_tenant_state(self, name, quota):
        if quota is None:
            from ..tenancy.quota import TenantQuota

            quota = TenantQuota()
        capacity = quota.queue_capacity
        if capacity is None:
            capacity = self.queue_capacity
        self._scheduler.add_lane(name, weight=quota.weight,
                                 capacity=capacity)
        if name is None:
            board, stats = self.breakers, None
        else:
            board = BreakerBoard(
                threshold=self.breakers.threshold,
                cooldown=self.breakers.cooldown,
                clock=self._clock,
                lock=self._metrics_lock,
            )
            stats = ServiceStats(lock=self._metrics_lock)
        self._tenants[name] = _TenantState(
            name, quota,
            quota.bucket(clock=self._clock),
            quota.pools(clock=self._clock),
            board, stats,
        )

    # -- admission -----------------------------------------------------

    def submit(self, constants=None, timeout=None, budget=None,
               tenant=None, form=None, version=None, eval_workers=None):
        """Admit one request; returns a :class:`QueryFuture`.

        ``eval_workers`` asks for data-parallel evaluation with that
        many processes (``None`` inherits the service default).  The
        grant is clamped to the tenant quota's ``max_eval_workers`` —
        never shed over it — and a grant below 2 evaluates serially.

        Raises — all before the request counts as submitted —
        ``ValueError`` when ``constants`` does not match the form's
        arity or ``tenant`` is unknown, and
        :class:`~repro.errors.UnknownFormError` for an unregistered
        ``form``.  After that, raises
        :class:`~repro.errors.ServiceClosed` once :meth:`drain` ran,
        :class:`~repro.errors.QuotaExceeded` when the tenant's own
        allowance (rate, concurrency, or a resource pool) refuses, and
        :class:`~repro.errors.Overloaded` (fast, without queuing) when
        the tenant's lane is at capacity.  Both shed errors carry a
        machine-readable ``retry_after`` hint in seconds.
        """
        prepared, form_name, cost = self._resolve_form(form, version)
        constants = self._validated(prepared, constants)
        tstate = self._tenants.get(tenant)
        if tstate is None:
            raise ValueError(
                "unknown tenant %r (configured: %s)"
                % (tenant,
                   ", ".join(sorted(n for n in self._tenants
                                    if n is not None)) or "none")
            )
        now = self._clock()
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else now + timeout
        token = CancellationToken()
        with self._admit_lock:
            # The whole admission decision — submitted bump through
            # admitted/shed outcome — sits in one metrics-lock critical
            # section, so both ledger identities (``submitted ==
            # admitted + sheds + rejected`` and ``admitted ==
            # terminals + inflight``) hold at *every* counters()
            # snapshot, never just at quiescence.  Without this a
            # worker could serve a freshly offered request and count
            # its terminal before the submitter counted the admission.
            with self._metrics_lock:
                self.stats.bump("submitted")
                if tstate.stats is not None:
                    tstate.stats.bump("submitted")
                if self._closed:
                    self._shed(tstate, "rejected_closed")
                    raise ServiceClosed(
                        "service is draining; admissions are closed"
                    )
                self._check_quota(tstate)
                request_id = self._next_id
                self._next_id += 1
                future = QueryFuture(request_id, token)
                request = _Request(
                    request_id, prepared, constants, deadline, budget,
                    token, future, self._refreshed_generation(), now,
                    tenant, tstate, form_name, cost,
                    eval_workers=self._granted_workers(
                        tstate, eval_workers
                    ),
                )
                self.stats.note_admitted()
                if tstate.stats is not None:
                    tstate.stats.note_admitted()
                if not self._scheduler.offer(tenant, request,
                                             cost=cost):
                    self.stats.retract_admitted()
                    if tstate.stats is not None:
                        tstate.stats.retract_admitted()
                    self._shed(tstate, "shed_overload")
                    raise Overloaded(
                        "admission lane%s at capacity (%d queued); "
                        "request shed" % (
                            "" if tenant is None else " of tenant %r"
                            % tenant,
                            self._scheduler.lane_depth(tenant),
                        ),
                        reason="queue_full",
                        tenant=tenant,
                        retry_after=self._drain_hint(
                            self._scheduler.lane_depth(tenant)
                        ),
                    )
                self._outstanding[request_id] = request
                tstate.in_system += 1
        self.stats.note_depth(self._scheduler.depth())
        if tstate.stats is not None:
            tstate.stats.note_depth(self._scheduler.lane_depth(tenant))
        return future

    def run(self, constants=None, timeout=None, budget=None,
            tenant=None, form=None, version=None, wait=None,
            eval_workers=None):
        """Submit and block for the result (closed-loop convenience)."""
        return self.submit(
            constants, timeout=timeout, budget=budget, tenant=tenant,
            form=form, version=version, eval_workers=eval_workers,
        ).result(wait)

    def _granted_workers(self, tstate, requested):
        """The per-request parallel-evaluation grant: the request's ask
        (or the service default), clamped by the tenant's
        ``max_eval_workers``; grants below 2 collapse to serial."""
        granted = requested if requested is not None else \
            self.eval_workers
        if granted is None:
            return None
        cap = tstate.quota.max_eval_workers
        if cap is not None:
            granted = min(granted, cap)
        return granted if granted >= 2 else None

    def _resolve_form(self, form, version):
        """(prepared, form name, DRR cost) for one submit."""
        if form is not None:
            if self.registry is None:
                raise ValueError(
                    "submit named form %r but the service has no "
                    "registry" % (form,)
                )
            registered = self.registry.get(form, version)
            return registered.prepared, registered.name, registered.cost
        if self.prepared is None:
            raise ValueError(
                "this service serves named forms only; pass form="
            )
        return self.prepared, None, 1.0

    def _validated(self, prepared, constants):
        """Reject malformed constants in the submitter's thread.

        A wrong-arity binding must surface here as a ``ValueError``
        before the request counts as submitted — never inside a worker,
        where an untyped crash would kill the thread.
        """
        if constants is None:
            return None
        constants = tuple(constants)
        bound = getattr(prepared, "bound_positions", None)
        if bound is not None and len(constants) != len(bound):
            raise ValueError(
                "query form binds %d position(s), got %d constant(s)"
                % (len(bound), len(constants))
            )
        return constants

    def _shed(self, tstate, counter):
        self.stats.bump(counter)
        if tstate.stats is not None:
            tstate.stats.bump(counter)

    def _check_quota(self, tstate):
        """Every quota gate for one admission, cheapest-regret first.

        Ordering matters: the resource pools and the concurrency cap
        are checked *before* the token bucket, so a request shed by
        them has not burned a rate token it never used.  Called under
        the admission lock, which is what makes the concurrency count
        race-free.
        """
        for name in _POOL_ORDER:
            pool = tstate.pools.get(name)
            if pool is not None and not pool.admits():
                self._shed(tstate, "shed_quota")
                raise QuotaExceeded(
                    "tenant %r exhausted its %s pool (balance %.4g)"
                    % (tstate.name, name, pool.balance()),
                    tenant=tstate.name, resource=name,
                    retry_after=pool.retry_after(),
                )
        limit = tstate.quota.max_concurrent
        if limit is not None and tstate.in_system >= limit:
            self._shed(tstate, "shed_quota")
            raise QuotaExceeded(
                "tenant %r at its concurrency cap (%d in system)"
                % (tstate.name, tstate.in_system),
                tenant=tstate.name, resource="concurrency",
                retry_after=self._drain_hint(1),
            )
        if tstate.bucket is not None and not tstate.bucket.try_take():
            self._shed(tstate, "shed_quota")
            raise QuotaExceeded(
                "tenant %r over its request rate (%.4g/s)"
                % (tstate.name, tstate.bucket.rate),
                tenant=tstate.name, resource="rate",
                retry_after=tstate.bucket.refill_after(),
            )

    def _drain_hint(self, depth):
        """Seconds until ``depth`` requests plausibly drained, from the
        EMA of recent service times; None before anything completed."""
        with self._metrics_lock:
            ema = self._ema_service
        if ema is None:
            return None
        return max(0.0, depth + 1) * ema / len(self._workers)

    def _refreshed_generation(self):
        """The current snapshot generation, re-pinned iff epochs moved.

        Keeping the generation object stable while the database is
        quiet is what keeps the answer cache hot: its validity check is
        by database identity, so gratuitous re-pinning would read as an
        invalidation on every entry.
        """
        if not self.snapshots:
            return self.db
        generation = self._generation
        pinned = generation._relations
        # Snapshot the live epoch table under the database lock: a
        # concurrent writer inserting a first-use relation key would
        # otherwise resize the dict mid-iteration.
        with self.db._lock:
            live = [
                (key, rel.epoch)
                for key, rel in self.db._relations.items()
            ]
        stale = len(live) != len(pinned)
        if not stale:
            for key, epoch in live:
                view = pinned.get(key)
                if view is None or view.epoch != epoch:
                    stale = True
                    break
        if stale:
            generation = self.db.snapshot()
            self._generation = generation
            self.stats.bump("refreshes")
        return generation

    # -- the worker side -----------------------------------------------

    def _worker_loop(self):
        while True:
            request = self._scheduler.take()
            if request is None:
                # Closed and fully drained: the pool winds down.
                return
            try:
                self._serve(request)
            finally:
                with self._admit_lock:
                    self._outstanding.pop(request.id, None)
                    request.tstate.in_system -= 1

    def _terminal(self, request, name):
        self.stats.note_terminal(name)
        if request.tstate.stats is not None:
            request.tstate.stats.note_terminal(name)

    def _serve(self, request):
        now = self._clock()
        if request.token.cancelled:
            # Cancelled while still queued (future.cancel() before any
            # worker dequeued it): resolve without evaluation.  Without
            # this check the request would be fully evaluated and its
            # cancellation only honoured if a budget checkpoint
            # happened to fire mid-run.
            self._terminal(request, "cancelled")
            error = EvaluationCancelled(
                "request %d cancelled while queued" % request.id
            )
            request.future._resolve(error=error)
            self._audit_record(request, "cancelled", error=error,
                               started=now)
            return
        if request.deadline is not None and now >= request.deadline:
            # Shed without evaluation: the deadline passed while the
            # request sat in the queue.
            self._terminal(request, "shed_expired")
            error = Overloaded(
                "deadline expired after %.4fs in queue; request shed "
                "unevaluated" % (now - request.submitted_at),
                reason="expired",
                tenant=request.tenant,
            )
            request.future._resolve(error=error)
            self._audit_record(request, "expired", error=error,
                               started=now)
            return
        try:
            result = self._attempts(request)
        except EvaluationCancelled as exc:
            self._terminal(request, "cancelled")
            request.future._resolve(error=exc)
            self._audit_record(request, "cancelled", error=exc,
                               started=now)
        except ReproError as exc:
            self._terminal(request, "failed")
            request.future._resolve(error=exc)
            self._audit_record(request, "failed", error=exc, started=now)
        except BaseException as exc:
            # An untyped bug escaping an attempt must not kill the
            # worker thread: that would shrink the pool permanently,
            # leave the future unresolved (hanging result() callers
            # forever), and unbalance the admission ledger.  Resolve
            # the future with the raw error instead.
            self._terminal(request, "failed")
            request.future._resolve(error=exc)
            self._audit_record(request, "failed", error=exc, started=now)
        else:
            self._terminal(request, "completed")
            request.future._resolve(result=result)
            self._audit_record(request, "completed", result=result,
                               started=now)
        self._note_service_time(self._clock() - now)

    def _note_service_time(self, elapsed):
        if elapsed < 0:
            return
        with self._metrics_lock:
            if self._ema_service is None:
                self._ema_service = elapsed
            else:
                self._ema_service = (
                    0.8 * self._ema_service + 0.2 * elapsed
                )

    def _audit_record(self, request, outcome, result=None, error=None,
                      started=None):
        """Append one request's outcome to the audit trail (if any).

        Auditing is observability, never control flow: any failure to
        render or write the entry is swallowed so it cannot fail the
        request it describes or kill the worker thread.
        """
        if self.audit is None:
            return
        try:
            from ..durability.audit import (
                epoch_hash,
                jsonable_constants,
                result_fingerprint,
            )

            constants = (
                request.constants
                if request.constants is not None
                else getattr(request.prepared, "default_constants", ())
            )
            rendered, replayable = jsonable_constants(constants)
            entry = {
                "request_id": request.id,
                "tenant": request.tenant,
                "form": request.form,
                "constants": rendered,
                "replayable": replayable,
                "epoch_hash": epoch_hash(request.db),
                "lineage": getattr(request.db, "lineage", None),
                "outcome": outcome,
                "execution_time_ms": round(
                    (self._clock() - started) * 1000.0, 4
                ) if started is not None else None,
            }
            if error is not None:
                entry["error"] = "%s: %s" % (type(error).__name__, error)
            if result is not None:
                entry["strategy"] = result.method
                entry["result_fingerprint"] = result_fingerprint(
                    result.answers
                )
                service_extras = result.extras.get("service", {})
                entry["attempts"] = service_extras.get("attempts")
                entry["fallback"] = service_extras.get("fallback")
            self.audit.record(entry)
        except Exception:  # pragma: no cover - defensive
            pass

    def _budget_for(self, request):
        """A fresh per-attempt budget carrying the request's remaining
        deadline, cancellation token, and any caller-supplied caps."""
        remaining = None
        if request.deadline is not None:
            remaining = max(0.0, request.deadline - self._clock())
        if request.budget is not None:
            return request.budget.child(
                timeout=remaining, token=request.token
            )
        return ResourceBudget(
            timeout=remaining, token=request.token, clock=self._clock
        )

    def _charge(self, request, budget, stats, elapsed):
        """Post-paid quota charge for one attempt, success or not.

        Facts and rounds come from the attempt's budget usage (the
        engine's checkpoint count and derived-fact tally); wall-clock
        is the service-measured attempt time, which also covers
        evaluators that never reached a budget checkpoint.  Charging
        after the fact is what lets one expensive query drive a pool
        into debt — the debt then blocks the *next* admission, which is
        the isolation contract.
        """
        pools = request.tstate.pools
        if not pools:
            return
        usage = budget.usage(stats)
        usage["seconds"] = elapsed
        for name, pool in pools.items():
            amount = usage.get(name)
            if amount:
                pool.charge(amount)

    def _attempts(self, request):
        """Primary strategy with retry/breaker, then the fallback chain."""
        method = request.prepared.method
        board = request.tstate.board
        breaker = board.get(method)
        backoff = self.retry.backoff(request.id,
                                     stream=request.tstate.stream)
        attempt = 0
        while True:
            if not breaker.allow():
                if not self.fallback:
                    raise CircuitOpenError(
                        "circuit for %r is %s and no fallback is "
                        "configured" % (method, breaker.state)
                    )
                return self._fallback(request, skip=method)
            attempt += 1
            budget = self._budget_for(request)
            attempt_started = self._clock()
            run_options = {}
            if request.eval_workers is not None:
                # Only granted requests see the keywords, so duck-typed
                # prepared objects without a ``workers`` parameter keep
                # working on serial services; ``recovery`` rides along
                # only when the service configures one, for the same
                # reason.
                run_options["workers"] = request.eval_workers
                if self.eval_recovery is not None:
                    run_options["recovery"] = self.eval_recovery
            try:
                result = request.prepared.run(
                    request.constants, db=request.db, budget=budget,
                    **run_options
                )
            except BudgetExceededError as exc:
                self._charge(request, budget,
                             getattr(exc, "stats", None),
                             self._clock() - attempt_started)
                # The caller's limits, not the strategy's health: never
                # recorded on the breaker.  Retry timing-dependent
                # aborts while the schedule and the request deadline
                # both allow.  Fact/round caps are deterministic
                # against the pinned snapshot and inherited budget, so
                # a retry would fail identically — fail fast instead of
                # burning backoff sleep in a worker slot.
                if isinstance(exc, EvaluationCancelled):
                    raise
                if isinstance(
                    exc, (FactBudgetExceeded, RoundBudgetExceeded)
                ):
                    raise
                delay = next(backoff, None)
                if delay is None:
                    raise
                if request.deadline is not None and (
                    self._clock() + delay >= request.deadline
                ):
                    raise
                self.stats.bump("retried")
                if request.tstate.stats is not None:
                    request.tstate.stats.bump("retried")
                self._sleep(delay)
                continue
            except _STRATEGY_ERRORS:
                self._charge(request, budget, None,
                             self._clock() - attempt_started)
                breaker.record_failure()
                if not self.fallback:
                    raise
                return self._fallback(request, skip=method)
            self._charge(request, budget,
                         getattr(result, "stats", None),
                         self._clock() - attempt_started)
            breaker.record_success()
            result.extras["service"] = {
                "attempts": attempt,
                "fallback": False,
                "generation": id(request.db),
                "eval_workers": request.eval_workers,
            }
            return result

    def _fallback(self, request, skip):
        """Degrade through the resilient chain (minus ``skip``), with
        the tenant's breaker board and request-derived budgets."""
        self.stats.bump("fallbacks")
        if request.tstate.stats is not None:
            request.tstate.stats.bump("fallbacks")
        chain = tuple(m for m in DEFAULT_CHAIN if m != skip)
        if request.eval_workers is not None and skip != "parallel":
            # A granted request degrades *through* the sharded fixpoint
            # first; any worker failure continues down the serial chain.
            chain = ("parallel",) + chain
            policy = FallbackPolicy(chain=chain,
                                    workers=request.eval_workers,
                                    recovery=self.eval_recovery)
        else:
            policy = FallbackPolicy(chain=chain)
        report = run_resilient(
            request.prepared.bind(request.constants), request.db,
            policy,
            breakers=request.tstate.board,
            budget_factory=lambda: self._budget_for(request),
        )
        result = report.result
        result.extras["service"] = {
            "attempts": len(report.attempts),
            "fallback": True,
            "resilient": report.summary(),
            "generation": id(request.db),
            "eval_workers": request.eval_workers,
        }
        return result

    # -- shutdown ------------------------------------------------------

    def drain(self, grace=None):
        """Stop admissions, finish accepted work, cancel stragglers.

        Admissions close immediately (subsequent submits raise
        :class:`~repro.errors.ServiceClosed`); queued and in-flight
        requests run to completion — the scheduler keeps dispatching
        its remaining lane contents after close and only then releases
        the workers.  With ``grace`` set, workers still alive after
        that many (real) seconds get their requests' cancellation
        tokens flipped, which aborts in-flight evaluation at the next
        budget checkpoint and resolves still-queued requests as
        cancelled when a worker picks them up — every admitted request
        resolves exactly once either way.  Returns True when
        everything finished gracefully, False when stragglers had to be
        cancelled.  Idempotent.
        """
        with self._admit_lock:
            self._closed = True
        self._scheduler.close()
        deadline = None if grace is None else time.monotonic() + grace
        graceful = True
        for worker in self._workers:
            worker.join(
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            if worker.is_alive():
                graceful = False
        if not graceful:
            # Grace expired: flip every outstanding token and wait for
            # the workers to notice at their next round boundary (or,
            # for still-queued requests, at dequeue).
            self._cancel_outstanding()
            for worker in self._workers:
                worker.join()
        if self.audit is not None:
            # Workers are parked; every recorded entry reaches disk.
            self.audit.flush()
        return graceful

    def close(self, grace=None):
        """Alias for :meth:`drain` (context-manager exit path)."""
        return self.drain(grace=grace)

    def _cancel_outstanding(self):
        with self._admit_lock:
            requests = list(self._outstanding.values())
        for request in requests:
            request.token.cancel()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.drain()
        return False

    # -- observability -------------------------------------------------

    def counters(self):
        """The ``service`` counter block: admission ledger, retries,
        breaker trips/rejections, per-strategy breaker states, and —
        when the prepared query carries them — snapshots of the
        answer-cache and counting-store counters.

        The ledger, the inflight gauge and every breaker board the
        service created share one lock, so the whole block is a single
        atomic cut: ``admitted == completed + failed + cancelled +
        shed_expired + inflight`` holds in *every* snapshot, even taken
        mid-burst.  On a multi-tenant service a ``tenants`` block adds,
        per tenant, the same ledger plus lane, breaker and quota state.
        """
        with self._metrics_lock:
            counters = self.stats.as_dict()
            counters["breaker_trips"] = self.breakers.trips
            counters["breaker_rejections"] = self.breakers.rejections
            counters["breaker_states"] = self.breakers.states()
            if self._multi:
                lanes = self._scheduler.lane_stats()
                counters["tenants"] = {
                    name: self._tenant_block(tstate, lanes.get(name))
                    for name, tstate in sorted(
                        (n, t) for n, t in self._tenants.items()
                        if n is not None
                    )
                }
        cache = getattr(self.prepared, "cache", None)
        if cache is not None:
            counters["answer_cache"] = cache.stats()
        store = getattr(self.prepared, "counting_store", None)
        if store is not None:
            counters["counting_store"] = store.stats()
        if self.registry is not None:
            counters["forms"] = self.registry.describe()
        if self.audit is not None:
            counters["audit"] = {
                "path": self.audit.path,
                "entries": self.audit.entries_written,
            }
        return counters

    def _tenant_block(self, tstate, lane):
        block = tstate.stats.as_dict()
        block["queue"] = lane
        block["breaker_trips"] = tstate.board.trips
        block["breaker_rejections"] = tstate.board.rejections
        block["breaker_states"] = tstate.board.states()
        quota = {"weight": tstate.quota.weight}
        if tstate.bucket is not None:
            quota["rate"] = tstate.bucket.rate
            quota["rate_tokens"] = tstate.bucket.level()
            quota["rate_denied"] = tstate.bucket.denied
        if tstate.quota.max_concurrent is not None:
            quota["max_concurrent"] = tstate.quota.max_concurrent
        if tstate.pools:
            quota["pools"] = {
                name: {
                    "balance": pool.balance(),
                    "capacity": pool.capacity,
                    "charged": pool.charged,
                    "denied": pool.denied,
                }
                for name, pool in sorted(tstate.pools.items())
            }
        block["quota"] = quota
        return block

    def __repr__(self):
        return "QueryService(%s, %d worker(s), %d tenant lane(s), %s)" % (
            getattr(self.prepared, "method", "forms"),
            len(self._workers), len(self._tenants),
            "closed" if self._closed else "open",
        )
