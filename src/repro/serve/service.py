"""A concurrent, overload-safe front end over prepared queries.

:class:`QueryService` serves one prepared query form from a pool of
worker threads, with the failure modes of a production query tier
designed in rather than bolted on:

* **Admission control / load shedding** — the request queue is bounded.
  A submit that finds it full fails *fast* with a typed
  :class:`~repro.errors.Overloaded` error instead of piling latency
  onto every queued request behind it.  Queue depth can therefore never
  exceed the configured capacity, no matter the offered load.
* **Deadline propagation** — each request carries a deadline.  It is
  threaded into every evaluation attempt as a derived
  :class:`~repro.engine.guard.ResourceBudget`
  (:meth:`~repro.engine.guard.ResourceBudget.child` clamps each
  attempt to the request's remaining allowance), and a queued request
  whose deadline already passed is shed by the worker without spending
  any join work on it.
* **Retries with seeded backoff** — attempts that die on a
  timing-dependent budget abort are retried under a
  :class:`~repro.serve.retry.RetryPolicy`; delays are deterministic per
  ``(seed, request id)``.  Deterministic aborts
  (:class:`~repro.errors.FactBudgetExceeded` /
  :class:`~repro.errors.RoundBudgetExceeded`) fail fast — against the
  request's pinned snapshot a retry would fail identically.
* **Per-strategy circuit breakers** — strategy failures feed a shared
  :class:`~repro.serve.breaker.BreakerBoard`.  A strategy whose breaker
  is open is skipped (in the primary path and inside the resilient
  fallback chain alike) until its cooldown passes.
* **Snapshot isolation** — requests evaluate against an epoch-pinned
  :meth:`~repro.engine.database.Database.snapshot` generation, so a
  concurrent writer can never show a worker a half-applied mutation;
  the generation is refreshed (cheaply, only when epochs actually
  moved) at admission time.
* **Graceful drain** — :meth:`QueryService.drain` stops admissions,
  lets workers finish queued and in-flight work, and after an optional
  grace period flips the straggling requests'
  :class:`~repro.engine.guard.CancellationToken`\\ s so evaluation
  stops at the next round boundary.

Answers served concurrently are byte-identical to single-threaded
evaluation of the same requests — the overload benchmark
(``benchmarks/bench_s4_service_overload.py``) enforces exactly that.
"""

import queue
import threading
import time

from ..engine.guard import CancellationToken, ResourceBudget
from ..errors import (
    BudgetExceededError,
    CircuitOpenError,
    CountingDivergenceError,
    EvaluationCancelled,
    EvaluationError,
    FactBudgetExceeded,
    NotApplicableError,
    Overloaded,
    ReproError,
    RoundBudgetExceeded,
    ServiceClosed,
)
from ..exec.resilient import DEFAULT_CHAIN, FallbackPolicy, run_resilient
from .breaker import BreakerBoard
from .retry import RetryPolicy

_SENTINEL = object()

#: Strategy-health failures: these trip breakers and degrade to the
#: fallback chain.  Budget aborts are deliberately absent — they
#: describe the caller's limits and are handled by retry instead.
_STRATEGY_ERRORS = (
    NotApplicableError,
    CountingDivergenceError,
    EvaluationError,
)


class ServiceStats:
    """Thread-safe counters describing one service's lifetime.

    The admission ledger always balances: ``submitted == admitted +
    shed_overload + rejected_closed``, and every admitted request ends
    in exactly one of ``completed`` / ``failed`` / ``cancelled`` /
    ``shed_expired``.
    """

    __slots__ = ("_lock", "submitted", "admitted", "shed_overload",
                 "shed_expired", "rejected_closed", "completed",
                 "failed", "cancelled", "retried", "fallbacks",
                 "refreshes", "max_queue_depth")

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.admitted = 0
        self.shed_overload = 0
        self.shed_expired = 0
        self.rejected_closed = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.retried = 0
        self.fallbacks = 0
        self.refreshes = 0
        self.max_queue_depth = 0

    def bump(self, name, amount=1):
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def note_depth(self, depth):
        with self._lock:
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth

    def as_dict(self):
        with self._lock:
            return {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "shed_overload": self.shed_overload,
                "shed_expired": self.shed_expired,
                "rejected_closed": self.rejected_closed,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "retried": self.retried,
                "fallbacks": self.fallbacks,
                "refreshes": self.refreshes,
                "max_queue_depth": self.max_queue_depth,
            }

    def __repr__(self):
        return "ServiceStats(%s)" % ", ".join(
            "%s=%d" % (k, v) for k, v in self.as_dict().items() if v
        )


class QueryFuture:
    """The pending outcome of one submitted request.

    :meth:`result` blocks for the answer (re-raising the request's
    typed error if it failed); :meth:`cancel` flips the request's
    cancellation token, which stops evaluation cooperatively at the
    next budget checkpoint.
    """

    __slots__ = ("request_id", "_done", "_result", "_error", "_token")

    def __init__(self, request_id, token):
        self.request_id = request_id
        self._done = threading.Event()
        self._result = None
        self._error = None
        self._token = token

    def done(self):
        return self._done.is_set()

    def result(self, timeout=None):
        """The :class:`~repro.exec.strategies.ExecutionResult`, or the
        request's typed error re-raised.  Raises ``TimeoutError`` if
        the outcome does not land within ``timeout`` seconds."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                "request %d not done within %gs" % (self.request_id,
                                                    timeout)
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout=None):
        """The request's error (``None`` on success); blocks like
        :meth:`result`."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                "request %d not done within %gs" % (self.request_id,
                                                    timeout)
            )
        return self._error

    def cancel(self):
        """Request cooperative cancellation of this request."""
        self._token.cancel()

    def _resolve(self, result=None, error=None):
        self._result = result
        self._error = error
        self._done.set()

    def __repr__(self):
        state = "pending"
        if self._done.is_set():
            state = "error: %s" % type(self._error).__name__ \
                if self._error is not None else "done"
        return "QueryFuture(#%d, %s)" % (self.request_id, state)


class _Request:
    __slots__ = ("id", "constants", "deadline", "budget", "token",
                 "future", "db", "submitted_at")

    def __init__(self, request_id, constants, deadline, budget, token,
                 future, db, submitted_at):
        self.id = request_id
        self.constants = constants
        #: Absolute deadline on the service clock, or ``None``.
        self.deadline = deadline
        #: Caller-supplied parent budget (optional) — attempts derive
        #: children from it so its fact/round caps propagate too.
        self.budget = budget
        self.token = token
        self.future = future
        #: The snapshot generation pinned at admission.
        self.db = db
        self.submitted_at = submitted_at


class QueryService:
    """Serve a :class:`~repro.exec.prepared.PreparedQuery` concurrently.

    Parameters
    ----------
    prepared : :class:`~repro.exec.prepared.PreparedQuery`
        The query form to serve.  Anything duck-typing its
        ``method`` / ``run(constants, db=..., budget=...)`` / ``bind``
        surface works (tests exploit this).
    db : :class:`~repro.engine.database.Database`
        The live database.  Requests are evaluated against epoch-pinned
        snapshot generations of it (unless ``snapshots=False``).
    workers : int
        Worker-thread pool size.
    queue_capacity : int
        Bounded-queue capacity; admission past it sheds with
        :class:`~repro.errors.Overloaded`.
    default_timeout : float or None
        Per-request deadline (seconds from admission) used when a
        submit names none.
    retry : :class:`~repro.serve.retry.RetryPolicy` or None
        Backoff schedule for budget-aborted attempts (None = one
        attempt).
    breakers : :class:`~repro.serve.breaker.BreakerBoard` or None
        Shared per-strategy breakers; a default board is created when
        omitted.
    fallback : bool
        Degrade through the resilient strategy chain when the prepared
        method fails or its breaker is open (True by default).
    snapshots : bool
        Pin an epoch snapshot per admission generation (True) or serve
        the live database directly (False — only safe without
        concurrent writers).
    audit : :class:`~repro.durability.audit.AuditLog` or None
        Per-request JSONL audit trail.  Workers record every request's
        outcome — request id, epoch-table hash, strategy, attempts,
        execution time, and a deterministic result fingerprint — and
        :meth:`drain` flushes the buffer, so the log is
        replay-checkable after recovery (see
        :func:`~repro.durability.audit.verify_audit`).
    clock, sleep : callables
        Injectable time sources for deadlines/breakers and backoff
        sleeps; tests drive fake time through these.
    """

    def __init__(self, prepared, db, workers=2, queue_capacity=16,
                 default_timeout=None, retry=None, breakers=None,
                 fallback=True, snapshots=True, audit=None, clock=None,
                 sleep=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.prepared = prepared
        self.db = db
        self.queue_capacity = queue_capacity
        self.default_timeout = default_timeout
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=1
        )
        self.breakers = breakers if breakers is not None else \
            BreakerBoard()
        self.fallback = fallback
        self.snapshots = snapshots
        self.audit = audit
        self.stats = ServiceStats()
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep
        self._queue = queue.Queue(maxsize=queue_capacity)
        self._admit_lock = threading.Lock()
        self._closed = False
        self._next_id = 0
        #: Admitted-but-unfinished requests, for drain cancellation.
        self._outstanding = {}
        self._generation = db.snapshot() if snapshots else db
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name="repro-serve-%d" % index,
                daemon=True,
            )
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- admission -----------------------------------------------------

    def submit(self, constants=None, timeout=None, budget=None):
        """Admit one request; returns a :class:`QueryFuture`.

        Raises ``ValueError`` (before the request counts as submitted)
        when ``constants`` does not match the prepared form's arity,
        :class:`~repro.errors.ServiceClosed` after :meth:`drain`, and
        :class:`~repro.errors.Overloaded` (fast, without queuing) when
        the bounded queue is at capacity.
        """
        constants = self._validated(constants)
        self.stats.bump("submitted")
        now = self._clock()
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else now + timeout
        token = CancellationToken()
        with self._admit_lock:
            if self._closed:
                self.stats.bump("rejected_closed")
                raise ServiceClosed(
                    "service is draining; admissions are closed"
                )
            request_id = self._next_id
            self._next_id += 1
            future = QueryFuture(request_id, token)
            request = _Request(
                request_id, constants, deadline, budget, token, future,
                self._refreshed_generation(), now,
            )
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self.stats.bump("shed_overload")
                raise Overloaded(
                    "queue at capacity (%d queued); request shed"
                    % self.queue_capacity,
                    reason="queue_full",
                ) from None
            self._outstanding[request_id] = request
        self.stats.bump("admitted")
        self.stats.note_depth(self._queue.qsize())
        return future

    def run(self, constants=None, timeout=None, budget=None,
            wait=None):
        """Submit and block for the result (closed-loop convenience)."""
        return self.submit(constants, timeout=timeout,
                           budget=budget).result(wait)

    def _validated(self, constants):
        """Reject malformed constants in the submitter's thread.

        A wrong-arity binding must surface here as a ``ValueError``
        before the request counts as submitted — never inside a worker,
        where an untyped crash would kill the thread.
        """
        if constants is None:
            return None
        constants = tuple(constants)
        bound = getattr(self.prepared, "bound_positions", None)
        if bound is not None and len(constants) != len(bound):
            raise ValueError(
                "query form binds %d position(s), got %d constant(s)"
                % (len(bound), len(constants))
            )
        return constants

    def _refreshed_generation(self):
        """The current snapshot generation, re-pinned iff epochs moved.

        Keeping the generation object stable while the database is
        quiet is what keeps the answer cache hot: its validity check is
        by database identity, so gratuitous re-pinning would read as an
        invalidation on every entry.
        """
        if not self.snapshots:
            return self.db
        generation = self._generation
        pinned = generation._relations
        # Snapshot the live epoch table under the database lock: a
        # concurrent writer inserting a first-use relation key would
        # otherwise resize the dict mid-iteration.
        with self.db._lock:
            live = [
                (key, rel.epoch)
                for key, rel in self.db._relations.items()
            ]
        stale = len(live) != len(pinned)
        if not stale:
            for key, epoch in live:
                view = pinned.get(key)
                if view is None or view.epoch != epoch:
                    stale = True
                    break
        if stale:
            generation = self.db.snapshot()
            self._generation = generation
            self.stats.bump("refreshes")
        return generation

    # -- the worker side -----------------------------------------------

    def _worker_loop(self):
        while True:
            request = self._queue.get()
            if request is _SENTINEL:
                return
            try:
                self._serve(request)
            finally:
                with self._admit_lock:
                    self._outstanding.pop(request.id, None)

    def _serve(self, request):
        now = self._clock()
        if request.token.cancelled:
            # Cancelled while still queued (future.cancel() before any
            # worker dequeued it): resolve without evaluation.  Without
            # this check the request would be fully evaluated and its
            # cancellation only honoured if a budget checkpoint
            # happened to fire mid-run.
            self.stats.bump("cancelled")
            error = EvaluationCancelled(
                "request %d cancelled while queued" % request.id
            )
            request.future._resolve(error=error)
            self._audit_record(request, "cancelled", error=error,
                               started=now)
            return
        if request.deadline is not None and now >= request.deadline:
            # Shed without evaluation: the deadline passed while the
            # request sat in the queue.
            self.stats.bump("shed_expired")
            error = Overloaded(
                "deadline expired after %.4fs in queue; request shed "
                "unevaluated" % (now - request.submitted_at),
                reason="expired",
            )
            request.future._resolve(error=error)
            self._audit_record(request, "expired", error=error,
                               started=now)
            return
        try:
            result = self._attempts(request)
        except EvaluationCancelled as exc:
            self.stats.bump("cancelled")
            request.future._resolve(error=exc)
            self._audit_record(request, "cancelled", error=exc,
                               started=now)
        except ReproError as exc:
            self.stats.bump("failed")
            request.future._resolve(error=exc)
            self._audit_record(request, "failed", error=exc, started=now)
        except BaseException as exc:
            # An untyped bug escaping an attempt must not kill the
            # worker thread: that would shrink the pool permanently,
            # leave the future unresolved (hanging result() callers
            # forever), and unbalance the admission ledger.  Resolve
            # the future with the raw error instead.
            self.stats.bump("failed")
            request.future._resolve(error=exc)
            self._audit_record(request, "failed", error=exc, started=now)
        else:
            self.stats.bump("completed")
            request.future._resolve(result=result)
            self._audit_record(request, "completed", result=result,
                               started=now)

    def _audit_record(self, request, outcome, result=None, error=None,
                      started=None):
        """Append one request's outcome to the audit trail (if any).

        Auditing is observability, never control flow: any failure to
        render or write the entry is swallowed so it cannot fail the
        request it describes or kill the worker thread.
        """
        if self.audit is None:
            return
        try:
            from ..durability.audit import (
                epoch_hash,
                jsonable_constants,
                result_fingerprint,
            )

            constants = (
                request.constants
                if request.constants is not None
                else getattr(self.prepared, "default_constants", ())
            )
            rendered, replayable = jsonable_constants(constants)
            entry = {
                "request_id": request.id,
                "constants": rendered,
                "replayable": replayable,
                "epoch_hash": epoch_hash(request.db),
                "lineage": getattr(request.db, "lineage", None),
                "outcome": outcome,
                "execution_time_ms": round(
                    (self._clock() - started) * 1000.0, 4
                ) if started is not None else None,
            }
            if error is not None:
                entry["error"] = "%s: %s" % (type(error).__name__, error)
            if result is not None:
                entry["strategy"] = result.method
                entry["result_fingerprint"] = result_fingerprint(
                    result.answers
                )
                service_extras = result.extras.get("service", {})
                entry["attempts"] = service_extras.get("attempts")
                entry["fallback"] = service_extras.get("fallback")
            self.audit.record(entry)
        except Exception:  # pragma: no cover - defensive
            pass

    def _budget_for(self, request):
        """A fresh per-attempt budget carrying the request's remaining
        deadline, cancellation token, and any caller-supplied caps."""
        remaining = None
        if request.deadline is not None:
            remaining = max(0.0, request.deadline - self._clock())
        if request.budget is not None:
            return request.budget.child(
                timeout=remaining, token=request.token
            )
        return ResourceBudget(
            timeout=remaining, token=request.token, clock=self._clock
        )

    def _attempts(self, request):
        """Primary strategy with retry/breaker, then the fallback chain."""
        method = self.prepared.method
        breaker = self.breakers.get(method)
        backoff = self.retry.backoff(request.id)
        attempt = 0
        while True:
            if not breaker.allow():
                if not self.fallback:
                    raise CircuitOpenError(
                        "circuit for %r is %s and no fallback is "
                        "configured" % (method, breaker.state)
                    )
                return self._fallback(request, skip=method)
            attempt += 1
            budget = self._budget_for(request)
            try:
                result = self.prepared.run(
                    request.constants, db=request.db, budget=budget
                )
            except BudgetExceededError as exc:
                # The caller's limits, not the strategy's health: never
                # recorded on the breaker.  Retry timing-dependent
                # aborts while the schedule and the request deadline
                # both allow.  Fact/round caps are deterministic
                # against the pinned snapshot and inherited budget, so
                # a retry would fail identically — fail fast instead of
                # burning backoff sleep in a worker slot.
                if isinstance(exc, EvaluationCancelled):
                    raise
                if isinstance(
                    exc, (FactBudgetExceeded, RoundBudgetExceeded)
                ):
                    raise
                delay = next(backoff, None)
                if delay is None:
                    raise
                if request.deadline is not None and (
                    self._clock() + delay >= request.deadline
                ):
                    raise
                self.stats.bump("retried")
                self._sleep(delay)
                continue
            except _STRATEGY_ERRORS:
                breaker.record_failure()
                if not self.fallback:
                    raise
                return self._fallback(request, skip=method)
            breaker.record_success()
            result.extras["service"] = {
                "attempts": attempt,
                "fallback": False,
                "generation": id(request.db),
            }
            return result

    def _fallback(self, request, skip):
        """Degrade through the resilient chain (minus ``skip``), with
        the shared breaker board and request-derived budgets."""
        self.stats.bump("fallbacks")
        chain = tuple(m for m in DEFAULT_CHAIN if m != skip)
        policy = FallbackPolicy(chain=chain)
        report = run_resilient(
            self.prepared.bind(request.constants), request.db, policy,
            breakers=self.breakers,
            budget_factory=lambda: self._budget_for(request),
        )
        result = report.result
        result.extras["service"] = {
            "attempts": len(report.attempts),
            "fallback": True,
            "resilient": report.summary(),
            "generation": id(request.db),
        }
        return result

    # -- shutdown ------------------------------------------------------

    def drain(self, grace=None):
        """Stop admissions, finish accepted work, cancel stragglers.

        Admissions close immediately (subsequent submits raise
        :class:`~repro.errors.ServiceClosed`); queued and in-flight
        requests run to completion.  With ``grace`` set, workers still
        alive after that many (real) seconds get their requests'
        cancellation tokens flipped, which aborts evaluation at the
        next budget checkpoint with
        :class:`~repro.errors.EvaluationCancelled`.  Returns True when
        everything finished gracefully, False when stragglers had to be
        cancelled.  Idempotent.
        """
        with self._admit_lock:
            already = self._closed
            self._closed = True
        # One absolute deadline covers sentinel puts and joins alike,
        # so the graceful phase is bounded by ``grace`` overall rather
        # than per step.
        deadline = None if grace is None else time.monotonic() + grace
        if not already:
            for _ in self._workers:
                # Sentinels queue behind every admitted request (FIFO),
                # so each worker drains real work before exiting.  If
                # the queue is full of stuck work the put itself can't
                # land — cancel the stragglers to make room.  Past the
                # deadline, a small floor keeps the retry loop from
                # spinning hot while cancelled work unwinds.
                while True:
                    try:
                        self._queue.put(
                            _SENTINEL,
                            timeout=None if deadline is None else max(
                                0.01, deadline - time.monotonic()
                            ),
                        )
                        break
                    except queue.Full:
                        self._cancel_outstanding()
        graceful = True
        for worker in self._workers:
            worker.join(
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            if worker.is_alive():
                graceful = False
        if not graceful:
            # Grace expired: flip every outstanding token and wait for
            # the workers to notice at their next round boundary.
            self._cancel_outstanding()
            for worker in self._workers:
                worker.join()
        if self.audit is not None:
            # Workers are parked; every recorded entry reaches disk.
            self.audit.flush()
        return graceful

    def close(self, grace=None):
        """Alias for :meth:`drain` (context-manager exit path)."""
        return self.drain(grace=grace)

    def _cancel_outstanding(self):
        with self._admit_lock:
            requests = list(self._outstanding.values())
        for request in requests:
            request.token.cancel()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.drain()
        return False

    # -- observability -------------------------------------------------

    def counters(self):
        """The ``service`` counter block: admission ledger, retries,
        breaker trips/rejections, per-strategy breaker states, and —
        when the prepared query carries them — atomic snapshots of the
        answer-cache and counting-store counters."""
        counters = self.stats.as_dict()
        counters["breaker_trips"] = self.breakers.trips
        counters["breaker_rejections"] = self.breakers.rejections
        counters["breaker_states"] = self.breakers.states()
        cache = getattr(self.prepared, "cache", None)
        if cache is not None:
            counters["answer_cache"] = cache.stats()
        store = getattr(self.prepared, "counting_store", None)
        if store is not None:
            counters["counting_store"] = store.stats()
        if self.audit is not None:
            counters["audit"] = {
                "path": self.audit.path,
                "entries": self.audit.entries_written,
            }
        return counters

    def __repr__(self):
        return "QueryService(%s, %d worker(s), %s)" % (
            getattr(self.prepared, "method", "?"), len(self._workers),
            "closed" if self._closed else "open",
        )
