"""Per-strategy circuit breakers.

A strategy that keeps failing — a counting method on data that turned
cyclic, an engine bug surfacing under one rewriting — wastes its whole
attempt budget on every request before the fallback chain saves the
answer.  A :class:`CircuitBreaker` remembers: after ``threshold``
*consecutive* failures it opens and the strategy is skipped outright
(:meth:`allow` returns False) until ``cooldown`` seconds pass; the
first caller after the cooldown is admitted as a half-open *probe*
whose outcome decides whether the breaker closes again or re-opens.

What counts as a failure is the caller's choice, with one house rule:
budget aborts (:class:`~repro.errors.BudgetExceededError`) describe the
*caller's* limits, not the strategy's health, so neither the resilient
runner nor the query service records them here — a service melting down
under tight deadlines must not also poison its strategy table.

All transitions run under a lock (the serving layer shares one breaker
per strategy across its worker pool) and the clock is injectable, so
tests step through open → half-open → closed without sleeping.
"""

import threading
import time

#: Breaker states.  ``closed`` = healthy, requests flow; ``open`` =
#: tripped, requests are rejected until the cooldown passes;
#: ``half_open`` = one probe is in flight, everyone else still waits.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after K consecutive failures; half-open after a cooldown."""

    __slots__ = ("threshold", "cooldown", "_clock", "_lock", "_state",
                 "_failures", "_opened_at", "_probed_at", "trips",
                 "rejections", "successes", "failures")

    def __init__(self, threshold=5, cooldown=30.0, clock=None,
                 lock=None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock if clock is not None else time.monotonic
        # Re-entrant so a caller holding a shared metrics lock (the
        # service snapshots boards and queue stats atomically) can read
        # state without deadlocking against itself.
        self._lock = lock if lock is not None else threading.RLock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = None
        self._probed_at = None
        #: Transitions into the open state (including half-open probes
        #: that failed and re-opened it).
        self.trips = 0
        #: Calls turned away by :meth:`allow`.
        self.rejections = 0
        self.successes = 0
        self.failures = 0

    @property
    def state(self):
        """Current state — re-evaluates the cooldown, so an open
        breaker whose cooldown has passed reports ``half_open``-eligible
        ``open`` until a caller actually probes it."""
        with self._lock:
            return self._state

    def allow(self):
        """May the strategy run now?  The first permitted call after an
        open breaker's cooldown becomes the half-open probe; until its
        outcome is recorded, every other caller is rejected.

        A probe whose attempt ends with no recordable outcome (budget
        aborts and cancellations are deliberately never recorded here)
        must not wedge the breaker half-open forever: once a full
        cooldown passes with the probe unresolved, the next caller is
        admitted as a fresh probe."""
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN:
                if now - self._opened_at >= self.cooldown:
                    self._state = HALF_OPEN
                    self._probed_at = now
                    return True
            elif self._state == HALF_OPEN:
                if now - self._probed_at >= self.cooldown:
                    self._probed_at = now
                    return True
            self.rejections += 1
            return False

    def record_success(self):
        """The strategy finished cleanly: close and reset the streak."""
        with self._lock:
            self.successes += 1
            self._failures = 0
            self._state = CLOSED

    def record_failure(self):
        """One more consecutive failure; trips at the threshold, and a
        failed half-open probe re-opens immediately."""
        with self._lock:
            self.failures += 1
            self._failures += 1
            if (
                self._state == HALF_OPEN
                or self._failures >= self.threshold
            ):
                if self._state != OPEN:
                    self.trips += 1
                self._state = OPEN
                self._opened_at = self._clock()
                self._failures = 0

    def __repr__(self):
        return "CircuitBreaker(%s, %d trip(s), %d rejection(s))" % (
            self.state, self.trips, self.rejections
        )


class BreakerBoard:
    """Per-strategy breakers created on demand with shared settings.

    Duck-types ``dict.get`` (what :func:`repro.exec.resilient.
    run_resilient` calls), except a missing strategy gets a fresh
    breaker instead of ``None`` — every strategy the board ever sees is
    tracked.
    """

    __slots__ = ("threshold", "cooldown", "_clock", "_lock",
                 "_breaker_lock", "_breakers")

    def __init__(self, threshold=5, cooldown=30.0, clock=None,
                 lock=None):
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = lock if lock is not None else threading.RLock()
        #: Lock shared by every breaker this board creates; when the
        #: service passes its metrics lock here, a ``states()`` sweep
        #: is atomic with the queue/stats counters it is reported with.
        self._breaker_lock = lock
        self._breakers = {}

    def get(self, method):
        breaker = self._breakers.get(method)
        if breaker is None:
            with self._lock:
                breaker = self._breakers.get(method)
                if breaker is None:
                    breaker = CircuitBreaker(
                        threshold=self.threshold,
                        cooldown=self.cooldown,
                        clock=self._clock,
                        lock=self._breaker_lock,
                    )
                    self._breakers[method] = breaker
        return breaker

    def states(self):
        """``{strategy: state}`` for every breaker seen so far."""
        with self._lock:
            return {
                method: breaker.state
                for method, breaker in sorted(self._breakers.items())
            }

    @property
    def trips(self):
        with self._lock:
            return sum(b.trips for b in self._breakers.values())

    @property
    def rejections(self):
        with self._lock:
            return sum(b.rejections for b in self._breakers.values())

    def __iter__(self):
        with self._lock:
            return iter(sorted(self._breakers.items()))

    def __repr__(self):
        return "BreakerBoard(%s)" % ", ".join(
            "%s=%s" % (m, s) for m, s in self.states().items()
        ) if self._breakers else "BreakerBoard(empty)"
