"""Concurrent query serving: admission control, deadlines, breakers.

The production-facing front end over the prepared-query layer: a
:class:`QueryService` runs one query form on a worker pool with a
bounded admission queue, per-request deadline propagation, seeded
retry backoff, per-strategy circuit breakers and graceful drain.  See
:mod:`repro.serve.service` for the full contract.
"""

from .breaker import BreakerBoard, CircuitBreaker
from .retry import RetryPolicy
from .service import QueryFuture, QueryService, ServiceStats

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "QueryFuture",
    "QueryService",
    "RetryPolicy",
    "ServiceStats",
]
