"""Concurrent query serving: admission control, deadlines, breakers.

The production-facing front end over the prepared-query layer: a
:class:`QueryService` runs query forms on a worker pool with
per-tenant bounded admission lanes drained by deficit round-robin,
tenant quotas (:mod:`repro.tenancy`), per-request deadline
propagation, seeded retry backoff, per-strategy circuit breakers and
graceful drain.  See :mod:`repro.serve.service` for the full contract.
"""

from .breaker import BreakerBoard, CircuitBreaker
from .retry import RetryPolicy
from .service import QueryFuture, QueryService, ServiceStats

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "QueryFuture",
    "QueryService",
    "RetryPolicy",
    "ServiceStats",
]
