"""Deterministic seeded backoff for budget-aborted attempts.

A request whose attempt died on a :class:`~repro.errors.
BudgetExceededError` may simply have lost a race — an injected stall, a
neighbour hogging the worker, a transiently slow probe — so the service
retries it.  Naive retries synchronize: every shed request comes back
at the same instant and overloads the queue again.  The classic fix is
exponential backoff with jitter; the twist here is that *all*
randomness flows from one seed plus the request id, so a run can be
replayed fault-for-fault and delay-for-delay — the same determinism
contract :mod:`repro.engine.faults` keeps.
"""

import random


class RetryPolicy:
    """How often, and after what delays, budget-aborted attempts retry.

    Parameters
    ----------
    max_attempts : int
        Total attempts per request (1 = no retries).
    base_delay : float
        Seconds before the first retry, pre-jitter.
    multiplier : float
        Exponential growth factor between retries.
    jitter : float
        Fraction of the delay added as seeded noise: the actual delay
        is ``delay * (1 + jitter * u)`` with ``u`` uniform in [0, 1).
    seed : int
        Root of all randomness.  The per-request stream is seeded with
        ``(seed, request_id)``, so delays are deterministic per request
        and independent across requests — no hidden shared-RNG state to
        race on between worker threads.
    """

    __slots__ = ("max_attempts", "base_delay", "multiplier", "jitter",
                 "seed")

    def __init__(self, max_attempts=3, base_delay=0.05, multiplier=2.0,
                 jitter=0.5, seed=0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or multiplier < 1.0 or jitter < 0:
            raise ValueError(
                "base_delay/jitter must be non-negative and "
                "multiplier >= 1"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.seed = seed

    def backoff(self, request_id, stream=0):
        """Yield the retry delays for one request, in order.

        Yields ``max_attempts - 1`` values.  The generator owns a
        private :class:`random.Random`, so concurrent requests drawing
        jitter never perturb each other's sequences — same seed, same
        request id, same delays, on any schedule.

        ``stream`` splits the seed space once more: the multi-tenant
        service derives a stream per tenant, so one tenant's retry
        jitter is independent of its neighbours' and a single tenant's
        schedule replays identically whatever the others do.  Stream 0
        (the default, and any untenanted request) reproduces the exact
        delays this policy yielded before streams existed.
        """
        # Mix seed, request id and stream into one int (random.Random
        # only accepts scalar seeds); the odd multipliers keep nearby
        # ids and streams on unrelated sequences, and XOR with stream 0
        # is the identity, preserving historical delays.
        rng = random.Random(
            (self.seed * 0x9E3779B1 + request_id)
            ^ (stream * 0x85EBCA6B)
        )
        delay = self.base_delay
        for _attempt in range(self.max_attempts - 1):
            yield delay * (1.0 + self.jitter * rng.random())
            delay *= self.multiplier

    def __repr__(self):
        return (
            "RetryPolicy(%d attempt(s), base=%gs, x%g, jitter=%g, "
            "seed=%d)"
            % (self.max_attempts, self.base_delay, self.multiplier,
               self.jitter, self.seed)
        )
