"""Command-line interface.

Main subcommands::

    python -m repro run PROGRAM.dl [--db FACTS.dl] [--method auto]
                       [--timeout S] [--max-facts N] [--resilient]
                       [--workers N] [--cache [CAPACITY]]
                       [--batch BINDINGS] [--wal DIR] [--fsync batch]
                       [--checkpoint]
    python -m repro rewrite PROGRAM.dl --method magic
    python -m repro explain PROGRAM.dl [--db FACTS.dl]
    python -m repro bench WORKLOAD [--methods m1,m2] [--param k=v ...]
    python -m repro serve-bench [--queries N] [--workers N]
                       [--eval-workers N] [--capacity N] [--timeout S]
                       [--poison] [--audit PATH] [--tenants N]
                       [--quota RATE[:BURST]]
    python -m repro recover DIR [--checkpoint] [--dump FACTS.dl]

``PROGRAM.dl`` is a program text containing exactly one ``?-`` goal;
``--db`` points at a fact file (facts may also live in the program
file itself — they are treated as base-predicate overlays).  ``bench``
runs a strategy matrix over one of the named workloads from
:mod:`repro.data.workloads`.  ``run --wal DIR`` serves from a durable
database (``--db`` facts are ingested through its write-ahead log);
``recover DIR`` replays a durability directory and prints the
recovery report.
"""

import argparse
import sys

from .bench import matrix_table, run_matrix
from .data import WORKLOADS, get_workload
from .datalog import format_query, parse_query
from .engine import Database
from .errors import ReproError
from .exec import STRATEGIES
from .rewriting import (
    classical_counting_rewrite,
    cyclic_counting_program_text,
    extended_counting_rewrite,
    magic_rewrite,
    optimize,
    reduce_rewriting,
)

#: Rewritings printable by the ``rewrite`` subcommand.
REWRITERS = {
    "magic": lambda q: format_query(magic_rewrite(q).query,
                                    show_labels=True),
    "classical_counting": lambda q: format_query(
        classical_counting_rewrite(q).query, show_labels=True
    ),
    "extended_counting": lambda q: format_query(
        extended_counting_rewrite(q).query, show_labels=True
    ),
    "reduced_counting": lambda q: format_query(
        reduce_rewriting(extended_counting_rewrite(q)).query,
        show_labels=True,
    ),
    "cyclic_counting": cyclic_counting_program_text,
}


def _read(path):
    with open(path) as handle:
        return handle.read()


def _load_query_and_db(args):
    query = parse_query(_read(args.program))
    db = Database()
    if args.db:
        db = Database.from_text(_read(args.db))
    return query, db


def _make_budget(args):
    """A ResourceBudget from --timeout/--max-facts, or None."""
    if args.timeout is None and args.max_facts is None:
        return None
    from .engine.guard import ResourceBudget

    return ResourceBudget(timeout=args.timeout, max_facts=args.max_facts)


def _parse_bindings(text):
    """Parse ``--batch`` bindings: comma-separated, colons inside.

    ``"ann,bob"`` is two one-constant bindings; ``"ann:1,bob:2"`` two
    two-constant bindings.  Integer-looking values become ints, since
    that is how the fact parser reads them.
    """
    def coerce(token):
        try:
            return int(token)
        except ValueError:
            return token

    bindings = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        bindings.append(
            tuple(coerce(part) for part in chunk.split(":"))
        )
    return bindings


def _cmd_run_prepared(args, query, db, out):
    from .exec import AnswerCache, CountingTableStore, PreparedQuery

    cache = AnswerCache(capacity=args.cache if args.cache else 128)
    prepared = PreparedQuery(
        query, db if args.method == "auto" else None,
        method=args.method, cache=cache,
        counting_store=CountingTableStore(),
    )
    bindings = (
        _parse_bindings(args.batch) if args.batch else [None]
    )
    out.write("method : %s (prepared)\n" % prepared.method)
    budget = _make_budget(args)
    results = prepared.run_batch(bindings, db=db, budget=budget,
                                 workers=args.workers)
    for binding, result in zip(bindings, results):
        shown = binding if binding is not None else \
            prepared.default_constants
        out.write(
            "query  : %s -> %d answers%s\n"
            % (
                ", ".join(str(v) for v in shown),
                len(result.answers),
                " (cached)" if result.extras.get("cache_hit") else "",
            )
        )
    if len(results) == 1:
        for answer in sorted(results[0].answers):
            out.write("answer : %s\n" % (answer,))
    out.write(
        "cache  : %d hits, %d misses (%.0f%% hit rate)\n"
        % (cache.hits, cache.misses, 100.0 * cache.hit_rate)
    )
    return 0


def _open_durable(args, out):
    """A recovered :class:`DurableDatabase` for ``--wal DIR``.

    ``--db`` facts are staged through a throwaway in-memory database
    (reusing ``from_text``'s validation) and ingested as one logged
    batch — duplicate facts are deduplicated by the engine exactly as
    replay will deduplicate them, so re-running with the same fact
    file is idempotent.
    """
    from .durability import DurableDatabase

    db = DurableDatabase(args.wal, fsync=args.fsync)
    report = db.recovery
    if not report.fresh:
        out.write(
            "recover: %d WAL record(s), checkpoint@%d, replayed %d%s\n"
            % (report.wal_records, report.checkpoint_seq,
               report.replayed,
               ", torn tail truncated" if report.truncated_tail else "")
        )
    if args.db:
        staged = Database.from_text(_read(args.db))
        db.add_facts(
            (key[0], row)
            for key, rel in sorted(staged._relations.items())
            for row in rel._log
        )
        db.flush()
    return db


def _cmd_run(args, out):
    query = parse_query(_read(args.program))
    if args.wal:
        db = _open_durable(args, out)
        try:
            code = _run_loaded(args, query, db, out)
            if args.checkpoint:
                out.write("ckpt   : %s\n" % db.checkpoint())
            return code
        finally:
            db.close()
    if args.checkpoint:
        out.write("error: --checkpoint requires --wal DIR\n")
        return 1
    db = Database.from_text(_read(args.db)) if args.db else Database()
    return _run_loaded(args, query, db, out)


def _run_loaded(args, query, db, out):
    if args.cache is not None or args.batch:
        if args.resilient:
            out.write(
                "error: --cache/--batch cannot be combined with "
                "--resilient\n"
            )
            return 1
        return _cmd_run_prepared(args, query, db, out)
    workers = args.workers
    recovery = getattr(args, "recovery", None)
    max_repairs = getattr(args, "max_repairs", None)
    if recovery is not None or max_repairs is not None:
        from .parallel import RecoveryPolicy

        recovery = RecoveryPolicy(
            mode=recovery if recovery is not None else "reassign",
            max_repairs=max_repairs if max_repairs is not None else 2,
        )
    if args.resilient:
        from .exec.resilient import DEFAULT_CHAIN, FallbackPolicy, \
            run_resilient

        chain = DEFAULT_CHAIN
        if args.method != "auto" and args.method not in chain:
            chain = (args.method,) + chain
        elif args.method != "auto":
            # Start the default chain at the requested method.
            chain = chain[chain.index(args.method):]
        if workers is not None and workers >= 2:
            # Sharded fixpoint leads; every worker failure degrades
            # into the serial chain.
            chain = ("parallel",) + tuple(
                m for m in chain if m != "parallel"
            )
        policy = FallbackPolicy(
            chain=chain, timeout=args.timeout, max_facts=args.max_facts,
            workers=workers if workers is not None else 2,
            recovery=recovery,
        )
        report = run_resilient(query, db, policy)
        result = report.result
        out.write(
            "method : %s (resilient, %d failed attempts)\n"
            % (report.method, report.fallback_depth)
        )
        for attempt in report.attempts:
            if attempt.failed:
                out.write(
                    "tried  : %s -> %s: %s\n"
                    % (attempt.method, attempt.error_class, attempt.error)
                )
    else:
        result = None
        if workers is not None and workers >= 2:
            from .errors import EvaluationError, NotApplicableError
            from .exec.strategies import run_strategy

            try:
                result = run_strategy(
                    "parallel", query, db, budget=_make_budget(args),
                    workers=workers, recovery=recovery,
                )
            except (NotApplicableError, EvaluationError) as exc:
                out.write(
                    "note   : parallel evaluation fell back to serial "
                    "(%s: %s)\n" % (type(exc).__name__, exc)
                )
            else:
                out.write(
                    "method : parallel (%d workers, %d barriers, "
                    "%d exchange bytes)\n"
                    % (result.extras["workers"],
                       result.extras["barriers"],
                       result.extras["exchange_bytes"])
                )
                healing = result.extras.get("recovery") or {}
                if healing.get("repairs"):
                    out.write(
                        "healed : %d repairs (%d crashes, %d hangs, "
                        "%d reassigned, %d respawned, %d rounds "
                        "replayed, %.4fs)\n"
                        % (healing["repairs"], healing["crashes"],
                           healing["hangs"], healing["reassignments"],
                           healing["respawns"],
                           healing["rounds_replayed"],
                           healing["recovery_seconds"])
                    )
        if result is None:
            plan = optimize(query, db if args.method == "auto" else None,
                            method=args.method)
            result = plan.execute(db, budget=_make_budget(args))
            out.write("method : %s\n" % plan.explain())
    for answer in sorted(result.answers):
        out.write("answer : %s\n" % (answer,))
    out.write("count  : %d answers\n" % len(result.answers))
    out.write("work   : %d\n" % result.stats.total_work)
    out.write("time   : %.4fs\n" % result.elapsed)
    return 0


def _cmd_rewrite(args, out):
    query = parse_query(_read(args.program))
    out.write(REWRITERS[args.method](query))
    out.write("\n")
    return 0


def _cmd_check(args, out):
    from .datalog.validation import validate_query

    query = parse_query(_read(args.program))
    report = validate_query(query)
    out.write(report.render() + "\n")
    return 0 if report.ok() else 1


def _cmd_explain(args, out):
    query, db = _load_query_and_db(args)
    plan = optimize(query, db if args.db else None)
    out.write(plan.explain() + "\n")
    return 0


def _cmd_trace(args, out):
    from .engine import SemiNaiveEngine
    from .engine.fixpoint import goal_filter
    from .engine.tracing import DerivationTrace

    query, db = _load_query_and_db(args)
    trace = DerivationTrace()
    engine = SemiNaiveEngine(query.program, db, trace=trace)
    engine.run()
    goal = query.goal
    relation = engine.relation(goal.key)
    tuples = sorted(goal_filter(goal, relation), key=repr)
    if not tuples:
        out.write("no answers\n")
        return 0
    shown = tuples[: args.limit]
    for row in shown:
        out.write(trace.explain(goal.key, row).render() + "\n\n")
    if len(tuples) > len(shown):
        out.write(
            "... %d more answers (raise --limit to see them)\n"
            % (len(tuples) - len(shown))
        )
    return 0


def _cmd_bench(args, out):
    workload = get_workload(args.workload)
    params = {}
    for item in args.param or ():
        key, _sep, value = item.partition("=")
        params[key] = int(value)
    db, _source = workload.make_db(**params)
    methods = (
        args.methods.split(",") if args.methods
        else list(workload.applicable)
    )
    rows = run_matrix(workload.query, db, methods, label=args.workload)
    out.write(matrix_table(rows, title=workload.description) + "\n")
    if args.csv:
        from .bench import write_csv

        count = write_csv(rows, args.csv)
        out.write("wrote %d records to %s\n" % (count, args.csv))
    if args.json:
        from .bench import write_json

        count = write_json(rows, args.json)
        out.write("wrote %d records to %s\n" % (count, args.json))
    return 0


def _cmd_serve_bench(args, out):
    """Drive a QueryService over an sg_forest binding stream.

    Open-loop: every binding is submitted up front, so offered load can
    exceed ``--capacity`` and exercise admission control.  Served
    answers are cross-checked against single-threaded evaluation of the
    same bindings before the counter block is printed.
    """
    import json as json_module
    import time as time_module

    from .data.workloads import (
        WORKLOADS, forest_bindings, poison_forest, sg_forest,
    )
    from .errors import Overloaded, QuotaExceeded
    from .exec import PreparedQuery
    from .exec.strategies import run_strategy
    from .serve import BreakerBoard, QueryService, RetryPolicy

    db, _source = sg_forest(trees=args.trees, fanout=args.fanout,
                            depth=args.depth)
    prepared = PreparedQuery(WORKLOADS["sg_forest"].query, db)
    if args.poison:
        leaf, root = poison_forest(db, tree=args.trees - 1)
        out.write("poison : up(%s, %s) closes a cycle in tree %d\n"
                  % (leaf, root, args.trees - 1))
    bindings = forest_bindings(trees=args.trees, queries=args.queries)
    audit = None
    if args.audit:
        from .durability import AuditLog

        audit = AuditLog(args.audit)
    tenants = None
    names = [None]
    if args.tenants:
        from .tenancy import TenantQuota

        rate = burst = None
        if args.quota:
            parts = args.quota.split(":", 1)
            rate = float(parts[0])
            burst = float(parts[1]) if len(parts) > 1 else None
        names = ["tenant%d" % i for i in range(args.tenants)]
        tenants = {
            name: TenantQuota(rate=rate, burst=burst,
                              queue_capacity=args.capacity)
            for name in names
        }
    service = QueryService(
        prepared, db, workers=args.workers,
        queue_capacity=args.capacity, default_timeout=args.timeout,
        retry=RetryPolicy(seed=args.seed),
        breakers=BreakerBoard(threshold=args.breaker_threshold),
        audit=audit, tenants=tenants,
        eval_workers=args.eval_workers,
        eval_recovery=getattr(args, "recovery", None),
    )
    out.write(
        "method : %s (%d worker(s), queue capacity %d)\n"
        % (prepared.method, args.workers, args.capacity)
    )
    if tenants is not None:
        out.write(
            "tenants: %d lane(s), request rate %s\n"
            % (len(names),
               "unlimited" if rate is None
               else "%g/s (burst %g)" % (rate, burst or rate))
        )
    started = time_module.perf_counter()
    admitted, hints = [], []
    for index, binding in enumerate(bindings):
        tenant = names[index % len(names)]
        try:
            admitted.append(
                (binding, service.submit(binding, tenant=tenant))
            )
        except (Overloaded, QuotaExceeded) as exc:
            # Counted by the service as shed_overload / shed_quota;
            # keep the machine-readable back-pressure hint.
            if exc.retry_after is not None:
                hints.append(exc.retry_after)
    served, failed = [], []
    for binding, future in admitted:
        error = future.exception(timeout=600.0)
        if error is None:
            served.append((binding, future.result(0)))
        else:
            failed.append((binding, error))
    elapsed = time_module.perf_counter() - started
    service.drain()
    mismatched = sum(
        1 for binding, result in served
        if result.answers != run_strategy(
            result.method, prepared.bind(binding), db
        ).answers
    )
    counters = service.counters()
    out.write(
        "load   : %d offered -> %d served, %d shed, %d failed\n"
        % (len(bindings), len(served),
           counters["shed_overload"] + counters["shed_expired"]
           + counters["shed_quota"],
           len(failed))
    )
    if hints:
        out.write(
            "hints  : %d shed(s) carried retry_after "
            "(%.4fs min, %.4fs max)\n"
            % (len(hints), min(hints), max(hints))
        )
    out.write(
        "verify : %s\n"
        % ("answers match single-threaded evaluation" if not mismatched
           else "%d served answers MISMATCH" % mismatched)
    )
    out.write("time   : %.4fs\n" % elapsed)
    out.write("service counters:\n")
    out.write(json_module.dumps(counters, indent=2, sort_keys=True))
    out.write("\n")
    if audit is not None:
        audit.close()
        out.write("audit  : %d entr%s -> %s\n"
                  % (audit.entries_written,
                     "y" if audit.entries_written == 1 else "ies",
                     args.audit))
    return 1 if mismatched else 0


def _cmd_recover(args, out):
    """Replay a durability directory and print the recovery report."""
    import json as json_module

    from .durability import recover

    db, report = recover(args.directory, fsync=args.fsync)
    try:
        out.write(
            json_module.dumps(report.to_dict(), indent=2,
                              sort_keys=True) + "\n"
        )
        out.write(
            "facts  : %d across %d relation(s)\n"
            % (db.total_facts(), len(db.keys()))
        )
        if args.checkpoint:
            out.write("ckpt   : %s\n" % db.checkpoint())
        if args.dump:
            with open(args.dump, "w") as handle:
                handle.write(db.to_text() + "\n")
            out.write("wrote facts to %s\n" % args.dump)
    finally:
        db.close()
    return 0


def _cmd_experiments(args, out):
    """Regenerate every experiment table by running the bench suite."""
    import os

    import pytest as pytest_module

    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))),
        "benchmarks",
    )
    if not os.path.isdir(bench_dir):
        out.write(
            "error: benchmarks directory not found at %s (run from a "
            "source checkout)\n" % bench_dir
        )
        return 1
    argv = [bench_dir, "--benchmark-only", "-q"]
    if args.experiment:
        argv.append("-k")
        argv.append(args.experiment)
    return pytest_module.main(argv)


def _cmd_gen(args, out):
    workload = get_workload(args.workload)
    params = {}
    for item in args.param or ():
        key, _sep, value = item.partition("=")
        params[key] = int(value)
    db, _source = workload.make_db(**params)
    text = db.to_text()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        out.write(
            "wrote %d facts to %s\n" % (db.total_facts(), args.output)
        )
    else:
        out.write(text + "\n")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Counting-method optimization of linear Datalog "
                    "(Greco & Zaniolo, EDBT 1992)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a query")
    run.add_argument("program", help="program file with one ?- goal")
    run.add_argument("--db", help="fact file")
    run.add_argument(
        "--method", default="auto",
        choices=["auto"] + sorted(STRATEGIES),
    )
    run.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock budget; exceeding it raises DeadlineExceeded",
    )
    run.add_argument(
        "--max-facts", type=int, metavar="N",
        help="derived-fact budget; exceeding it raises FactBudgetExceeded",
    )
    run.add_argument(
        "--resilient", action="store_true",
        help="degrade through a strategy fallback chain instead of "
             "failing on the first method error",
    )
    run.add_argument(
        "--workers", type=int, metavar="N",
        help="evaluate with N data-parallel processes (sharded "
             "fixpoint); falls back to the serial --method on any "
             "planning or worker failure",
    )
    run.add_argument(
        "--recovery", choices=("reassign", "respawn", "serial"),
        help="self-healing policy for --workers: reassign dead "
             "workers' shards onto survivors, respawn replacements, "
             "or degrade to serial on the first failure",
    )
    run.add_argument(
        "--max-repairs", type=int, metavar="N",
        help="repairs the supervisor may attempt before giving up "
             "(default 2)",
    )
    run.add_argument(
        "--cache", type=int, nargs="?", const=128, metavar="CAPACITY",
        help="prepare the query once and serve it through an LRU "
             "answer cache (default capacity 128)",
    )
    run.add_argument(
        "--batch", metavar="BINDINGS",
        help="evaluate the prepared query for many bindings: comma-"
             "separated, constants within one binding separated by "
             "colons (e.g. 'ann,bob' or 'ann:1,bob:2')",
    )
    run.add_argument(
        "--wal", metavar="DIR",
        help="serve from a durable database in DIR: recover prior "
             "state, ingest --db facts through the write-ahead log",
    )
    run.add_argument(
        "--fsync", default="batch", choices=["always", "batch", "off"],
        help="WAL fsync policy for --wal (default batch)",
    )
    run.add_argument(
        "--checkpoint", action="store_true",
        help="cut a checkpoint in the --wal directory after the run",
    )
    run.set_defaults(func=_cmd_run)

    rewrite = sub.add_parser("rewrite", help="print a rewritten program")
    rewrite.add_argument("program")
    rewrite.add_argument(
        "--method", required=True, choices=sorted(REWRITERS)
    )
    rewrite.set_defaults(func=_cmd_rewrite)

    check = sub.add_parser(
        "check", help="validate a query and report method applicability"
    )
    check.add_argument("program")
    check.set_defaults(func=_cmd_check)

    explain = sub.add_parser(
        "explain", help="show which method the optimizer would pick"
    )
    explain.add_argument("program")
    explain.add_argument("--db")
    explain.set_defaults(func=_cmd_explain)

    trace = sub.add_parser(
        "trace", help="print derivation trees for a query's answers"
    )
    trace.add_argument("program")
    trace.add_argument("--db")
    trace.add_argument("--limit", type=int, default=3,
                       help="answers to explain (default 3)")
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser("bench", help="run a workload matrix")
    bench.add_argument("workload", choices=sorted(WORKLOADS))
    bench.add_argument("--methods", help="comma-separated strategy names")
    bench.add_argument(
        "--param", action="append",
        help="workload parameter, e.g. --param depth=16",
    )
    bench.add_argument("--csv", help="also write records to a CSV file")
    bench.add_argument("--json", help="also write records to a JSON file")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve-bench",
        help="drive a concurrent QueryService over the sg_forest "
             "workload and print its admission/breaker counters",
    )
    serve.add_argument("--trees", type=int, default=4,
                       help="forest trees / distinct roots (default 4)")
    serve.add_argument("--fanout", type=int, default=2)
    serve.add_argument("--depth", type=int, default=4)
    serve.add_argument("--queries", type=int, default=32,
                       help="bindings submitted open-loop (default 32)")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--eval-workers", type=int, metavar="N",
        help="grant each request N data-parallel evaluation processes "
             "(distinct from --workers, the service's thread pool)",
    )
    serve.add_argument(
        "--recovery", choices=("reassign", "respawn", "serial"),
        help="self-healing policy for --eval-workers pools (see "
             "'run --recovery')",
    )
    serve.add_argument("--capacity", type=int, default=8,
                       help="admission queue capacity (default 8)")
    serve.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-request deadline propagated into every attempt",
    )
    serve.add_argument("--seed", type=int, default=0,
                       help="retry-backoff seed (default 0)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures that trip a strategy "
                            "breaker (default 5)")
    serve.add_argument(
        "--poison", action="store_true",
        help="close an up-cycle in the last tree so the primary "
             "strategy fails and the breaker/fallback path is exercised",
    )
    serve.add_argument(
        "--audit", metavar="PATH",
        help="write a per-request JSONL audit log to PATH",
    )
    serve.add_argument(
        "--tenants", type=int, default=0, metavar="N",
        help="serve through N tenant lanes (round-robin submission) "
             "instead of the single default lane",
    )
    serve.add_argument(
        "--quota", metavar="RATE[:BURST]",
        help="per-tenant request-rate quota in requests/second, with "
             "an optional token-bucket burst (requires --tenants)",
    )
    serve.set_defaults(func=_cmd_serve_bench)

    recover = sub.add_parser(
        "recover",
        help="recover a durable database directory (checkpoint + WAL "
             "replay) and print the recovery report",
    )
    recover.add_argument("directory", help="durability directory")
    recover.add_argument(
        "--fsync", default="batch", choices=["always", "batch", "off"],
        help="WAL fsync policy for the recovered log (default batch)",
    )
    recover.add_argument(
        "--checkpoint", action="store_true",
        help="cut a fresh checkpoint after recovery",
    )
    recover.add_argument(
        "--dump", metavar="FILE",
        help="write the recovered facts as program text to FILE",
    )
    recover.set_defaults(func=_cmd_recover)

    experiments = sub.add_parser(
        "experiments",
        help="regenerate the paper's experiment tables (bench suite)",
    )
    experiments.add_argument(
        "-e", "--experiment",
        help="pytest -k filter, e.g. e5 or 'e1 or e2'",
    )
    experiments.set_defaults(func=_cmd_experiments)

    gen = sub.add_parser(
        "gen", help="generate a workload's database as fact text"
    )
    gen.add_argument("workload", choices=sorted(WORKLOADS))
    gen.add_argument("--param", action="append",
                     help="generator parameter, e.g. --param depth=16")
    gen.add_argument("-o", "--output", help="write to a file")
    gen.set_defaults(func=_cmd_gen)
    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as exc:
        out.write("error: %s\n" % exc)
        return 1
    except OSError as exc:
        out.write("error: %s\n" % exc)
        return 1


if __name__ == "__main__":
    sys.exit(main())
