"""Query-level evaluation API.

:func:`evaluate_query` runs a query's program bottom-up and filters the
goal relation by the goal's bound arguments.  The result is a
:class:`QueryResult` carrying both full goal tuples and the projection
onto the goal's free positions — the projection is what all the
rewriting executors return, so answers from different methods compare
directly.
"""

from ..datalog.rules import Query
from ..datalog.terms import Constant, ground_value
from .instrumentation import EvalStats


class QueryResult:
    """Answers of a query plus the statistics of computing them."""

    __slots__ = ("query", "tuples", "answers", "stats")

    def __init__(self, query, tuples, answers, stats):
        self.query = query
        #: Full ground goal tuples matching the bound arguments.
        self.tuples = frozenset(tuples)
        #: Projection of ``tuples`` onto the goal's free positions.
        self.answers = frozenset(answers)
        self.stats = stats

    def __iter__(self):
        return iter(self.answers)

    def __len__(self):
        return len(self.answers)

    def __contains__(self, answer):
        return answer in self.answers

    def sorted(self):
        return sorted(self.answers)

    def __repr__(self):
        return "QueryResult(%d answers)" % len(self.answers)


def goal_filter(goal, rows):
    """Rows of the goal relation compatible with the goal's constants."""
    checks = []
    for i, arg in enumerate(goal.args):
        if isinstance(arg, Constant):
            checks.append((i, arg.value))
        elif arg.is_ground():
            checks.append((i, ground_value(arg)))
    for row in rows:
        if all(row[i] == value for i, value in checks):
            yield row


def project_free(goal, rows):
    """Project rows onto the goal's non-ground positions."""
    free = [i for i, arg in enumerate(goal.args) if not arg.is_ground()]
    return {tuple(row[i] for i in free) for row in rows}


def evaluate_query(query, db, stats=None, max_iterations=None):
    """Evaluate ``query`` over ``db`` with the semi-naive engine."""
    if not isinstance(query, Query):
        raise TypeError("expected a Query")
    from .seminaive import SemiNaiveEngine

    stats = stats if stats is not None else EvalStats()
    engine = SemiNaiveEngine(
        query.program, db, stats=stats, max_iterations=max_iterations
    )
    engine.run()
    goal = query.goal
    relation = engine.relation(goal.key)
    tuples = set(goal_filter(goal, relation))
    answers = project_free(goal, tuples)
    return QueryResult(query, tuples, answers, stats)
