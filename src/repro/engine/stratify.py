"""Stratification checking for negation.

The engine evaluates recursive cliques bottom-up in topological order,
so negation is sound as long as no negated atom refers to a predicate in
the *same* clique as the rule head.  :func:`check_stratified` verifies
exactly that and raises :class:`NotStratifiedError` otherwise.

The paper's Algorithm 2 produces *weakly stratified* programs whose
counting rules negate predicates of their own clique; those programs are
not run through the generic engine — the dedicated evaluators in
:mod:`repro.exec` implement the Bushy-Depth-First computation the paper
prescribes for them (see DESIGN.md).
"""

from ..errors import NotStratifiedError


def check_stratified(analysis):
    """Validate that ``analysis``'s program is stratified.

    ``analysis`` is a :class:`~repro.datalog.analysis.ProgramAnalysis`.
    """
    for clique in analysis.components:
        for rule in clique.rules:
            for atom in rule.negated_atoms():
                if atom.key in clique.predicates:
                    raise NotStratifiedError(
                        "rule for %s negates %s inside the same recursive "
                        "clique; the program is not stratified"
                        % (rule.head.pred, atom.pred)
                    )


def is_stratified(analysis):
    try:
        check_stratified(analysis)
    except NotStratifiedError:
        return False
    return True
