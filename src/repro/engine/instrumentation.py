"""Deterministic work counters for the evaluation engine.

Benchmarks in this reproduction compare *work*, not just wall-clock
time, because the paper's claims are about the number of inferences the
competing methods perform.  :class:`EvalStats` counts:

* ``rule_firings`` — rule body evaluations started;
* ``tuples_scanned`` — candidate tuples inspected during joins (the
  dominant cost of bottom-up evaluation);
* ``facts_derived`` — distinct new facts added to relations;
* ``facts_duplicate`` — derivations that produced an already-known fact
  (wasted work the counting method is designed to avoid);
* ``iterations`` — semi-naive rounds executed;
* ``index_builds`` — hash indexes materialized from scratch by the
  batched join path (a rebuilt index means a prior one was unusable);
* ``index_probes`` — hash-index bucket fetches performed by
  ``Relation.lookup``;
* ``batch_rows`` — candidate rows delivered in batches by the compiled
  set-at-a-time executor (a subset of ``tuples_scanned`` attribution:
  every batched row is also counted as scanned).

All counters are integers updated in-place, so a single ``EvalStats``
can be threaded through multi-phase executions (counting-set phase plus
answer phase) and report the total.

Per-rule attribution lives in :attr:`EvalStats.rule_profile`, a dict of
rule label → ``{"seconds", "calls", "derived"}``.  Wall-clock seconds
are inherently nondeterministic, so the profile is *not* part of
:meth:`as_dict` — determinism tests compare ``as_dict`` across runs and
must keep passing.  Use :meth:`profile_table` for reporting.
"""


class EvalStats:
    """Mutable bundle of evaluation counters."""

    __slots__ = (
        "rule_firings",
        "tuples_scanned",
        "facts_derived",
        "facts_duplicate",
        "iterations",
        "index_builds",
        "index_probes",
        "batch_rows",
        "cache_hits",
        "cache_misses",
        "prepare_reuse",
        "rule_profile",
    )

    def __init__(self):
        self.rule_firings = 0
        self.tuples_scanned = 0
        self.facts_derived = 0
        self.facts_duplicate = 0
        self.iterations = 0
        self.index_builds = 0
        self.index_probes = 0
        self.batch_rows = 0
        #: Answer-cache hits / misses recorded by the prepared-query
        #: layer (:mod:`repro.exec.prepared`).  A hit means the run
        #: performed no join work at all.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Runs that reused a :class:`~repro.exec.prepared.PreparedQuery`'s
        #: rewriting and compiled rules instead of rebuilding them.
        self.prepare_reuse = 0
        self.rule_profile = {}

    @property
    def total_work(self):
        """A single scalar summarizing join effort.

        Tuples scanned dominates; derivations (including duplicates) are
        added so that methods producing many duplicate inferences are
        charged for them.  Index maintenance and batching counters are
        deliberately excluded — they describe *how* the same work was
        done, not how much of the paper's work was done.
        """
        return self.tuples_scanned + self.facts_derived + self.facts_duplicate

    def note_rule(self, label, seconds, derived):
        """Attribute one rule pass to the per-rule profile."""
        entry = self.rule_profile.get(label)
        if entry is None:
            entry = {"seconds": 0.0, "calls": 0, "derived": 0}
            self.rule_profile[label] = entry
        entry["seconds"] += seconds
        entry["calls"] += 1
        entry["derived"] += derived

    def profile_table(self):
        """Per-rule breakdown sorted by time spent, most expensive first."""
        return sorted(
            (
                (label, entry["seconds"], entry["calls"], entry["derived"])
                for label, entry in self.rule_profile.items()
            ),
            key=lambda item: item[1],
            reverse=True,
        )

    def merge(self, other):
        """Add another stats object's counters into this one."""
        self.rule_firings += other.rule_firings
        self.tuples_scanned += other.tuples_scanned
        self.facts_derived += other.facts_derived
        self.facts_duplicate += other.facts_duplicate
        self.iterations += other.iterations
        self.index_builds += other.index_builds
        self.index_probes += other.index_probes
        self.batch_rows += other.batch_rows
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.prepare_reuse += other.prepare_reuse
        for label, entry in other.rule_profile.items():
            self.note_rule(
                label, entry["seconds"], entry["derived"]
            )
            # note_rule counted one call; align with the source.
            self.rule_profile[label]["calls"] += entry["calls"] - 1
        return self

    def __getstate__(self):
        # ``__slots__`` means there is no instance dict for the default
        # pickle protocol to snapshot; spell the state out so partial
        # stats survive the multiprocessing channel (workers ship their
        # counters inside typed errors and round results).
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        self.__init__()
        for name, value in state.items():
            setattr(self, name, value)

    def as_dict(self):
        """Deterministic counters only.

        ``index_builds`` is excluded on purpose: indexes persist on
        relations, so a repeat run over the same database builds fewer
        of them — the counter describes cache state, not the program.
        Wall-clock profile entries are excluded for the same reason,
        and so are the prepared-query counters (``cache_hits``,
        ``cache_misses``, ``prepare_reuse``): whether a run hit a cache
        describes the serving layer's state, not the program's work.
        """
        return {
            "rule_firings": self.rule_firings,
            "tuples_scanned": self.tuples_scanned,
            "facts_derived": self.facts_derived,
            "facts_duplicate": self.facts_duplicate,
            "iterations": self.iterations,
            "index_probes": self.index_probes,
            "batch_rows": self.batch_rows,
            "total_work": self.total_work,
        }

    def __repr__(self):
        return (
            "EvalStats(firings=%d, scanned=%d, derived=%d, dup=%d, "
            "iters=%d, probes=%d)"
            % (
                self.rule_firings,
                self.tuples_scanned,
                self.facts_derived,
                self.facts_duplicate,
                self.iterations,
                self.index_probes,
            )
        )
