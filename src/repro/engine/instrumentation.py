"""Deterministic work counters for the evaluation engine.

Benchmarks in this reproduction compare *work*, not just wall-clock
time, because the paper's claims are about the number of inferences the
competing methods perform.  :class:`EvalStats` counts:

* ``rule_firings`` — rule body evaluations started;
* ``tuples_scanned`` — candidate tuples inspected during joins (the
  dominant cost of bottom-up evaluation);
* ``facts_derived`` — distinct new facts added to relations;
* ``facts_duplicate`` — derivations that produced an already-known fact
  (wasted work the counting method is designed to avoid);
* ``iterations`` — semi-naive rounds executed.

All counters are integers updated in-place, so a single ``EvalStats``
can be threaded through multi-phase executions (counting-set phase plus
answer phase) and report the total.
"""


class EvalStats:
    """Mutable bundle of evaluation counters."""

    __slots__ = (
        "rule_firings",
        "tuples_scanned",
        "facts_derived",
        "facts_duplicate",
        "iterations",
    )

    def __init__(self):
        self.rule_firings = 0
        self.tuples_scanned = 0
        self.facts_derived = 0
        self.facts_duplicate = 0
        self.iterations = 0

    @property
    def total_work(self):
        """A single scalar summarizing join effort.

        Tuples scanned dominates; derivations (including duplicates) are
        added so that methods producing many duplicate inferences are
        charged for them.
        """
        return self.tuples_scanned + self.facts_derived + self.facts_duplicate

    def merge(self, other):
        """Add another stats object's counters into this one."""
        self.rule_firings += other.rule_firings
        self.tuples_scanned += other.tuples_scanned
        self.facts_derived += other.facts_derived
        self.facts_duplicate += other.facts_duplicate
        self.iterations += other.iterations
        return self

    def as_dict(self):
        return {
            "rule_firings": self.rule_firings,
            "tuples_scanned": self.tuples_scanned,
            "facts_derived": self.facts_derived,
            "facts_duplicate": self.facts_duplicate,
            "iterations": self.iterations,
            "total_work": self.total_work,
        }

    def __repr__(self):
        return (
            "EvalStats(firings=%d, scanned=%d, derived=%d, dup=%d, iters=%d)"
            % (
                self.rule_firings,
                self.tuples_scanned,
                self.facts_derived,
                self.facts_duplicate,
                self.iterations,
            )
        )
