"""Rule body evaluation: index nested-loop joins over relations.

The central entry point is :func:`evaluate_rule`, which takes a rule and
a *resolver* — a callable mapping ``(literal_index, atom)`` to the
relation that the occurrence should scan.  Semi-naive evaluation uses
the resolver to substitute the delta relation for one designated
occurrence of a recursive predicate while all other occurrences read the
full relation.

Matching an atom against a relation works in two steps: positions whose
argument resolves to a ground constant become index lookups; positions
holding variables or partial structures (e.g. the list pattern
``[(r1, C) | L]``) are checked by unification against the stored value.
"""

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.terms import Constant
from ..datalog.unify import match_value, resolve
from ..errors import EvaluationError
from .builtins import eval_comparison
from .relation import WILDCARD


def match_atom(atom, relation, subst, stats=None):
    """Yield substitutions extending ``subst`` that match ``atom``."""
    resolved = [resolve(arg, subst) for arg in atom.args]
    pattern = tuple(
        arg.value if isinstance(arg, Constant) else WILDCARD
        for arg in resolved
    )
    open_positions = [
        i for i, arg in enumerate(resolved)
        if not isinstance(arg, Constant)
    ]
    for row in relation.match(pattern, stats):
        if stats is not None:
            stats.tuples_scanned += 1
        extended = subst
        for i in open_positions:
            extended = match_value(resolved[i], row[i], extended)
            if extended is None:
                break
        if extended is not None:
            yield extended


def _atom_holds(atom, relation, subst):
    """True if the fully ground ``atom`` is present in ``relation``."""
    resolved = [resolve(arg, subst) for arg in atom.args]
    values = []
    for arg in resolved:
        if not isinstance(arg, Constant):
            raise EvaluationError(
                "negated atom %s not ground at evaluation time" % atom.pred
            )
        values.append(arg.value)
    return tuple(values) in relation


def evaluate_body(body, resolver, subst, stats=None):
    """Yield substitutions satisfying all literals of ``body`` in order."""
    stack = [(0, subst)]
    # Depth-first enumeration without recursion: each frame is the index
    # of the next literal and the substitution accumulated so far.
    while stack:
        index, current = stack.pop()
        if index == len(body):
            yield current
            continue
        lit = body[index]
        if isinstance(lit, Atom):
            relation = resolver(index, lit)
            for extended in match_atom(lit, relation, current, stats):
                stack.append((index + 1, extended))
        elif isinstance(lit, Negation):
            relation = resolver(index, lit.atom)
            if not _atom_holds(lit.atom, relation, current):
                stack.append((index + 1, current))
        elif isinstance(lit, Comparison):
            for extended in eval_comparison(lit, current):
                stack.append((index + 1, extended))
        else:
            raise EvaluationError("unknown literal %r" % (lit,))


def ground_head(head, subst):
    """Resolve the head atom to a ground value tuple.

    Head arguments may be arithmetic expressions (``I + 1``); they fold
    to constants here.  Raises if any argument stays non-ground — safe
    rules never do.
    """
    values = []
    for arg in head.args:
        resolved = resolve(arg, subst)
        if not isinstance(resolved, Constant):
            raise EvaluationError(
                "head argument of %s not ground: %r" % (head.pred, resolved)
            )
        values.append(resolved.value)
    return tuple(values)


def ground_atom(atom, subst):
    """Resolve a (positive) body atom to its ground value tuple."""
    values = []
    for arg in atom.args:
        resolved = resolve(arg, subst)
        if not isinstance(resolved, Constant):
            raise EvaluationError(
                "body atom %s not ground under result substitution"
                % atom.pred
            )
        values.append(resolved.value)
    return tuple(values)


def evaluate_rule(rule, resolver, stats=None, initial_subst=None):
    """Yield ground head tuples derivable by one pass over ``rule``."""
    if stats is not None:
        stats.rule_firings += 1
    subst = {} if initial_subst is None else initial_subst
    for result in evaluate_body(rule.body, resolver, subst, stats):
        yield ground_head(rule.head, result)
