"""Derivation tracing: why is this fact in the result?

Pass a :class:`DerivationTrace` to the engine and every *first*
derivation of a fact is recorded as ``(rule label, premises)``, where
premises are the ground body atoms of the firing.  :meth:`explain`
then unwinds the records into a derivation tree — handy when a
rewritten program produces a surprising answer and you want to see
which counting tuples and base facts support it.

Only the first derivation is kept (facts are set-valued; later
re-derivations add nothing), so the tree is finite even for recursive
programs, and memory stays linear in the number of derived facts.
"""


class Derivation:
    """One recorded rule firing."""

    __slots__ = ("rule_label", "premises")

    def __init__(self, rule_label, premises):
        self.rule_label = rule_label
        #: tuple of ((name, arity), values) ground body atoms.
        self.premises = tuple(premises)

    def __repr__(self):
        return "Derivation(%s, %d premises)" % (
            self.rule_label, len(self.premises)
        )


class DerivationNode:
    """A node of an explanation tree."""

    __slots__ = ("key", "values", "rule_label", "children")

    def __init__(self, key, values, rule_label, children):
        self.key = key
        self.values = values
        #: None for base facts.
        self.rule_label = rule_label
        self.children = tuple(children)

    def is_base(self):
        return self.rule_label is None

    def render(self, indent=0):
        pad = "  " * indent
        label = "" if self.is_base() else "   [%s]" % self.rule_label
        head = "%s%s(%s)%s" % (
            pad, self.key[0],
            ", ".join(_fmt(v) for v in self.values), label,
        )
        lines = [head]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def size(self):
        return 1 + sum(child.size() for child in self.children)


def _fmt(value):
    from ..datalog.pretty import format_value

    return format_value(value)


class DerivationTrace:
    """Fact -> first derivation mapping, filled by the engine."""

    def __init__(self):
        self._records = {}

    def record(self, key, values, rule_label, premises):
        fact = (key, tuple(values))
        if fact not in self._records:
            self._records[fact] = Derivation(rule_label, premises)

    def derivation_of(self, key, values):
        return self._records.get((key, tuple(values)))

    def __len__(self):
        return len(self._records)

    def explain(self, key, values, max_depth=100):
        """Build the derivation tree for one fact.

        Facts without a record are base facts (leaves).  ``max_depth``
        caps pathological nesting; recorded first-derivations cannot be
        cyclic, so the cap is a safety net only.
        """
        values = tuple(values)

        def build(fact_key, fact_values, depth):
            derivation = self._records.get((fact_key, fact_values))
            if derivation is None or depth >= max_depth:
                return DerivationNode(fact_key, fact_values, None, ())
            children = [
                build(p_key, p_values, depth + 1)
                for p_key, p_values in derivation.premises
            ]
            return DerivationNode(
                fact_key, fact_values, derivation.rule_label, children
            )

        return build(key, values, 0)
