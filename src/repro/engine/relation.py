"""In-memory relations with lazily built, persistently maintained
hash indexes.

A :class:`Relation` stores a set of ground tuples and answers two query
shapes:

* ``match(pattern)`` — the tuple-at-a-time interface: a pattern fixes
  some positions to values and leaves the rest as :data:`WILDCARD`;
* ``lookup(positions, key)`` — the batched interface used by the
  compiled join engine (:mod:`repro.engine.compile`): the bound
  positions are given once per probe and the whole candidate bucket is
  returned as a sequence.

The first query for a given set of bound positions builds a hash index
on those positions; subsequent queries and insertions keep every
existing index current, so indexes persist across semi-naive rounds and
across :meth:`copy` (delta relations carry their indexes with them
instead of rebuilding).  Single-position indexes are keyed by the bare
value — the common case in the paper's programs — so probes hash one
(interned) constant instead of allocating a 1-tuple.

Indexes make the nested-loop joins of the engine behave like index
nested-loop joins, which is the performance model assumed by the paper
(the pointer-based counting implementation is "a direct access to the
memory").

Storage backends
----------------

A relation constructed with an intern ``pool`` while the columnar
backend is enabled (see :mod:`repro.engine.columnar`) additionally
mirrors every row into parallel ``array('q')`` columns of intern-pool
ids, in insertion-log order.  The id columns never replace the value
rows — joins, rendering, and arithmetic read the canonical values
exactly as before, so answers are byte-identical across backends — but
they give the relation an O(rows) machine-word serialization, columnar
prefix pinning for epoch snapshots, and a vectorized id-scan primitive
(:meth:`Relation.scan_ids`).
"""

from .columnar import ColumnStore, columnar_enabled


class _Wildcard:
    __slots__ = ()

    def __repr__(self):
        return "WILDCARD"


#: Placeholder for unbound positions in match patterns.  ``None`` is not
#: usable because ``nil`` is a legal constant value.
WILDCARD = _Wildcard()


class Relation:
    """A named set of fixed-arity ground tuples.

    ``use_indexes=False`` disables hash indexes — every match becomes a
    full scan with per-row filtering.  Kept as an ablation switch
    (benchmark A3); production paths never set it.
    """

    __slots__ = ("name", "arity", "tuples", "_indexes", "use_indexes",
                 "epoch", "_log", "_pool", "_ids")

    def __init__(self, name, arity, use_indexes=True, pool=None):
        self.name = name
        self.arity = arity
        self.tuples = set()
        self._indexes = {}
        self.use_indexes = use_indexes
        #: Intern pool used for the columnar id mirror (None for plain
        #: row storage — e.g. engine-internal derived relations).
        self._pool = pool
        #: Parallel id columns, maintained by :meth:`add` when the
        #: columnar backend is active.  ``_ids`` row ordinals coincide
        #: with ``_log`` positions, so both views describe the same
        #: insertion order.
        self._ids = (
            ColumnStore(arity)
            if pool is not None and columnar_enabled()
            else None
        )
        #: Monotone mutation counter: bumped once per *new* row, so two
        #: relations with equal epochs seen by the same observer hold
        #: the same tuples.  Cross-query caches key their entries on the
        #: epochs of the relations a query reads (see
        #: :mod:`repro.exec.cache`), which makes invalidation free: a
        #: mutated relation simply never matches a stale key again.
        self.epoch = 0
        #: New rows in insertion order — ``_log[:E]`` is exactly the
        #: contents the relation had when ``epoch`` was ``E``, which is
        #: what makes :meth:`pinned` snapshots O(E) row *references*
        #: instead of a deep rebuild.  Append-only, one entry per epoch
        #: bump.
        self._log = []

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __contains__(self, row):
        return row in self.tuples

    def add(self, row):
        """Insert ``row``; returns True if it was new."""
        if len(row) != self.arity:
            raise ValueError(
                "arity mismatch for %s: expected %d, got %r"
                % (self.name, self.arity, row)
            )
        # Single-hash insert: membership test plus ``set.add`` would
        # hash the row twice, which is measurable when rows carry long
        # tuple values (the extended counting rewriting's path lists —
        # tuple hashes are not cached).
        tuples = self.tuples
        before = len(tuples)
        tuples.add(row)
        if len(tuples) == before:
            return False
        # Log before the epoch bump: a concurrent reader that sees the
        # new epoch value is then guaranteed to find the row in the log
        # prefix it slices (list appends are atomic under the GIL).
        self._log.append(row)
        if self._ids is not None:
            self._ids.append(self._pool.ident_row(row))
        self.epoch += 1
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key = row[positions[0]]
            else:
                key = tuple(row[i] for i in positions)
            index.setdefault(key, []).append(row)
        return True

    def add_all(self, rows):
        """Insert many rows; returns the list of rows that were new."""
        added = []
        for row in rows:
            if self.add(row):
                added.append(row)
        return added

    def _index_for(self, positions, stats=None):
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                position = positions[0]
                for row in self.tuples:
                    index.setdefault(row[position], []).append(row)
            else:
                for row in self.tuples:
                    key = tuple(row[i] for i in positions)
                    index.setdefault(key, []).append(row)
            self._indexes[positions] = index
            if stats is not None:
                stats.index_builds += 1
        return index

    def ensure_index(self, positions, stats=None):
        """Build (or return) the hash index on ``positions`` now.

        The index is maintained incrementally by subsequent :meth:`add`
        calls, so declaring probe positions up front turns later bulk
        loads into incremental index maintenance instead of a rebuild.
        A build triggered here counts toward ``stats.index_builds``
        exactly like one triggered by a :meth:`lookup` probe.
        """
        return self._index_for(tuple(positions), stats)

    def probe_index(self, positions, stats=None):
        """A hoistable index view for repeated probes, or None.

        The generated executors resolve each scan's relation once per
        rule pass; when this returns a dict, they inline every
        subsequent probe as ``index.get(key, ())`` plus the same
        ``index_probes`` bump :meth:`lookup` performs.  Returns None
        whenever the inline probe would not be equivalent — scans
        without indexes, full scans, and full-arity probes (which are
        set membership tests, see :meth:`probe_set`).  The dict is
        maintained in place by :meth:`add`, so a hoisted reference
        stays current for the whole pass.
        """
        if (not self.use_indexes or not positions
                or len(positions) == self.arity):
            return None
        return self._index_for(tuple(positions), stats)

    def probe_set(self):
        """A hoistable membership view for full-arity probes, or None.

        The full-arity counterpart of :meth:`probe_index`: generated
        executors test ``row in view`` directly, mirroring the
        full-arity fast path of :meth:`lookup` including its
        ``index_probes`` accounting.
        """
        return self.tuples if self.use_indexes else None

    def lookup(self, positions, key, stats=None):
        """Return the candidate rows with ``positions`` equal to ``key``.

        The batched-probe interface of the compiled engine: the result
        is a *sequence* (the index bucket itself, or a materialized
        list) whose length is the batch size.  ``key`` is the bare value
        when one position is bound, a tuple in ascending position order
        otherwise, and ignored when ``positions`` is empty (full scan).
        """
        if not positions:
            return list(self.tuples)
        if not self.use_indexes:
            if len(positions) == 1:
                position = positions[0]
                return [row for row in self.tuples if row[position] == key]
            return [
                row
                for row in self.tuples
                if all(row[i] == v for i, v in zip(positions, key))
            ]
        if len(positions) == self.arity:
            # The full-arity fast path is a hash probe of the tuple set
            # — count it like any other index probe, or the A3 ablation
            # undercounts exactly the probes it is supposed to measure.
            if stats is not None:
                stats.index_probes += 1
            row = key if self.arity != 1 else (key,)
            return (row,) if row in self.tuples else ()
        index = self._indexes.get(positions)
        if index is None:
            index = self._index_for(positions, stats)
        if stats is not None:
            stats.index_probes += 1
        return index.get(key, ())

    def match(self, pattern, stats=None):
        """Yield rows matching ``pattern``.

        ``pattern`` is a tuple of length ``arity`` whose entries are
        either concrete values or :data:`WILDCARD`.  ``stats`` threads
        the same ``index_builds``/``index_probes`` accounting as
        :meth:`lookup` — the tuple-at-a-time path does identical index
        work, so it must be charged identically.
        """
        if len(pattern) != self.arity:
            raise ValueError(
                "pattern arity mismatch for %s: %r" % (self.name, pattern)
            )
        positions = tuple(
            i for i, v in enumerate(pattern) if v is not WILDCARD
        )
        if not positions:
            return iter(self.tuples)
        if not self.use_indexes:
            return (
                row
                for row in self.tuples
                if all(row[i] == pattern[i] for i in positions)
            )
        if len(positions) == self.arity:
            if stats is not None:
                stats.index_probes += 1
            row = tuple(pattern)
            return iter((row,)) if row in self.tuples else iter(())
        index = self._index_for(positions, stats)
        if stats is not None:
            stats.index_probes += 1
        if len(positions) == 1:
            key = pattern[positions[0]]
        else:
            key = tuple(pattern[i] for i in positions)
        return iter(index.get(key, ()))

    def copy(self):
        """Clone the relation, *including* its hash indexes.

        Snapshot-heavy strategies copy relations often; rebuilding every
        index from scratch on the clone would repeat O(n) work the
        source already paid.  Buckets are shallow-copied per key so
        later ``add``s on either side stay independent.
        """
        clone = Relation(self.name, self.arity,
                         use_indexes=self.use_indexes, pool=self._pool)
        clone.tuples = set(self.tuples)
        clone.epoch = self.epoch
        clone._log = list(self._log)
        # Columns copy as machine words regardless of the flag's
        # current value — the clone keeps the backend of its source.
        clone._ids = None if self._ids is None else self._ids.copy()
        clone._indexes = {
            positions: {key: list(rows) for key, rows in index.items()}
            for positions, index in self._indexes.items()
        }
        return clone

    def pinned(self, epoch):
        """A frozen clone holding exactly the first ``epoch`` rows.

        The insertion log records one row per epoch bump, so the prefix
        of length ``epoch`` is precisely the relation's contents when
        its epoch had that value — the building block of
        :meth:`~repro.engine.database.Database.snapshot` read views.
        Safe to call while another thread appends: the log is
        append-only and the slice never reaches past ``epoch``.  The
        clone starts with no indexes (the source's indexes may already
        reflect newer rows); readers build their own lazily as usual.
        """
        if epoch < 0 or epoch > len(self._log):
            raise ValueError(
                "cannot pin %s at epoch %d (log holds %d rows)"
                % (self.name, epoch, len(self._log))
            )
        clone = Relation(self.name, self.arity,
                         use_indexes=self.use_indexes, pool=self._pool)
        rows = self._log[:epoch]
        clone.tuples = set(rows)
        clone._log = rows
        # Columnar prefix: the pinned view slices the id columns as raw
        # machine words — no per-row re-encode.  Safe against
        # concurrent appends for the same reason the log slice is: ids
        # are appended before the epoch bump, so the first ``epoch``
        # ordinals are complete by the time a reader holds ``epoch``.
        clone._ids = (
            None if self._ids is None else self._ids.prefix(epoch)
        )
        clone.epoch = epoch
        return clone

    # -- columnar view ------------------------------------------------

    @property
    def columnar(self):
        """True when this relation maintains the id-column mirror."""
        return self._ids is not None

    def id_column(self, position):
        """The ``array('q')`` of intern ids for one argument position.

        Raises :class:`TypeError` on a row-storage relation — callers
        that can exploit columns must check :attr:`columnar` first.
        """
        if self._ids is None:
            raise TypeError(
                "%s/%d uses row storage; no id columns"
                % (self.name, self.arity)
            )
        return self._ids.column(position)

    def id_row(self, ordinal):
        """The id-encoded row at insertion ordinal ``ordinal``."""
        if self._ids is None:
            raise TypeError(
                "%s/%d uses row storage; no id columns"
                % (self.name, self.arity)
            )
        return self._ids.row(ordinal)

    def scan_ids(self, positions, values):
        """Insertion ordinals of rows matching ``values`` at ``positions``.

        The vectorized id-scan: ``values`` are value-level constants,
        encoded through the pool once, then compared column-wise as
        machine words.  A value the pool has never seen cannot match
        any stored row, so the scan returns ``[]`` without touching
        the columns.
        """
        if self._ids is None:
            raise TypeError(
                "%s/%d uses row storage; no id columns"
                % (self.name, self.arity)
            )
        ids = []
        for value in values:
            ident = self._pool.peek(value)
            if ident is None:
                return []
            ids.append(ident)
        return self._ids.matching(tuple(positions), tuple(ids))

    def decode_ordinal(self, ordinal):
        """Decode the row at ``ordinal`` through the intern pool.

        The decode contract of the storage layer: for every ordinal,
        ``decode_ordinal(i) == _log[i]`` — id encoding is lossless, so
        rendered output is byte-identical whichever view produced it.
        """
        return self._pool.decode_row(self.id_row(ordinal))

    def storage_info(self):
        """Backend descriptor for observability and the bench probe."""
        info = {
            "backend": "columnar" if self._ids is not None else "rows",
            "rows": len(self.tuples),
            "indexes": len(self._indexes),
        }
        if self._ids is not None:
            info["column_bytes"] = self._ids.nbytes()
        return info

    def column_bytes(self):
        """Serialized id columns (see :meth:`ColumnStore.to_bytes`)."""
        if self._ids is None:
            raise TypeError(
                "%s/%d uses row storage; nothing to serialize columnar"
                % (self.name, self.arity)
            )
        return self._ids.to_bytes()

    def __repr__(self):
        return "Relation(%s/%d, %d tuples)" % (
            self.name,
            self.arity,
            len(self.tuples),
        )


class EmptyRelation:
    """A read-only stand-in for relations with no tuples."""

    __slots__ = ("name", "arity")

    #: Empty stand-ins never mutate, so their epoch is a constant.
    epoch = 0

    def __init__(self, name, arity):
        self.name = name
        self.arity = arity

    def __len__(self):
        return 0

    def __iter__(self):
        return iter(())

    def __contains__(self, row):
        return False

    def match(self, pattern, stats=None):
        if len(pattern) != self.arity:
            raise ValueError(
                "pattern arity mismatch for %s: %r" % (self.name, pattern)
            )
        return iter(())

    def lookup(self, positions, key, stats=None):
        for position in positions:
            if not 0 <= position < self.arity:
                raise ValueError(
                    "lookup position %d out of range for %s/%d"
                    % (position, self.name, self.arity)
                )
        return ()

    def __repr__(self):
        return "EmptyRelation(%s/%d)" % (self.name, self.arity)
