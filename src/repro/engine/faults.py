"""Deterministic, seeded fault injection for robustness testing.

Production resilience claims ("budgets fire within one round",
"fallbacks leave the database unmutated", "errors are always typed
``ReproError``s") are only as good as the failures they were tested
against.  This module injects three failure modes into the evaluation
engines, deterministically and reproducibly:

* **mid-fixpoint raise** — :class:`InjectedFault` thrown at the N-th
  fixpoint checkpoint (semi-naive round boundaries and dedicated-
  evaluator frontier pops publish checkpoints through :func:`fire`);
* **probe delay** — every K-th :meth:`Relation.lookup` call sleeps a
  configured number of seconds, simulating slow storage so wall-clock
  deadlines can be exercised without huge databases;
* **copy corruption** — every K-th :meth:`Relation.copy` returns a
  clone with one seeded row dropped and one bogus row added, modelling
  a partially-failed snapshot.  The *source* relation is never touched.
* **critical-section stalls** — every K-th entry into an instrumented
  critical section (the cross-query caches' lock bodies publish
  checkpoints through :func:`stall`) sleeps a configured number of
  seconds.  Races that need a long hold-time window — a reader
  observing a half-updated LRU, a lost counter increment — become
  deterministic instead of depending on scheduler luck.
* **WAL crash points** — the write-ahead log
  (:mod:`repro.durability.wal`) publishes its append and fsync
  boundaries through :func:`wal_event`; a plan can tear the N-th record
  mid-write, corrupt its checksum, or kill the process before the
  fsync lands (see :meth:`FaultInjector.torn_wal_write` /
  :meth:`~FaultInjector.corrupt_wal_record` /
  :meth:`~FaultInjector.crash_before_fsync`).  The "kill" is a
  :class:`SimulatedCrash` raised *after* the configured damage is on
  disk, so recovery tests exercise exactly the file a real ``kill -9``
  would leave behind — deterministically, within one process.

The injector is a context manager; ``install``/``uninstall`` patch the
hot-path methods only while active, so the production paths carry a
single module-global ``is None`` check (the :func:`fire` checkpoints)
and nothing else.  All randomness flows from one :class:`random.Random`
seeded at construction — the same seed injects the same faults.

Only one injector can be installed at a time (they patch shared
classes); installing a second raises ``RuntimeError``.
"""

import os
import random
import signal
import threading
import time

from ..errors import EvaluationError, ReproError
from .relation import Relation

#: The currently installed injector, or ``None`` (the common case).
_ACTIVE = None


class InjectedFault(EvaluationError):
    """The typed error raised by an injected mid-fixpoint fault.

    An :class:`EvaluationError` (hence a ``ReproError``): injected
    failures must travel the same typed channel real failures do, so
    the resilient runner and the CLI handle them identically.
    """


class SimulatedCrash(ReproError):
    """An injected process "death" at a WAL crash point.

    Deliberately *not* an :class:`EvaluationError`: a crash is not a
    query failure the resilient runner should degrade past — tests
    catch it at the top level, then run recovery against whatever the
    plan left on disk.  The WAL marks itself failed when it raises
    this, so later appends surface :class:`~repro.errors.WalError`
    instead of silently writing past the simulated death.
    """


def fire(point, stats=None):
    """Checkpoint hook called by the engines at fixpoint boundaries.

    ``point`` names the call site (``"round"`` for semi-naive round
    boundaries, ``"unwind"`` for dedicated-evaluator frontier pops).
    A no-op unless an injector is installed.
    """
    if _ACTIVE is not None:
        _ACTIVE._observe(point, stats)


def stall(point):
    """Critical-section hook: induced delay inside instrumented locks.

    ``point`` names the section (``"cache"`` for the cross-query cache
    bodies).  Unlike :func:`fire` this never raises — a stall models a
    slow thread holding a lock, not a failure — so it is safe to call
    while holding that lock.  A no-op unless an injector with a
    :meth:`~FaultInjector.delay_sections` plan is installed.
    """
    if _ACTIVE is not None:
        _ACTIVE._stall(point)


def wal_event(point, size=0):
    """WAL checkpoint hook; returns a damage instruction or ``None``.

    ``point`` names the boundary (``"append"`` just before a record's
    bytes are written, ``"fsync"`` just before the log fsyncs);
    ``size`` is the encoded record length for ``"append"`` events.
    The WAL applies the returned instruction itself — ``("torn",
    keep_bytes)`` / ``("corrupt", offset)`` / ``("crash",)`` — and then
    raises :class:`SimulatedCrash`, so the damaged bytes are on disk
    exactly as a real crash would leave them.  A no-op (``None``)
    unless an injector with a WAL plan is installed.
    """
    if _ACTIVE is not None:
        return _ACTIVE._wal_observe(point, size)
    return None


def active_injector():
    """The installed :class:`FaultInjector`, or ``None``."""
    return _ACTIVE


#: Plan fields that target a specific parallel worker's process.
_WORKER_PLAN_FIELDS = (
    "_kill_worker_target", "_kill_worker_after",
    "_hang_worker_target", "_hang_worker_after",
    "_slow_worker_target", "_slow_worker_every",
)


def strip_worker_plans(spec):
    """A :meth:`FaultInjector.spec` copy with worker-targeted failure
    plans disarmed.

    Respawned replacement workers are built from this: the injected
    kill/hang/slow plans model a one-time environmental failure of the
    original process, and arming them again in the replacement would
    make every respawn re-fail by construction.  All other plans (probe
    delays, mid-fixpoint raises, WAL damage) ship unchanged.
    """
    if spec is None:
        return None
    plans = dict(spec["plans"])
    for name in _WORKER_PLAN_FIELDS:
        if name in plans:
            plans[name] = None
    return {"seed": spec["seed"], "plans": plans}


class FaultInjector:
    """Configurable fault plan; use as a context manager.

    Example::

        with FaultInjector(seed=7).raise_mid_fixpoint(after=2):
            run_strategy("naive", query, db)   # raises InjectedFault
    """

    def __init__(self, seed=0, sleep=None, clock=None):
        #: Construction seed, kept so per-worker injectors can derive
        #: independent streams from it (:meth:`derive`).
        self.seed = seed
        self.random = random.Random(seed)
        #: Injectable sleeper/clock so tests can fake time.
        self._sleep = sleep if sleep is not None else time.sleep
        self._clock = clock if clock is not None else time.monotonic
        # Plans (None = disabled).
        self._raise_after = None
        self._raise_points = frozenset(("round", "unwind"))
        self._raise_message = "injected mid-fixpoint fault"
        self._delay_every = None
        self._delay_seconds = 0.0
        self._corrupt_every = None
        self._section_every = None
        self._section_seconds = 0.0
        self._section_points = frozenset(("cache",))
        self._section_calls = 0
        self._torn_after = None
        self._torn_keep = None
        self._corrupt_wal_after = None
        self._crash_fsync_after = None
        self._kill_worker_target = None
        self._kill_worker_after = None
        self._hang_worker_target = None
        self._hang_worker_after = None
        self._hang_seconds = 3600.0
        self._slow_worker_target = None
        self._slow_worker_seconds = 0.0
        self._slow_worker_every = None
        #: Which parallel worker this injector runs inside (``None`` on
        #: the coordinator); set by :meth:`derive`.
        self.worker_index = None
        # Engines on several threads may hit checkpoints concurrently
        # (the serving layer runs a worker pool), so counter updates
        # and one-shot plan consumption are serialized.
        self._counter_lock = threading.Lock()
        # Observability counters.
        self.checkpoints_seen = 0
        self.probes_delayed = 0
        self.copies_corrupted = 0
        self.sections_stalled = 0
        self.faults_raised = 0
        self.wal_appends = 0
        self.wal_fsyncs = 0
        self.wal_torn = 0
        self.wal_corrupted = 0
        self.wal_fsyncs_skipped = 0
        self.workers_hung = 0
        self.rounds_slowed = 0
        # Patching state.
        self._installed = False
        self._orig_lookup = None
        self._orig_probe_views = None
        self._orig_copy = None

    # -- plan configuration (chainable) -----------------------------

    def raise_mid_fixpoint(self, after=1, points=None, message=None):
        """Raise :class:`InjectedFault` at the ``after``-th checkpoint."""
        if after < 1:
            raise ValueError("after must be >= 1")
        self._raise_after = after
        if points is not None:
            self._raise_points = frozenset(points)
        if message is not None:
            self._raise_message = message
        return self

    def delay_probes(self, seconds, every=1):
        """Sleep ``seconds`` on every ``every``-th index probe."""
        if every < 1:
            raise ValueError("every must be >= 1")
        self._delay_every = every
        self._delay_seconds = seconds
        return self

    def corrupt_copies(self, every=1):
        """Corrupt every ``every``-th :meth:`Relation.copy` result."""
        if every < 1:
            raise ValueError("every must be >= 1")
        self._corrupt_every = every
        return self

    def delay_sections(self, seconds, every=1, points=None):
        """Sleep ``seconds`` inside every ``every``-th critical section.

        The sleep happens *while the section's lock is held* (the
        :func:`stall` checkpoint sits inside the lock body), widening
        the race window other threads contend against.  ``points``
        restricts the plan to named sections (default: ``cache``).
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        self._section_every = every
        self._section_seconds = seconds
        if points is not None:
            self._section_points = frozenset(points)
        return self

    def torn_wal_write(self, after=1, keep=None):
        """Tear the ``after``-th WAL record mid-write, then "crash".

        Only the first ``keep`` bytes of the encoded record reach the
        file (``keep=0`` models a record lost entirely; ``None`` picks
        a seeded prefix strictly shorter than the record).  Recovery
        must truncate the torn tail and report every earlier record
        intact.
        """
        if after < 1:
            raise ValueError("after must be >= 1")
        if keep is not None and keep < 0:
            raise ValueError("keep must be >= 0")
        self._torn_after = after
        self._torn_keep = keep
        return self

    def corrupt_wal_record(self, after=1):
        """Flip one seeded byte in the ``after``-th WAL record, then
        "crash".  The record's length field stays intact, so recovery
        sees a structurally complete record whose checksum fails —
        the bit-rot case, as opposed to the torn-write case.
        """
        if after < 1:
            raise ValueError("after must be >= 1")
        self._corrupt_wal_after = after
        return self

    def crash_before_fsync(self, after=1):
        """"Crash" at the ``after``-th fsync boundary, skipping the
        fsync.  The record bytes *are* in the file (the lucky case —
        the page cache may or may not have reached the platter; the
        torn-write plan with ``keep=0`` models the unlucky one), so
        recovery replays it, but the durability guarantee was not yet
        given to the caller.
        """
        if after < 1:
            raise ValueError("after must be >= 1")
        self._crash_fsync_after = after
        return self

    def kill_worker(self, worker, after=1):
        """SIGKILL parallel worker ``worker`` at its ``after``-th round.

        The plan is inert on the coordinator and on every other worker;
        only the injector *derived* for ``worker`` (see :meth:`derive`)
        acts on it, killing its own process with an unmaskable signal at
        the round checkpoint — the multiprocess executor must detect the
        death, surface a typed error, and let the resilient chain fall
        back to a serial strategy without hanging.
        """
        if after < 1:
            raise ValueError("after must be >= 1")
        if worker < 0:
            raise ValueError("worker must be >= 0")
        self._kill_worker_target = worker
        self._kill_worker_after = after
        return self

    def crash_at_barrier(self, worker, barrier=1):
        """SIGKILL parallel worker ``worker`` at its ``barrier``-th
        round barrier.

        The self-healing drills' name for :meth:`kill_worker`: the
        worker-side round checkpoint fires after the round's join work
        and *before* the reply ships, so the damage lands exactly at
        the barrier the coordinator is waiting on — the checkpoint it
        must recover from.
        """
        return self.kill_worker(worker, after=barrier)

    def hang_at_barrier(self, worker, barrier=1, seconds=3600.0):
        """Wedge worker ``worker`` at its ``barrier``-th round barrier.

        One-shot: the worker's main loop sleeps ``seconds`` at the
        checkpoint — after the round's join work, before the reply —
        while its heartbeat thread keeps beating.  That is the failure
        ``is_alive`` can never see: the coordinator's barrier deadline
        (:class:`~repro.parallel.supervisor.RecoveryPolicy.
        barrier_timeout`) is the only detector, and the supervision
        layer must repair without waiting out the sleep.
        """
        if barrier < 1:
            raise ValueError("barrier must be >= 1")
        if worker < 0:
            raise ValueError("worker must be >= 0")
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        self._hang_worker_target = worker
        self._hang_worker_after = barrier
        self._hang_seconds = seconds
        return self

    def slow_worker(self, worker, seconds, every=1):
        """Delay worker ``worker`` by ``seconds`` at every ``every``-th
        round barrier.

        Repeating (not one-shot): the straggler it models is a slow
        machine, not a single slow round.  Speculative re-execution
        should win the race on every delayed round once the round-time
        median is established.
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        if worker < 0:
            raise ValueError("worker must be >= 0")
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        self._slow_worker_target = worker
        self._slow_worker_seconds = seconds
        self._slow_worker_every = every
        return self

    # -- per-worker derivation ---------------------------------------

    #: Plan fields shipped to workers; everything else (locks, patching
    #: state, observability counters) is process-local.
    _PLAN_FIELDS = (
        "_raise_after", "_raise_points", "_raise_message",
        "_delay_every", "_delay_seconds", "_corrupt_every",
        "_section_every", "_section_seconds", "_section_points",
        "_torn_after", "_torn_keep", "_corrupt_wal_after",
        "_crash_fsync_after", "_kill_worker_target", "_kill_worker_after",
        "_hang_worker_target", "_hang_worker_after", "_hang_seconds",
        "_slow_worker_target", "_slow_worker_seconds",
        "_slow_worker_every",
    )

    def spec(self):
        """A picklable snapshot of the seed and the configured plans.

        The injector itself holds a lock and patched-method references,
        so it cannot cross a process boundary; the spec can, and
        :meth:`from_spec` rebuilds an equivalent injector on the far
        side.
        """
        plans = {name: getattr(self, name) for name in self._PLAN_FIELDS}
        return {"seed": self.seed, "plans": plans}

    @classmethod
    def from_spec(cls, spec):
        """Rebuild an injector from :meth:`spec` output."""
        injector = cls(seed=spec["seed"])
        for name, value in spec["plans"].items():
            setattr(injector, name, value)
        return injector

    def derive(self, worker):
        """An independent injector for parallel worker ``worker``.

        The derived stream is seeded by scalar-mixing the worker index
        into the base seed (the same idiom the retry layer uses for
        per-attempt jitter streams), so each worker's damage sequence
        depends only on ``(seed, worker)`` — byte-identical for the
        same seed regardless of how many workers the pool holds, and
        independent across workers.
        """
        derived = self.from_spec(self.spec())
        derived.seed = ((self.seed * 0x9E3779B1 + worker + 1)
                        ^ (worker * 0x85EBCA6B)) & 0xFFFFFFFF
        derived.random = random.Random(derived.seed)
        derived.worker_index = worker
        return derived

    # -- installation ------------------------------------------------

    def install(self):
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("another FaultInjector is already installed")
        _ACTIVE = self
        self._installed = True
        if self._delay_every is not None:
            self._patch_lookup()
        if self._corrupt_every is not None:
            self._patch_copy()
        return self

    def uninstall(self):
        global _ACTIVE
        if not self._installed:
            return
        if self._orig_lookup is not None:
            Relation.lookup = self._orig_lookup
            self._orig_lookup = None
        if self._orig_probe_views is not None:
            Relation.probe_index, Relation.probe_set = \
                self._orig_probe_views
            self._orig_probe_views = None
        if self._orig_copy is not None:
            Relation.copy = self._orig_copy
            self._orig_copy = None
        _ACTIVE = None
        self._installed = False

    def __enter__(self):
        return self.install()

    def __exit__(self, exc_type, exc, tb):
        self.uninstall()
        return False

    # -- fault behaviours --------------------------------------------

    def _observe(self, point, stats):
        # Decide under the lock, act outside it: an injected sleep (a
        # hang or a slow round) held under ``_counter_lock`` would also
        # stall every *other* thread's checkpoint accounting, which is
        # not part of the failure being modelled.
        action = None
        with self._counter_lock:
            self.checkpoints_seen += 1
            seen = self.checkpoints_seen
            if point == "round" and self.worker_index is not None:
                me = self.worker_index
                if (
                    self._kill_worker_target == me
                    and self._kill_worker_after is not None
                    and seen >= self._kill_worker_after
                ):
                    action = ("kill",)
                elif (
                    self._hang_worker_target == me
                    and self._hang_worker_after is not None
                    and seen >= self._hang_worker_after
                ):
                    self._hang_worker_after = None  # one-shot
                    self.workers_hung += 1
                    action = ("sleep", self._hang_seconds)
                elif (
                    self._slow_worker_target == me
                    and self._slow_worker_every is not None
                    and seen % self._slow_worker_every == 0
                ):
                    self.rounds_slowed += 1
                    action = ("sleep", self._slow_worker_seconds)
            if action is None and not (
                self._raise_after is None
                or point not in self._raise_points
                or seen < self._raise_after
            ):
                self.faults_raised += 1
                self._raise_after = None  # one-shot
                action = ("raise", seen)
        if action is None:
            return
        if action[0] == "kill":
            # A real kill -9: no cleanup, no exception, no flushing
            # of the pipe — the coordinator must cope with silence.
            os.kill(os.getpid(), signal.SIGKILL)
        elif action[0] == "sleep":
            self._sleep(action[1])
        else:
            raise InjectedFault(
                "%s (at %s checkpoint %d)"
                % (self._raise_message, point, action[1])
            )

    def _wal_observe(self, point, size):
        """Decide what happens at a WAL boundary; see :func:`wal_event`.

        Counters advance for every event; a matching plan is consumed
        (one-shot) and its damage instruction returned for the WAL to
        apply.  Byte offsets and torn prefixes come from the seeded
        RNG, so the same seed damages the same byte every run.
        """
        with self._counter_lock:
            if point == "append":
                self.wal_appends += 1
                if (
                    self._torn_after is not None
                    and self.wal_appends >= self._torn_after
                ):
                    self._torn_after = None  # one-shot
                    self.wal_torn += 1
                    keep = self._torn_keep
                    if keep is None:
                        keep = self.random.randrange(max(size, 1))
                    return ("torn", min(keep, max(size - 1, 0)))
                if (
                    self._corrupt_wal_after is not None
                    and self.wal_appends >= self._corrupt_wal_after
                ):
                    self._corrupt_wal_after = None  # one-shot
                    self.wal_corrupted += 1
                    return ("corrupt", self.random.randrange(max(size, 1)))
            elif point == "fsync":
                self.wal_fsyncs += 1
                if (
                    self._crash_fsync_after is not None
                    and self.wal_fsyncs >= self._crash_fsync_after
                ):
                    self._crash_fsync_after = None  # one-shot
                    self.wal_fsyncs_skipped += 1
                    return ("crash",)
        return None

    def _stall(self, point):
        if self._section_every is None or point not in self._section_points:
            return
        with self._counter_lock:
            self._section_calls += 1
            due = self._section_calls % self._section_every == 0
            if due:
                self.sections_stalled += 1
        if due:
            self._sleep(self._section_seconds)

    def _patch_lookup(self):
        injector = self
        original = Relation.lookup
        self._orig_lookup = original
        calls = [0]

        def lookup(self, positions, key, stats=None):
            with injector._counter_lock:
                calls[0] += 1
                due = calls[0] % injector._delay_every == 0
                if due:
                    injector.probes_delayed += 1
            if due:
                injector._sleep(injector._delay_seconds)
            return original(self, positions, key, stats)

        Relation.lookup = lookup
        # The compiled executor hoists index views (probe_index /
        # probe_set) and probes them inline, bypassing lookup.  While
        # probe delays are active, deny the views so every probe falls
        # back to the patched lookup and the delay plan sees it.
        self._orig_probe_views = (
            Relation.probe_index, Relation.probe_set
        )
        Relation.probe_index = lambda self, positions, stats=None: None
        Relation.probe_set = lambda self: None

    def _patch_copy(self):
        injector = self
        original = Relation.copy
        self._orig_copy = original
        calls = [0]

        def copy(self):
            clone = original(self)
            with injector._counter_lock:
                calls[0] += 1
                due = calls[0] % injector._corrupt_every == 0
            if due and len(clone):
                injector._corrupt(clone)
            return clone

        Relation.copy = copy

    def _corrupt(self, relation):
        """Drop one seeded row and add one bogus row — on the clone only.

        Mutates ``tuples`` directly (bypassing index maintenance) to
        model a snapshot whose indexes disagree with its contents; the
        bogus row is detectable because its values are fresh strings no
        real database interns.
        """
        self.copies_corrupted += 1
        victim = self.random.choice(sorted(relation.tuples, key=repr))
        relation.tuples.discard(victim)
        bogus = tuple(
            "__corrupt_%d_%d" % (self.copies_corrupted, position)
            for position in range(relation.arity)
        )
        relation.tuples.add(bogus)

    def __repr__(self):
        plans = []
        if self._raise_after is not None:
            plans.append("raise@%d" % self._raise_after)
        if self._delay_every is not None:
            plans.append(
                "delay(%gs/%d)" % (self._delay_seconds, self._delay_every)
            )
        if self._corrupt_every is not None:
            plans.append("corrupt/%d" % self._corrupt_every)
        if self._section_every is not None:
            plans.append(
                "stall(%gs/%d)"
                % (self._section_seconds, self._section_every)
            )
        if self._torn_after is not None:
            plans.append("torn-wal@%d" % self._torn_after)
        if self._corrupt_wal_after is not None:
            plans.append("corrupt-wal@%d" % self._corrupt_wal_after)
        if self._crash_fsync_after is not None:
            plans.append("crash-fsync@%d" % self._crash_fsync_after)
        if self._kill_worker_target is not None:
            plans.append(
                "kill-worker(%d)@%d"
                % (self._kill_worker_target, self._kill_worker_after)
            )
        if self._hang_worker_target is not None \
                and self._hang_worker_after is not None:
            plans.append(
                "hang-worker(%d)@%d"
                % (self._hang_worker_target, self._hang_worker_after)
            )
        if self._slow_worker_target is not None \
                and self._slow_worker_every is not None:
            plans.append(
                "slow-worker(%d, %gs/%d)"
                % (self._slow_worker_target, self._slow_worker_seconds,
                   self._slow_worker_every)
            )
        return "FaultInjector(%s%s)" % (
            "installed, " if self._installed else "",
            ", ".join(plans) if plans else "no-op",
        )
