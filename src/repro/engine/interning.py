"""Constant interning: canonical instances plus stable integer ids.

Join keys in this engine are Python values (strings, ints, tuples).
Hashing and equality-testing the same string value millions of times
during a fixpoint costs real time even though ``str`` caches its hash,
because distinct-but-equal instances always fall through the pointer
fast path of ``==``.  :class:`InternPool` canonicalizes every constant
at :class:`~repro.engine.database.Database` load time:

* strings go through :func:`sys.intern`, so repeated occurrences of the
  same value across facts share one object and ``==`` short-circuits on
  identity;
* tuples (the paper's encoded lists) and frozensets are canonicalized
  recursively and deduplicated, so structurally equal compounds compare
  via a single pointer check prefix;
* every canonical value receives a stable, append-only **integer id**
  (:meth:`InternPool.ident`) in first-seen order, available to encoded
  strategies that want machine-word join keys.

Invariant: interning must never change observable output.  Canonical
instances are ``==`` to the originals, so ``render()`` / CLI output,
answer sets, sort orders and arithmetic are byte-identical with and
without the pool — the integer ids are an *extra* view, never a
substitute applied to stored rows.  (Substituting ids into rows would
corrupt value ordering and arithmetic, which is why the pool keeps the
values themselves canonical instead.)

``Database.copy()`` shares its pool with the clone: the table is
append-only, so sharing is safe and keeps ids stable across snapshots.
"""

import sys
import threading


class InternPool:
    """Append-only table of canonical constant values and their ids.

    Safe to share across threads: :meth:`intern` races are benign (two
    threads canonicalizing the same new value both publish equal
    instances; the pointer fast path merely warms up one insert later),
    but :meth:`ident` must hand out *stable* ids, so id assignment is
    serialized on a lock.
    """

    __slots__ = ("_canon", "_ids", "_values", "_id_lock")

    def __init__(self):
        self._canon = {}
        self._ids = {}
        #: Reverse table: ``_values[ident]`` is the canonical value the
        #: id was assigned to.  Append-only, published under the id
        #: lock *before* the id itself, so any id a reader legitimately
        #: holds already has its value in place.
        self._values = []
        self._id_lock = threading.Lock()

    def intern(self, value):
        """Return the canonical instance equal to ``value``.

        Keys include the concrete type so equal-but-distinct values
        (``1`` / ``True`` / ``1.0``) keep their own identity — folding
        them together would change rendered output.
        """
        if isinstance(value, str):
            return sys.intern(value)
        if isinstance(value, tuple):
            value = tuple(self.intern(item) for item in value)
        elif isinstance(value, frozenset):
            value = frozenset(self.intern(item) for item in value)
        key = (value.__class__, value)
        canonical = self._canon.get(key)
        if canonical is None:
            self._canon[key] = value
            return value
        return canonical

    def ident(self, value):
        """A stable integer id for ``value`` (assigned on first use)."""
        value = self.intern(value)
        key = (value.__class__, value)
        ident = self._ids.get(key)
        if ident is None:
            with self._id_lock:
                ident = self._ids.get(key)
                if ident is None:
                    ident = len(self._ids)
                    self._values.append(value)
                    self._ids[key] = ident
        return ident

    def peek(self, value):
        """The id of ``value`` if one was ever assigned, else ``None``.

        Unlike :meth:`ident` this never allocates — probing for a
        constant the database has never stored must not grow the pool.
        """
        value = self.intern(value)
        return self._ids.get((value.__class__, value))

    def value_of(self, ident):
        """The canonical value behind ``ident``; the decode direction.

        Ids are handed out densely from 0, so this is a direct list
        index — the "direct access to the memory" the columnar storage
        layer decodes through at output time.  Raises ``IndexError``
        for ids this pool never assigned.
        """
        if ident < 0:
            raise IndexError("intern ids are non-negative, got %d" % ident)
        return self._values[ident]

    def ident_row(self, row):
        """Id-encode a value row (assigning ids on first use)."""
        return tuple(self.ident(value) for value in row)

    def decode_row(self, ids):
        """Decode an id row back to its canonical value tuple."""
        values = self._values
        return tuple(values[ident] for ident in ids)

    def intern_row(self, row):
        return tuple(self.intern(value) for value in row)

    def __len__(self):
        return len(self._ids)

    def __repr__(self):
        return "InternPool(%d canonical, %d ids)" % (
            len(self._canon), len(self._ids)
        )
