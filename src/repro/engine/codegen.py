"""Specialized executors generated from compiled rule bodies.

The interpreted executor in :mod:`repro.engine.compile` walks a stack
of per-step generators and re-dispatches on an op tuple for every
candidate row.  That interpretation overhead — a ``next()`` call, a
generator frame resume, and a loop over ``(pos, kind, data)`` tuples
per row — is pure bookkeeping: the set of probes, writes, and checks is
fully known at compile time.  This module emits a *specialized Python
function* per body instead: nested ``for`` loops with the key
expressions, slot writes, and equality checks inlined as straight-line
code, compiled once with :func:`compile` and reused for every
evaluation of the rule.

Two forms are generated:

* a **runner** — a drop-in for :meth:`CompiledBody.execute`: yields the
  shared slot array once per body match, in exactly the legacy
  enumeration order;
* an **emitter** — the vectorized form used by the set-at-a-time rule
  pass and by :class:`~repro.engine.compile.BoundQuery`: when the last
  body step is a plain scan (writes and checks only), the innermost
  loop collapses into a list comprehension that projects whole result
  batches — one list per innermost index bucket — with the projection's
  slot reads substituted by direct row indexing.  The comprehension's
  loop bookkeeping runs in C, which is where the "emit whole column
  slices instead of per-row slot writes" speedup comes from.

Equivalence contract
--------------------

Generated code must be *observably identical* to the interpreted
executor: same enumeration order (``reversed`` over each candidate
batch), same ``tuples_scanned``/``batch_rows``/``index_*`` counter
updates at the same points, same visibility of in-pass relation
mutations.  The batch granularity of the emitter is safe on that last
point because ``reversed(bucket)`` already snapshots its start index:
rows appended to a live bucket during its own enumeration were
invisible to the interpreted executor too, so draining one bucket's
derivations after the bucket is enumerated (instead of interleaved)
cannot change what any probe sees.  Bodies outside the generatable
shape simply keep the interpreted path — generation failure is never an
error.
"""

def _key_expr(i, positions, key_parts, ns):
    """The probe-key expression for scan ``i``; mirrors ``_make_key_fn``."""
    if not positions:
        return "None"
    if len(key_parts) == 1:
        kind, data = key_parts[0]
        if kind == 0:  # _KEY_CONST
            name = "_kc%d" % i
            ns[name] = data
            return name
        if kind == 1:  # _KEY_SLOT
            return "slots[%d]" % data
        name = "_kf%d" % i  # _KEY_EVAL
        ns[name] = data
        return "%s(slots)" % name
    if all(kind == 0 for kind, _ in key_parts):
        name = "_kt%d" % i
        ns[name] = tuple(data for _, data in key_parts)
        return name
    parts = []
    for j, (kind, data) in enumerate(key_parts):
        if kind == 0:
            name = "_kc%d_%d" % (i, j)
            ns[name] = data
            parts.append(name)
        elif kind == 1:
            parts.append("slots[%d]" % data)
        else:
            name = "_kf%d_%d" % (i, j)
            ns[name] = data
            parts.append("%s(slots)" % name)
    return "(%s,)" % ", ".join(parts)


def _scan_prologue(i, spec, ns, w, pad, state_alloc=None):
    """Emit the probe + batch-counter lines shared by every scan.

    The relation is resolved lazily on the scan's first invocation and
    cached in a local for the rest of the call: every in-tree resolver
    is a fixed ``(index, atom) -> relation`` mapping for the duration
    of one rule pass (relations mutate in place, their identity does
    not change), so re-resolving per invocation — what the interpreted
    executor does — only costs time.  Lazy rather than up-front so a
    scan that is never reached never resolves, exactly like the
    interpreted path (resolution can materialize empty derived
    relations as a side effect).

    With ``state_alloc`` (the bound form, see
    :func:`generate_bound_collector`) the resolved relation and its
    hoisted probe view persist *across calls* in the caller-owned
    ``state`` list: two slots are allocated per scan, and the per-call
    resolver/`probe_index` round-trips collapse into list loads.  Safe
    for the same reason the per-call hoist is, extended over the
    binding's lifetime: the caller guarantees its resolver is a fixed
    mapping for as long as it uses the binding, and both view kinds
    are maintained in place by ``Relation.add``.
    """
    lit_index, atom, positions, key_parts, _ops = spec
    ns["_atom%d" % i] = atom
    ns["_pos%d" % i] = tuple(positions)
    key = _key_expr(i, positions, key_parts, ns)
    full_arity = positions and len(positions) == len(atom.args)
    base = None
    if state_alloc is not None:
        base = state_alloc[0]
        state_alloc[0] += 1 if not positions else 2
        w(pad, "_rel%d = state[%d]" % (i, base))
    w(pad, "if _rel%d is None:" % i)
    w(pad + 1, "_rel%d = resolver(%d, _atom%d)" % (i, lit_index, i))
    if base is not None and not positions:
        w(pad + 1, "state[%d] = _rel%d" % (base, i))
    if not positions:
        # Full scan: every probe snapshots the tuple set, exactly like
        # lookup((), None) — no view to hoist.
        w(pad, "_c%d = _rel%d.lookup(_pos%d, None, stats)" % (i, i, i))
    elif full_arity:
        # Full-arity probes are membership tests against the tuple
        # set; hoist the set once, keep lookup's probe accounting.
        w(pad + 1, "_v%d = _getattr(_rel%d, 'probe_set', _none)"
          % (i, i))
        w(pad + 1, "_v%d = _v%d() if _v%d is not None else None"
          % (i, i, i))
        if base is not None:
            w(pad + 1, "state[%d] = _rel%d" % (base, i))
            w(pad + 1, "state[%d] = _v%d" % (base + 1, i))
            w(pad, "else:")
            w(pad + 1, "_v%d = state[%d]" % (i, base + 1))
        w(pad, "if _v%d is None:" % i)
        w(pad + 1, "_c%d = _rel%d.lookup(_pos%d, %s, stats)"
          % (i, i, i, key))
        w(pad, "else:")
        w(pad + 1, "if stats is not None:")
        w(pad + 2, "stats.index_probes += 1")
        if len(positions) == 1:
            w(pad + 1, "_t%d = (%s,)" % (i, key))
        else:
            w(pad + 1, "_t%d = %s" % (i, key))
        w(pad + 1, "_c%d = (_t%d,) if _t%d in _v%d else ()"
          % (i, i, i, i))
    else:
        # Partial-arity probes: hoist the index dict once (built with
        # the same index_builds charge lookup's first probe pays) and
        # inline each probe as a dict get plus the probe counter.
        w(pad + 1, "_v%d = _getattr(_rel%d, 'probe_index', _none)"
          % (i, i))
        w(pad + 1, "_v%d = _v%d(_pos%d, stats) "
          "if _v%d is not None else None" % (i, i, i, i))
        if base is not None:
            w(pad + 1, "state[%d] = _rel%d" % (base, i))
            w(pad + 1, "state[%d] = _v%d" % (base + 1, i))
            w(pad, "else:")
            w(pad + 1, "_v%d = state[%d]" % (i, base + 1))
        w(pad, "if _v%d is None:" % i)
        w(pad + 1, "_c%d = _rel%d.lookup(_pos%d, %s, stats)"
          % (i, i, i, key))
        w(pad, "else:")
        w(pad + 1, "if stats is not None:")
        w(pad + 2, "stats.index_probes += 1")
        w(pad + 1, "_c%d = _v%d.get(%s, ())" % (i, i, key))
    w(pad, "if stats is not None:")
    w(pad + 1, "_b%d = _len(_c%d)" % (i, i))
    w(pad + 1, "stats.tuples_scanned += _b%d" % i)
    w(pad + 1, "stats.batch_rows += _b%d" % i)


def _scan_loop(i, spec, ns, w, pad, state_alloc=None):
    """Emit the row loop with inlined ops; returns the body indent."""
    _lit_index, _atom, _positions, _key_parts, ops = spec
    _scan_prologue(i, spec, ns, w, pad, state_alloc)
    w(pad, "for _r%d in _reversed(_c%d):" % (i, i))
    inner = pad + 1
    for j, (pos, kind, data) in enumerate(ops):
        if kind == 0:  # _OP_WRITE
            w(inner, "slots[%d] = _r%d[%d]" % (data, i, pos))
        elif kind == 1:  # _OP_CHECK
            w(inner, "if _r%d[%d] != slots[%d]: continue" % (i, pos, data))
        else:  # _OP_MATCH
            name = "_m%d_%d" % (i, j)
            ns[name] = data
            w(inner, "if not %s(_r%d[%d], slots): continue"
              % (name, i, pos))
    return inner


def _generic_loop(i, step, ns, w, pad, abort):
    """Emit a non-scan step; returns the body indent.

    Steps carrying an ``inline_spec`` (pure filters and single-binding
    assignments — see the comparison compiler in
    :mod:`repro.engine.compile`) are emitted as direct calls instead of
    a generator loop; anything else runs through its step generator
    exactly like the interpreted executor.  ``abort`` is the statement
    that skips the current candidate when a filter fails — ``continue``
    inside a loop, the enclosing function's empty return outside one.
    """
    spec = getattr(step, "inline_spec", None)
    if spec is not None:
        kind = spec[0]
        name = "_f%d" % i
        if kind == "assign":
            ns[name] = spec[2]
            w(pad, "slots[%d] = %s(slots)" % (spec[1], name))
            return pad
        ns[name] = spec[1]
        call = ("%s(slots)" if kind == "filter"
                else "%s(slots, resolver)") % name
        w(pad, "if not %s: %s" % (call, abort))
        return pad
    name = "_step%d" % i
    ns[name] = step
    w(pad, "for _ in %s(slots, resolver, stats):" % name)
    return pad + 1


#: Source -> code-object cache.  The generated source is fully
#: determined by the body's structural shape (op kinds, slot and
#: position numbers), so distinct rule instances with the same shape
#: share one bytecode compilation; per-instance data (atoms, constants,
#: matchers) arrives through the exec namespace.  Bounded defensively —
#: shapes are few in practice, but fuzzed test runs generate many.
_CODE_CACHE = {}
_CODE_CACHE_LIMIT = 4096


def _compile_fn(lines, ns, tag, scan_indexes=()):
    if scan_indexes:
        lines[1:1] = [
            "    _rel%d = None" % i for i in scan_indexes
        ]
    source = "\n".join(lines)
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.clear()
        code = compile(source, "<repro-codegen:%s>" % tag, "exec")
        _CODE_CACHE[source] = code
    exec(code, ns)
    return ns["_run"]


def generate_runner(steps):
    """A generated ``execute`` equivalent, or None if generation fails.

    Yields the (shared, mutated-in-place) slot list once per body
    match, exactly like the interpreted executor.
    """
    ns = {"_reversed": reversed, "_len": len, "_getattr": getattr,
          "_none": None, "__builtins__": {}}
    lines = []

    def w(depth, text):
        lines.append("    " * depth + text)

    w(0, "def _run(resolver, slots, stats):")
    pad = 1
    if not steps:
        w(pad, "yield slots")
        return _compile_fn(lines, ns, "runner")
    scans = []
    for i, step in enumerate(steps):
        spec = getattr(step, "scan_spec", None)
        if spec is not None:
            scans.append(i)
            pad = _scan_loop(i, spec, ns, w, pad)
        else:
            abort = "continue" if pad > 1 else "return"
            pad = _generic_loop(i, step, ns, w, pad, abort)
    w(pad, "yield slots")
    return _compile_fn(lines, ns, "runner", scans)


def _projection_exprs(projection, written, ns):
    """Expressions projecting a match, with innermost writes substituted.

    ``written`` maps slot index -> row-index expression for slots the
    innermost scan writes.  Returns None when the projection cannot be
    evaluated without performing those writes (an eval fn reads one of
    them) — callers fall back to the runner.
    """
    exprs = []
    for j, entry in enumerate(projection):
        kind = entry[0]
        if kind == "const":
            name = "_pc%d" % j
            ns[name] = entry[1]
            exprs.append(name)
        elif kind == "slot":
            index = entry[1]
            exprs.append(written.get(index, "slots[%d]" % index))
        else:  # ("fn", callable, frozenset(read slots))
            _kind, fn, reads = entry
            if not reads.isdisjoint(written):
                return None
            name = "_pf%d" % j
            ns[name] = fn
            exprs.append("%s(slots)" % name)
    return exprs


def _generate_batched(steps, projection, eager, entry=None, bound=False):
    """Shared emitter/collector generation; None outside the shape.

    Requirements: the last step is a scan whose ops are writes and
    checks only, and every projection entry is computable without
    actually performing the innermost writes (slot reads are
    substituted by row indexing).

    ``entry`` — ``(nslots, loader)`` — switches the signature to
    ``(resolver, values, stats)``: the slot list is allocated and the
    positional ``values`` loads are unrolled inside the generated
    function, saving one allocation plus a Python-level zip loop per
    call (the bound-query path runs tens of thousands of one-shot
    calls per evaluation).

    ``bound`` (requires ``entry``) switches to the cross-call form
    ``(state, values, stats)``: ``state[0]`` is the resolver and the
    remaining slots persist each scan's resolved relation and probe
    view between calls.  The generated function carries the state size
    as ``_state_size``.
    """
    if not steps:
        last_spec = None
    else:
        last_spec = getattr(steps[-1], "scan_spec", None)
        if last_spec is None:
            return None
        if any(kind == 2 for _pos, kind, _data in last_spec[4]):
            return None  # matcher ops mutate slots; cannot substitute

    tag = "collector" if eager else "emitter"
    ns = {"_reversed": reversed, "_len": len, "_getattr": getattr,
          "_none": None, "__builtins__": {}}
    lines = []
    state_alloc = [1] if bound else None

    def w(depth, text):
        lines.append("    " * depth + text)

    if entry is None:
        w(0, "def _run(resolver, slots, stats):")
    else:
        nslots, loader = entry
        if bound:
            w(0, "def _run(state, values, stats):")
            w(1, "resolver = state[0]")
        else:
            w(0, "def _run(resolver, values, stats):")
        w(1, "slots = [_none] * %d" % nslots)
        # Unrolled in loader order: duplicate in_names keep their
        # later-wins semantics.
        for j, slot in enumerate(loader):
            w(1, "slots[%d] = values[%d]" % (slot, j))
    pad = 1

    if last_spec is None:
        exprs = _projection_exprs(projection, {}, ns)
        if exprs is None:
            return None
        batch = "[(%s)]" % (
            ", ".join(exprs) + ("," if len(exprs) == 1 else "")
            if exprs else ""
        )
        w(pad, ("return %s" if eager else "yield %s") % batch)
        fn = _compile_fn(lines, ns, tag)
        if bound:
            fn._state_size = state_alloc[0]
        return fn

    if eager:
        w(pad, "_out = []")
    scans = []
    for i, step in enumerate(steps[:-1]):
        spec = getattr(step, "scan_spec", None)
        if spec is not None:
            scans.append(i)
            pad = _scan_loop(i, spec, ns, w, pad, state_alloc)
        else:
            if pad > 1:
                abort = "continue"
            else:
                abort = "return _out" if eager else "return"
            pad = _generic_loop(i, step, ns, w, pad, abort)

    i = len(steps) - 1
    scans.append(i)
    ops = last_spec[4]
    # Walk the ops in order, tracking which slots the scan would have
    # written so later checks and the projection read the row directly.
    written = {}
    conds = []
    for pos, kind, data in ops:
        if kind == 0:
            written[data] = "_r%d[%d]" % (i, pos)
        else:
            rhs = written.get(data, "slots[%d]" % data)
            conds.append("_r%d[%d] == %s" % (i, pos, rhs))
    exprs = _projection_exprs(projection, written, ns)
    if exprs is None:
        return None
    _scan_prologue(i, last_spec, ns, w, pad, state_alloc)
    tuple_expr = "(%s)" % (
        ", ".join(exprs) + ("," if len(exprs) == 1 else "")
        if exprs else ""
    )
    comp = "%s for _r%d in _reversed(_c%d)" % (tuple_expr, i, i)
    for cond in conds:
        comp += " if %s" % cond
    if eager:
        w(pad, "_out += [%s]" % comp)
        w(1, "return _out")
    else:
        w(pad, "yield [%s]" % comp)
    fn = _compile_fn(lines, ns, tag, () if bound else scans)
    if bound:
        fn._state_size = state_alloc[0]
    return fn


def generate_emitter(steps, projection):
    """A generated batch emitter, or None outside the vectorizable shape.

    The emitter is a generator yielding one ``list`` of projected
    tuples per innermost scan invocation.  Callers that interleave
    writes with iteration (the semi-naive loop) depend on that
    batch-at-a-time visibility.
    """
    return _generate_batched(steps, projection, eager=False)


def generate_collector(steps, projection):
    """A generated eager collector, or None outside the vectorizable shape.

    Same shape restrictions as :func:`generate_emitter`, but the whole
    match set materializes into one flat ``list`` that is returned —
    no generator frames at all.  Only callers that drain every match
    without interleaved relation writes (the bound-query path) may use
    it; batch-at-a-time visibility is lost.
    """
    return _generate_batched(steps, projection, eager=True)


def generate_entry_collector(steps, projection, nslots, loader):
    """An eager collector taking ``(resolver, values, stats)`` directly.

    Same semantics as :func:`generate_collector` with the slot
    allocation and positional loads folded into the generated code.
    ``loader`` maps value position -> slot index.
    """
    return _generate_batched(
        steps, projection, eager=True, entry=(nslots, tuple(loader))
    )


def generate_bound_collector(steps, projection, nslots, loader):
    """An eager collector taking ``(state, values, stats)``.

    The pass-level form behind :meth:`BoundQuery.bind`: ``state[0]``
    holds the resolver and the remaining ``_state_size - 1`` slots
    persist each scan's resolved relation and probe view *across
    calls*.  Callers own the state list and must discard it when their
    resolver's ``(index, atom) -> relation`` mapping changes — the
    counting engines bind once per (call site, rule) and evaluate one
    run, over which the mapping is fixed by construction.
    """
    return _generate_batched(
        steps, projection, eager=True, entry=(nslots, tuple(loader)),
        bound=True,
    )
