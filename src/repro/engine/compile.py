"""Set-at-a-time rule compilation: batched hash joins over slot arrays.

The tuple-at-a-time path in :mod:`repro.engine.join` re-resolves and
re-unifies every atom argument once per candidate row, paying several
Python-level calls and a dict copy per binding.  This module performs
that analysis **once per rule**: each body-literal position is
classified as

* a *key part* — a constant, an already-bound variable, or a structured
  term whose variables are all bound — contributing to the hash-index
  probe key;
* a *write* — the first occurrence of a flat variable, compiled to a
  direct ``slots[i] = row[pos]`` store;
* a *check* — a repeated variable, compiled to an equality test against
  its slot;
* a *matcher* — a structured term such as ``[(r1, C) | L]``, compiled to
  a small closure that decomposes the stored value and falls back to
  full unification semantics.

Substitutions become flat slot arrays indexed by position instead of
name-keyed dicts of terms, and candidate rows arrive in batches from
:meth:`Relation.lookup` probes instead of one generator hop per row.

Equivalence contract
--------------------

The compiled engine is a drop-in replacement for
:func:`repro.engine.join.evaluate_body` on the supported fragment: it
enumerates **the same results in the same order** (the legacy stack
discipline visits each level's candidates in reverse; the executor here
replicates that) and updates ``tuples_scanned`` / ``facts_*`` counters
identically — the work counters are the paper's currency, so the
optimization must not change *what* is computed, only how fast.
Constructs outside the fragment (non-ground negation, comparisons over
unbound terms, head arguments that cannot be proven ground) make
:func:`compile_body` / :class:`CompiledRule` report failure and callers
fall back to the legacy path, which raises the same errors it always
did.
"""

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.terms import (
    ARITH_FUNCTORS,
    CONS,
    TUPLE,
    Compound,
    Constant,
    Variable,
    eval_arith,
)
from ..datalog.unify import resolve
from ..errors import EvaluationError
from .builtins import _ordered
from .codegen import (
    generate_bound_collector,
    generate_collector,
    generate_emitter,
    generate_entry_collector,
    generate_runner,
)
from .columnar import columnar_enabled

#: Direct implementations of the binary arithmetic functors; ``min`` /
#: ``max`` and any future n-ary forms stay on the generic
#: ``eval_arith`` fold.
_ARITH_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
}

#: Sentinel returned by the executor's ``next`` calls on exhaustion.
_DONE = object()

#: Per-position op kinds inside a scan (see module docstring).
_OP_WRITE = 0
_OP_CHECK = 1
_OP_MATCH = 2

#: Key-part kinds.
_KEY_CONST = 0
_KEY_SLOT = 1
_KEY_EVAL = 2


# -- term helpers ----------------------------------------------------


def _vars_within(term, names):
    """True if every variable of ``term`` is in ``names`` (no set built)."""
    return all(name in names for name in term.iter_variables())



def _compile_eval(term, slot_of):
    """Compile ``term`` (variables all slotted) to ``slots -> value``.

    Mirrors :func:`repro.datalog.terms.ground_value` exactly, including
    the errors it raises, so the compiled path fails the same way the
    legacy ``resolve`` fold does.
    """
    if isinstance(term, Constant):
        value = term.value
        return lambda slots: value
    if isinstance(term, Variable):
        index = slot_of[term.name]
        return lambda slots: slots[index]
    if isinstance(term, Compound):
        functor = term.functor
        parts = [_compile_eval(arg, slot_of) for arg in term.args]
        if functor == CONS:
            head_fn, tail_fn = parts

            def eval_cons(slots):
                head = head_fn(slots)
                tail = tail_fn(slots)
                if not isinstance(tail, tuple):
                    raise EvaluationError(
                        "list tail is not a list: %r" % (tail,)
                    )
                return (head,) + tail

            return eval_cons
        if functor == TUPLE:
            return lambda slots: tuple(fn(slots) for fn in parts)
        if functor in ARITH_FUNCTORS:
            binop = _ARITH_BINOPS.get(functor)
            if binop is not None and len(parts) == 2:
                a_fn, b_fn = parts

                def eval_binop(slots):
                    # Mirrors eval_arith exactly: both operands are
                    # evaluated first, then checked in order.
                    a = a_fn(slots)
                    b = b_fn(slots)
                    if not isinstance(a, (int, float)):
                        raise EvaluationError(
                            "arithmetic on non-numeric value %r" % (a,)
                        )
                    if not isinstance(b, (int, float)):
                        raise EvaluationError(
                            "arithmetic on non-numeric value %r" % (b,)
                        )
                    return binop(a, b)

                return eval_binop
            return lambda slots: eval_arith(
                functor, [fn(slots) for fn in parts]
            )

        def eval_unknown(_slots):
            raise EvaluationError("unknown functor %r" % functor)

        return eval_unknown
    raise EvaluationError("not a term: %r" % (term,))


def _compile_match(term, slot_of, live, alloc):
    """Compile pattern ``term`` to ``(value, slots) -> bool``.

    ``live`` is the set of variable names bound at the point the matcher
    runs; names the pattern binds are added to it (pattern positions are
    processed left to right, matching the legacy unification chain).
    Semantics mirror ``unify(pattern, Constant(value))``: cons cells
    decompose non-empty tuples, tuple terms decompose width-matched
    tuples, and anything else — notably arithmetic functors, which the
    legacy unifier never evaluates inside patterns — fails.
    """
    if isinstance(term, Constant):
        value = term.value

        def match_const(candidate, _slots):
            return candidate == value

        return match_const
    if isinstance(term, Variable):
        name = term.name
        if name in live:
            index = slot_of[name]

            def match_bound(candidate, slots):
                return candidate == slots[index]

            return match_bound
        live.add(name)
        index = alloc(name)

        def match_bind(candidate, slots):
            slots[index] = candidate
            return True

        return match_bind
    functor = term.functor
    if functor == CONS:
        match_head = _compile_match(term.args[0], slot_of, live, alloc)
        match_tail = _compile_match(term.args[1], slot_of, live, alloc)

        def match_cons(candidate, slots):
            if isinstance(candidate, tuple) and candidate:
                return match_head(candidate[0], slots) and match_tail(
                    candidate[1:], slots
                )
            return False

        return match_cons
    if functor == TUPLE:
        width = len(term.args)
        matchers = [
            _compile_match(arg, slot_of, live, alloc) for arg in term.args
        ]

        def match_tuple(candidate, slots):
            if not isinstance(candidate, tuple) or len(candidate) != width:
                return False
            for matcher, element in zip(matchers, candidate):
                if not matcher(element, slots):
                    return False
            return True

        return match_tuple

    # Arithmetic and unknown functors never match a stored value — the
    # legacy unifier returns None for them without evaluating.
    def match_never(_candidate, _slots):
        return False

    return match_never


# -- literal compilation ---------------------------------------------


def _make_key_fn(key_parts):
    """Build ``slots -> probe key`` for the bound positions of a scan.

    Single-position keys are scalars (see :meth:`Relation.lookup`);
    wider keys are tuples in ascending position order.
    """
    if len(key_parts) == 1:
        kind, data = key_parts[0]
        if kind == _KEY_CONST:
            return lambda slots: data
        if kind == _KEY_SLOT:
            return lambda slots: slots[data]
        return data
    if all(kind == _KEY_CONST for kind, _ in key_parts):
        constant_key = tuple(data for _, data in key_parts)
        return lambda slots: constant_key
    spec = tuple(key_parts)

    def key_fn(slots):
        return tuple(
            data
            if kind == _KEY_CONST
            else (slots[data] if kind == _KEY_SLOT else data(slots))
            for kind, data in spec
        )

    return key_fn


def _compile_scan(lit_index, atom, slot_of, bound, alloc):
    """Compile one positive body atom into a batched index scan step."""
    prefix = frozenset(bound)
    live = set(bound)
    positions = []
    key_parts = []
    ops = []
    for pos, arg in enumerate(atom.args):
        if isinstance(arg, Constant):
            positions.append(pos)
            key_parts.append((_KEY_CONST, arg.value))
        elif isinstance(arg, Variable):
            name = arg.name
            if name in prefix:
                positions.append(pos)
                key_parts.append((_KEY_SLOT, slot_of[name]))
            elif name in live:
                ops.append((pos, _OP_CHECK, slot_of[name]))
            else:
                live.add(name)
                ops.append((pos, _OP_WRITE, alloc(name)))
        else:
            if _vars_within(arg, prefix):
                positions.append(pos)
                key_parts.append((_KEY_EVAL, _compile_eval(arg, slot_of)))
            else:
                ops.append(
                    (pos, _OP_MATCH,
                     _compile_match(arg, slot_of, live, alloc))
                )
    bound |= live
    positions = tuple(positions)
    key_parts = tuple(key_parts)
    key_fn = _make_key_fn(key_parts) if positions else None
    only_writes = all(kind == _OP_WRITE for _, kind, _ in ops)
    write_pairs = tuple(
        (pos, data) for pos, kind, data in ops if kind == _OP_WRITE
    )
    ops = tuple(ops)
    # Everything the specializing code generator needs to reproduce
    # this scan as inline source (see repro.engine.codegen); attached
    # to the closure so CompiledBody can hand its steps over wholesale.
    spec = (lit_index, atom, positions, key_parts, ops)

    if only_writes:

        def scan(slots, resolver, stats):
            relation = resolver(lit_index, atom)
            candidates = relation.lookup(
                positions, key_fn(slots) if key_fn is not None else None,
                stats,
            )
            if stats is not None:
                batch = len(candidates)
                stats.tuples_scanned += batch
                stats.batch_rows += batch
            for row in reversed(candidates):
                for pos, slot in write_pairs:
                    slots[slot] = row[pos]
                yield None

        scan.scan_spec = spec
        return scan

    def scan(slots, resolver, stats):
        relation = resolver(lit_index, atom)
        candidates = relation.lookup(
            positions, key_fn(slots) if key_fn is not None else None, stats
        )
        if stats is not None:
            batch = len(candidates)
            stats.tuples_scanned += batch
            stats.batch_rows += batch
        for row in reversed(candidates):
            ok = True
            for pos, kind, data in ops:
                value = row[pos]
                if kind == _OP_WRITE:
                    slots[data] = value
                elif kind == _OP_CHECK:
                    if value != slots[data]:
                        ok = False
                        break
                elif not data(value, slots):
                    ok = False
                    break
            if ok:
                yield None

    scan.scan_spec = spec
    return scan


def _compile_negation(lit_index, negation, slot_of, bound):
    """Compile ``not atom``; None if the atom is not statically ground."""
    atom = negation.atom
    fns = []
    for arg in atom.args:
        if not _vars_within(arg, bound):
            return None
        fns.append(_compile_eval(arg, slot_of))
    fns = tuple(fns)

    def negate_test(slots, resolver):
        relation = resolver(lit_index, atom)
        return tuple(fn(slots) for fn in fns) not in relation

    def negate(slots, resolver, stats):
        if negate_test(slots, resolver):
            yield None

    negate.inline_spec = ("rfilter", negate_test)
    return negate


def _compile_comparison(comparison, slot_of, bound, alloc):
    """Compile a comparison literal; None when outside the fragment.

    The supported fragment covers every comparison the legacy evaluator
    handles without raising: both-sides-ground tests, ``=``/``is``/``in``
    binding a fresh flat variable or decomposing into a structured
    pattern.  Comparisons the legacy path would *raise* on (non-ground
    ordering operands, unbound right sides of ``is``/``in``) are left to
    the fallback so the error surface is unchanged.
    """
    op = comparison.op
    left, right = comparison.left, comparison.right
    left_ground = _vars_within(left, bound)
    right_ground = _vars_within(right, bound)

    if op in ("<", "<=", ">", ">="):
        if not (left_ground and right_ground):
            return None
        left_fn = _compile_eval(left, slot_of)
        right_fn = _compile_eval(right, slot_of)

        def ordered_test(slots):
            return _ordered(op, left_fn(slots), right_fn(slots))

        def ordered(slots, resolver, stats):
            if ordered_test(slots):
                yield None

        ordered.inline_spec = ("filter", ordered_test)
        return ordered

    if op == "!=":
        if not (left_ground and right_ground):
            return None
        left_fn = _compile_eval(left, slot_of)
        right_fn = _compile_eval(right, slot_of)

        def differs_test(slots):
            return left_fn(slots) != right_fn(slots)

        def differs(slots, resolver, stats):
            if differs_test(slots):
                yield None

        differs.inline_spec = ("filter", differs_test)
        return differs

    if op in ("=", "is"):
        # ``is`` additionally requires a ground right side; when it is
        # not, the legacy path raises — fall back for error parity.
        if not right_ground:
            if op == "is" or not left_ground:
                return None
            left, right = right, left
            left_ground, right_ground = False, True
        right_fn = _compile_eval(right, slot_of)
        if left_ground:
            left_fn = _compile_eval(left, slot_of)

            def equals_test(slots):
                return left_fn(slots) == right_fn(slots)

            def equals(slots, resolver, stats):
                if equals_test(slots):
                    yield None

            equals.inline_spec = ("filter", equals_test)
            return equals
        if isinstance(left, Variable):
            index = alloc(left.name)
            bound.add(left.name)

            def binds(slots, resolver, stats):
                slots[index] = right_fn(slots)
                yield None

            binds.inline_spec = ("assign", index, right_fn)
            return binds
        if isinstance(left, Compound):
            matcher = _compile_match(left, slot_of, bound, alloc)

            def decomposes_test(slots):
                return matcher(right_fn(slots), slots)

            def decomposes(slots, resolver, stats):
                if decomposes_test(slots):
                    yield None

            decomposes.inline_spec = ("filter", decomposes_test)
            return decomposes
        return None

    if op == "in":
        if not right_ground:
            return None
        right_fn = _compile_eval(right, slot_of)
        if left_ground:
            left_fn = _compile_eval(left, slot_of)

            def member_test(slots, resolver, stats):
                members = right_fn(slots)
                if not isinstance(members, (tuple, frozenset, set)):
                    raise EvaluationError(
                        "right side of 'in' is not a collection: %r"
                        % (members,)
                    )
                needle = left_fn(slots)
                for member in reversed(list(members)):
                    if member == needle:
                        yield None

            return member_test
        if isinstance(left, Variable):
            index = alloc(left.name)
            bound.add(left.name)

            def member_bind(slots, resolver, stats):
                members = right_fn(slots)
                if not isinstance(members, (tuple, frozenset, set)):
                    raise EvaluationError(
                        "right side of 'in' is not a collection: %r"
                        % (members,)
                    )
                for member in reversed(list(members)):
                    slots[index] = member
                    yield None

            return member_bind
        if isinstance(left, Compound):
            matcher = _compile_match(left, slot_of, bound, alloc)

            def member_match(slots, resolver, stats):
                members = right_fn(slots)
                if not isinstance(members, (tuple, frozenset, set)):
                    raise EvaluationError(
                        "right side of 'in' is not a collection: %r"
                        % (members,)
                    )
                for member in reversed(list(members)):
                    if matcher(member, slots):
                        yield None

            return member_match
        return None

    return None


# -- compiled bodies -------------------------------------------------


class CompiledBody:
    """A rule body compiled to slot-array evaluation.

    ``slot_of`` maps variable names to slot indexes; names listed in
    ``bound_names`` occupy the first slots in order, so callers can
    preload bindings positionally.  ``bound_after`` is the set of names
    guaranteed ground once the body has been fully matched.

    When the columnar backend is enabled at construction time the body
    additionally carries a *specialized executor* generated by
    :mod:`repro.engine.codegen` — straight-line nested loops replacing
    the interpreted generator stack — and can hand out batch
    *emitters* via :meth:`emitter`.  Both produce results and counter
    updates identical to the interpreted path; generation failure just
    means the interpreted path is used.
    """

    __slots__ = ("body", "bound_names", "slot_of", "nslots", "steps",
                 "bound_after", "_runner", "_emitters", "_collectors")

    def __init__(self, body, bound_names, slot_of, steps, bound_after):
        self.body = body
        self.bound_names = bound_names
        self.slot_of = slot_of
        self.nslots = len(slot_of)
        self.steps = tuple(steps)
        self.bound_after = frozenset(bound_after)
        # The flag is read once here so a body compiled under one
        # backend keeps behaving identically even if the process-wide
        # flag is flipped afterwards (the differential tests hold
        # bodies from both backends side by side).
        self._runner = None
        self._emitters = {}
        self._collectors = {}
        if columnar_enabled():
            try:
                self._runner = generate_runner(self.steps)
            except Exception:
                self._runner = None

    def make_slots(self):
        return [None] * self.nslots

    def loader(self, names):
        """Slot indexes for preloading ``names`` positionally.

        Duplicate names are allowed; the later value wins, matching the
        successive-dict-write discipline of the legacy call sites.
        """
        return tuple(self.slot_of[name] for name in names)

    def extractor(self, names):
        """Slot indexes projecting a result onto ``names``.

        Raises ``KeyError`` when a name can never be bound by this body.
        """
        return tuple(self.slot_of[name] for name in names)

    def execute(self, resolver, slots, stats=None):
        """Yield ``slots`` once per match, mutated in place.

        The same list object is yielded every time — callers must copy
        out what they need before advancing.  Enumeration order equals
        the legacy stack discipline exactly.
        """
        runner = self._runner
        if runner is not None:
            return runner(resolver, slots, stats)
        return self._execute_interp(resolver, slots, stats)

    def _execute_interp(self, resolver, slots, stats=None):
        """The interpreted generator-stack executor (reference path)."""
        steps = self.steps
        if not steps:
            yield slots
            return
        last = len(steps) - 1
        iters = [None] * len(steps)
        iters[0] = steps[0](slots, resolver, stats)
        depth = 0
        while depth >= 0:
            if next(iters[depth], _DONE) is _DONE:
                iters[depth] = None
                depth -= 1
            elif depth == last:
                yield slots
            else:
                depth += 1
                iters[depth] = steps[depth](slots, resolver, stats)

    def emitter(self, projection):
        """A generated batch emitter for ``projection``, or None.

        ``projection`` is a row spec as produced by
        :func:`compile_row_spec`.  The emitter is a generator taking
        ``(resolver, slots, stats)`` and yielding one *list* of
        projected result tuples per innermost scan invocation, in the
        exact enumeration order of :meth:`execute` — callers drain each
        batch (e.g. into ``relation.add``) before the next one is
        produced, which preserves the interpreted path's visibility of
        in-pass mutations.  Returns None when codegen is off for this
        body or the shape is not vectorizable; callers fall back to
        :meth:`execute`.
        """
        cached = self._emitters.get(projection)
        if cached is not None:
            return cached or None
        if self._runner is None:
            self._emitters[projection] = False
            return None
        try:
            fn = generate_emitter(self.steps, projection)
        except Exception:
            fn = None
        self._emitters[projection] = fn if fn is not None else False
        return fn

    def collector(self, projection):
        """A generated eager collector for ``projection``, or None.

        Like :meth:`emitter` but the generated function *returns* one
        flat list of every projected result tuple — no generator
        frames, one call per body pass.  Enumeration order and counter
        updates are identical to :meth:`execute`; what is lost is
        batch-at-a-time visibility of in-pass mutations, so only
        callers that drain the whole match set without writing to the
        scanned relations (the bound-query path) may use it.
        """
        cached = self._collectors.get(projection)
        if cached is not None:
            return cached or None
        if self._runner is None:
            self._collectors[projection] = False
            return None
        try:
            fn = generate_collector(self.steps, projection)
        except Exception:
            fn = None
        self._collectors[projection] = fn if fn is not None else False
        return fn

    def entry_collector(self, projection, loader):
        """An eager collector taking ``(resolver, values, stats)``.

        Like :meth:`collector` with the slot allocation and the
        positional ``values`` loads folded into the generated code —
        the bound-query fast path.  ``loader`` maps value position ->
        slot index.
        """
        key = (projection, tuple(loader))
        cached = self._collectors.get(key)
        if cached is not None:
            return cached or None
        if self._runner is None:
            self._collectors[key] = False
            return None
        try:
            fn = generate_entry_collector(
                self.steps, projection, self.nslots, loader
            )
        except Exception:
            fn = None
        self._collectors[key] = fn if fn is not None else False
        return fn

    def bound_collector(self, projection, loader):
        """An eager collector taking ``(state, values, stats)``.

        The pass-level form: ``state`` (caller-owned, ``state[0]`` the
        resolver) persists each scan's resolved relation and probe
        view across calls — see :meth:`BoundQuery.bind`.
        """
        key = ("bound", projection, tuple(loader))
        cached = self._collectors.get(key)
        if cached is not None:
            return cached or None
        if self._runner is None:
            self._collectors[key] = False
            return None
        try:
            fn = generate_bound_collector(
                self.steps, projection, self.nslots, loader
            )
        except Exception:
            fn = None
        self._collectors[key] = fn if fn is not None else False
        return fn


def compile_body(body, bound_names=()):
    """Compile ``body`` given ``bound_names`` pre-bound; None if outside
    the supported fragment (callers fall back to the legacy path)."""
    slot_of = {}
    for name in bound_names:
        if name not in slot_of:
            slot_of[name] = len(slot_of)
    bound = set(slot_of)

    def alloc(name):
        slot = slot_of.get(name)
        if slot is None:
            slot = len(slot_of)
            slot_of[name] = slot
        return slot

    steps = []
    for index, lit in enumerate(body):
        if isinstance(lit, Atom):
            steps.append(_compile_scan(index, lit, slot_of, bound, alloc))
        elif isinstance(lit, Negation):
            step = _compile_negation(index, lit, slot_of, bound)
            if step is None:
                return None
            steps.append(step)
        elif isinstance(lit, Comparison):
            step = _compile_comparison(lit, slot_of, bound, alloc)
            if step is None:
                return None
            steps.append(step)
        else:
            # Unknown literal kinds raise in the legacy evaluator; let
            # the fallback produce that error.
            return None
    return CompiledBody(
        tuple(body), tuple(dict.fromkeys(bound_names)), slot_of, steps,
        bound,
    )


def compile_row_spec(args, compiled):
    """Row-projection spec for argument terms, or None.

    Each entry is ``("const", value)``, ``("slot", index)``, or
    ``("fn", slots -> value, frozenset(read slot indexes))``.  The spec
    form feeds both :func:`compile_row` (a plain closure) and the code
    generator's batch emitters, which substitute slot reads with direct
    row indexing.  Returns None when an argument cannot be proven
    ground after the body — the legacy path raises at runtime in that
    case and the caller should fall back.
    """
    spec = []
    for arg in args:
        if isinstance(arg, Constant):
            spec.append(("const", arg.value))
        elif isinstance(arg, Variable):
            if arg.name not in compiled.bound_after:
                return None
            spec.append(("slot", compiled.slot_of[arg.name]))
        else:
            if not _vars_within(arg, compiled.bound_after):
                return None
            reads = frozenset(
                compiled.slot_of[name] for name in arg.iter_variables()
            )
            spec.append(
                ("fn", _compile_eval(arg, compiled.slot_of), reads)
            )
    return tuple(spec)


def row_spec_fn(spec):
    """Build ``slots -> ground value tuple`` from a row spec."""
    if all(entry[0] == "slot" for entry in spec):
        indexes = tuple(entry[1] for entry in spec)

        def project(slots):
            return tuple(slots[i] for i in indexes)

        return project

    def build(slots):
        return tuple(
            entry[1] if entry[0] == "const"
            else (slots[entry[1]] if entry[0] == "slot"
                  else entry[1](slots))
            for entry in spec
        )

    return build


def compile_row(args, compiled):
    """Compile argument terms to ``slots -> ground value tuple``.

    Used for rule heads and for trace premises.  Returns None exactly
    when :func:`compile_row_spec` does.
    """
    spec = compile_row_spec(args, compiled)
    if spec is None:
        return None
    return row_spec_fn(spec)


# -- bound queries (counting-engine call shape) ----------------------


def _bind_values(names, subst):
    """Legacy projection of a dict substitution onto ``names``."""
    values = []
    for name in names:
        term = resolve(Variable(name), subst)
        if not isinstance(term, Constant):
            raise ValueError("variable %s not bound" % name)
        values.append(term.value)
    return tuple(values)


class BoundQuery:
    """A body pre-compiled for repeated runs under positional bindings.

    ``in_names`` are preloaded from the ``values`` argument of
    :meth:`run` (duplicates allowed, later wins); each result is the
    projection of a body match onto ``out_names``.  Falls back to the
    legacy dict-based evaluator when the body or the projection lies
    outside the compiled fragment, preserving error behavior.
    """

    __slots__ = ("body", "in_names", "out_names", "compiled", "_loader",
                 "_extract", "_out_spec", "_emit", "_nin")

    def __init__(self, body, in_names, out_names):
        self.body = tuple(body)
        self.in_names = tuple(in_names)
        self.out_names = tuple(out_names)
        compiled = compile_body(self.body, self.in_names)
        loader = extract = out_spec = None
        if compiled is not None:
            try:
                loader = compiled.loader(self.in_names)
                extract = compiled.extractor(self.out_names)
            except KeyError:
                compiled = None
            else:
                if not set(self.out_names) <= compiled.bound_after:
                    compiled = None
                else:
                    out_spec = tuple(("slot", i) for i in extract)
        self.compiled = compiled
        self._loader = loader
        self._extract = extract
        self._out_spec = out_spec
        self._emit = (
            compiled.entry_collector(out_spec, loader)
            if compiled is not None else None
        )
        self._nin = len(loader) if loader is not None else 0

    def run(self, resolver, values, stats=None):
        """``out_names`` value tuples for each body match.

        Returns an iterable — an eagerly materialized list when the
        body has a generated collector (every consumer drains the
        result without interleaved writes, so eager evaluation is
        observationally identical and skips per-call generator
        frames), a lazy generator otherwise.
        """
        emit = self._emit
        if emit is not None and len(values) == self._nin:
            # Generated entry point: slot allocation and positional
            # loads happen inside.  Guarded on exact length so a
            # short/long values sequence keeps zip's truncation
            # semantics on the slow path below.
            return emit(resolver, values, stats)
        compiled = self.compiled
        if compiled is None:
            return self._run_legacy(resolver, values, stats)
        slots = compiled.make_slots()
        for slot, value in zip(self._loader, values):
            slots[slot] = value
        collect = compiled.collector(self._out_spec)
        if collect is not None:
            return collect(resolver, slots, stats)
        return self._run_execute(resolver, slots, stats)

    def bind(self, resolver):
        """A callable ``(values, stats=None)`` pinned to ``resolver``.

        The pass-level fast path: each scan's resolved relation and
        hoisted probe view persist *across calls* in a state list
        owned by the returned closure, so a caller issuing thousands
        of one-shot runs (the counting engines' node expansions) pays
        the resolver and ``probe_index`` round-trips once per binding
        instead of once per call.

        The caller contracts that ``resolver`` is a fixed ``(index,
        atom) -> relation`` mapping for the binding's lifetime —
        relations may gain rows (both view kinds are maintained in
        place by ``Relation.add``), but their *identity* must not
        change.  Discard the binding when that stops holding; the
        engines bind per evaluation run, over which it holds by
        construction.  Results and counter updates are identical to
        :meth:`run` with the same resolver.
        """
        compiled = self.compiled
        emit = (
            compiled.bound_collector(self._out_spec, self._loader)
            if compiled is not None else None
        )
        if emit is None:
            def run(values, stats=None,
                    _run=self.run, _resolver=resolver):
                return _run(_resolver, values, stats)
            return run
        state = [None] * emit._state_size
        state[0] = resolver

        def run(values, stats=None, _emit=emit, _state=state,
                _nin=self._nin, _slow=self.run, _resolver=resolver):
            if len(values) == _nin:
                return _emit(_state, values, stats)
            return _slow(_resolver, values, stats)
        return run

    def _run_execute(self, resolver, slots, stats):
        compiled = self.compiled
        extract = self._extract
        for result in compiled.execute(resolver, slots, stats):
            yield tuple(result[i] for i in extract)

    def _run_legacy(self, resolver, values, stats):
        from .join import evaluate_body

        subst = {}
        for name, value in zip(self.in_names, values):
            subst[name] = Constant(value)
        for result in evaluate_body(self.body, resolver, subst, stats):
            yield _bind_values(self.out_names, result)


#: Structural (body, in_names, out_names, backend flag) -> BoundQuery.
#: The counting engines rebuild their canonical rules on every run, so
#: per-engine caches recompile the same few query shapes over and over;
#: sharing across runs is safe because a BoundQuery is immutable after
#: construction.  The backend flag is part of the key so a query
#: compiled under one storage backend is never served under the other
#: (the differential tests flip the process-wide flag mid-process).
#: Bounded defensively: real programs have few shapes, fuzzed test
#: runs generate many.
_BOUND_QUERY_CACHE = {}
_BOUND_QUERY_LIMIT = 2048


def bound_query(body, in_names, out_names):
    """A shared :class:`BoundQuery`, cached on structural identity."""
    key = (tuple(body), tuple(in_names), tuple(out_names),
           columnar_enabled())
    try:
        query = _BOUND_QUERY_CACHE.get(key)
    except TypeError:
        # Unhashable terms (exotic constant values); build uncached.
        return BoundQuery(body, in_names, out_names)
    if query is None:
        if len(_BOUND_QUERY_CACHE) >= _BOUND_QUERY_LIMIT:
            _BOUND_QUERY_CACHE.clear()
        query = BoundQuery(body, in_names, out_names)
        _BOUND_QUERY_CACHE[key] = query
    return query


# -- compiled rules (semi-naive call shape) --------------------------


class CompiledRule:
    """A whole rule compiled for the semi-naive engine.

    ``compiled`` is the body (None → fall back to the legacy rule
    evaluator), ``head`` builds the ground head tuple from a match,
    ``head_spec`` is the row spec the batch emitters consume, and
    ``premises`` (built lazily, only when tracing) yields one ground
    value tuple per positive body atom in body order.
    """

    __slots__ = ("rule", "compiled", "head", "head_spec", "premises")

    def __init__(self, rule):
        self.rule = rule
        compiled = compile_body(rule.body)
        head = None
        head_spec = None
        premises = None
        if compiled is not None:
            head_spec = compile_row_spec(rule.head.args, compiled)
            if head_spec is None:
                compiled = None
            else:
                head = row_spec_fn(head_spec)
                fns = [
                    compile_row(atom.args, compiled)
                    for atom in rule.body_atoms()
                ]
                if all(fn is not None for fn in fns):
                    premises = tuple(fns)
        self.compiled = compiled
        self.head = head
        self.head_spec = head_spec if compiled is not None else None
        self.premises = premises

    @property
    def supported(self):
        return self.compiled is not None

    @property
    def traceable(self):
        return self.premises is not None


#: Structural (rule, backend flag) -> CompiledRule, mirroring
#: ``_BOUND_QUERY_CACHE``: the rewritings rebuild structurally equal
#: rule objects on every run, and a CompiledRule is immutable after
#: construction, so sharing across engines is safe.  Rule equality
#: ignores labels, which is fine — consumers read only structural
#: parts (``rule.head.key``) from the cached instance; labels always
#: come from the caller's own rule object.
_COMPILED_RULE_CACHE = {}
_COMPILED_RULE_LIMIT = 2048


def compiled_rule(rule, factory=None):
    """A shared :class:`CompiledRule`, cached on structural identity.

    ``factory`` is a test seam: callers expose a patchable module
    attribute and pass it through, and any factory other than the real
    :class:`CompiledRule` bypasses the cache entirely so patched
    instances never leak into (or out of) it.
    """
    if factory is not None and factory is not CompiledRule:
        return factory(rule)
    key = (rule, columnar_enabled())
    try:
        cached = _COMPILED_RULE_CACHE.get(key)
    except TypeError:
        # Unhashable constant values somewhere in the rule.
        return CompiledRule(rule)
    if cached is None:
        if len(_COMPILED_RULE_CACHE) >= _COMPILED_RULE_LIMIT:
            _COMPILED_RULE_CACHE.clear()
        cached = CompiledRule(rule)
        _COMPILED_RULE_CACHE[key] = cached
    return cached
