"""Greedy join ordering for rule bodies.

Bottom-up evaluation processes body literals left to right, so the
author's literal order *is* the join order.  The planner reorders each
body with the standard bound-first heuristic:

* a comparison or negation is placed as soon as its variables are
  bound (filters fire early);
* among the positive atoms, the one with the highest fraction of
  bound/constant argument positions is placed next (index lookups
  before scans), ties broken by the original order;
* binding comparisons (``is``/``in``) are placed once their right side
  is bound.

The transformation only permutes a conjunction, so the rule's meaning
is unchanged; safety is preserved because a literal is only placed
when the safety checker's conditions for it hold.  If no literal is
placeable (the rule was unsafe to begin with) the original order is
kept and the engine surfaces the usual safety/evaluation error.

The engine applies the planner when constructed with
``reorder=True``; the ablation benchmark
``benchmarks/bench_a1_join_order.py`` measures the effect.
"""

from ..datalog.atoms import Atom, Comparison, Negation
from ..datalog.rules import Rule
from ..datalog.terms import Variable


def _within(term_or_literal, bound):
    """True if every variable is already bound (no set allocation)."""
    return all(name in bound for name in term_or_literal.iter_variables())


def _placeable(lit, bound):
    if isinstance(lit, Atom):
        return True
    if isinstance(lit, Negation):
        return _within(lit, bound)
    if isinstance(lit, Comparison):
        right_ok = _within(lit.right, bound)
        if lit.op in ("is", "in"):
            left_ok = (
                isinstance(lit.left, Variable)
                or _within(lit.left, bound)
            )
            return right_ok and left_ok
        if lit.op == "=":
            left_free = lit.left.variables() - bound
            right_free = lit.right.variables() - bound
            if not left_free and not right_free:
                return True
            if not right_free and isinstance(lit.left, Variable):
                return True
            if not left_free and isinstance(lit.right, Variable):
                return True
            return False
        return _within(lit, bound)
    return False


def _atom_score(atom, bound):
    """Fraction of argument positions usable as index key."""
    if not atom.args:
        return 1.0
    usable = sum(
        1
        for arg in atom.args
        if arg.is_ground() or _within(arg, bound)
    )
    return usable / len(atom.args)


def reorder_body(rule, bound_head_vars=()):
    """Return ``rule`` with its body permuted bound-first."""
    bound = set(bound_head_vars)
    remaining = list(rule.body)
    ordered = []
    while remaining:
        # Filters first: any non-atom literal that is ready.
        placed = False
        for index, lit in enumerate(remaining):
            if not isinstance(lit, Atom) and _placeable(lit, bound):
                ordered.append(remaining.pop(index))
                if isinstance(lit, Comparison):
                    bound |= lit.variables()
                placed = True
                break
        if placed:
            continue
        # Then the most-bound positive atom.
        best_index = None
        best_score = -1.0
        for index, lit in enumerate(remaining):
            if not isinstance(lit, Atom):
                continue
            score = _atom_score(lit, bound)
            if score > best_score:
                best_score = score
                best_index = index
        if best_index is None:
            # Only unplaceable non-atoms remain: the rule is unsafe;
            # keep the original relative order and let evaluation
            # report it.
            ordered.extend(remaining)
            break
        atom = remaining.pop(best_index)
        ordered.append(atom)
        bound |= atom.variables()
    return Rule(rule.head, tuple(ordered), label=rule.label)


def reorder_program_rules(rules, bound_head_vars=()):
    """Reorder every rule body in an iterable of rules."""
    return tuple(
        reorder_body(rule, bound_head_vars) for rule in rules
    )
