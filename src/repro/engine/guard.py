"""Resource governance for evaluation: budgets and cancellation.

The counting-family methods have hard applicability preconditions and
known divergence modes on cyclic data; a misclassified query must never
hang the engine or die with partial state.  A :class:`ResourceBudget`
bounds one evaluation along four axes:

* ``timeout`` — a wall-clock deadline in seconds;
* ``max_facts`` — a cap on distinct derived facts;
* ``max_rounds`` — a cap on budget checkpoints (fixpoint rounds for the
  semi-naive engine, frontier pops for the dedicated evaluators);
* ``token`` — a :class:`CancellationToken` another thread (or a test)
  can trip to stop evaluation cooperatively.

Engines call :meth:`ResourceBudget.check` at *round boundaries* — before
each semi-naive round, per node expansion in the counting DFS, per
state pop in the answer phase, per QSQ sweep — so a budget fires within
one round of being exceeded, never mid-tuple.  The raised errors are
the typed :class:`~repro.errors.BudgetExceededError` subclasses and
carry the partial :class:`~repro.engine.instrumentation.EvalStats`, so
callers see exactly how far evaluation got before the abort.

Budgets are *single-use*: the deadline clock starts at the first check
(or an explicit :meth:`start`).  The resilient runner
(:mod:`repro.exec.resilient`) therefore builds a fresh budget per
strategy attempt rather than sharing one across the chain.
"""

import threading
import time

from ..errors import (
    DeadlineExceeded,
    EvaluationCancelled,
    FactBudgetExceeded,
    RoundBudgetExceeded,
)


class CancellationToken:
    """Cooperative cancellation flag shared between caller and engine.

    Backed by a :class:`threading.Event`, so a flip on one thread is
    immediately visible to an engine checking the token on another —
    the serving layer (:mod:`repro.serve`) cancels straggling workers
    this way during drain.  The flag is monotonic: once cancelled, a
    token never goes live again.
    """

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def cancel(self):
        """Request cancellation; the next budget check raises."""
        self._event.set()

    @property
    def cancelled(self):
        return self._event.is_set()

    def wait(self, timeout=None):
        """Block until cancelled or ``timeout`` elapses; returns the flag."""
        return self._event.wait(timeout)

    def __repr__(self):
        return "CancellationToken(%s)" % (
            "cancelled" if self.cancelled else "live"
        )


class ResourceBudget:
    """Limits for one evaluation run; raises typed errors when hit.

    Parameters
    ----------
    timeout : float or None
        Wall-clock seconds allowed from :meth:`start` (auto-started by
        the first :meth:`check`).
    max_facts : int or None
        Maximum ``stats.facts_derived`` tolerated.
    max_rounds : int or None
        Maximum number of :meth:`check` calls (i.e. round boundaries)
        tolerated.
    token : :class:`CancellationToken` or None
        Cooperative cancellation flag.
    clock : callable returning seconds
        Injectable for deterministic tests; defaults to
        :func:`time.monotonic`.
    """

    __slots__ = ("timeout", "max_facts", "max_rounds", "token",
                 "_clock", "_started", "_deadline", "rounds")

    def __init__(self, timeout=None, max_facts=None, max_rounds=None,
                 token=None, clock=None):
        if timeout is not None and timeout < 0:
            raise ValueError("timeout must be non-negative")
        if max_facts is not None and max_facts < 0:
            raise ValueError("max_facts must be non-negative")
        if max_rounds is not None and max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.timeout = timeout
        self.max_facts = max_facts
        self.max_rounds = max_rounds
        self.token = token
        self._clock = clock if clock is not None else time.monotonic
        self._started = None
        self._deadline = None
        #: Budget checkpoints passed so far.
        self.rounds = 0

    def is_unlimited(self):
        """True when no limit is configured (checks can be skipped)."""
        return (
            self.timeout is None
            and self.max_facts is None
            and self.max_rounds is None
            and self.token is None
        )

    def start(self):
        """Start the wall clock now; idempotent.  Returns ``self``."""
        if self._started is None:
            self._started = self._clock()
            if self.timeout is not None:
                self._deadline = self._started + self.timeout
        return self

    def elapsed(self):
        """Wall-clock seconds since :meth:`start` (0.0 if not started)."""
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def remaining(self):
        """Seconds left before the deadline, or ``None`` without one.

        Clamped at 0.0: an overrun budget has no time left, not
        negative time — callers feed this into ``child()`` timeouts
        and sleep computations, where a negative value would either
        raise or, worse, be interpreted as "no limit".
        """
        if self.timeout is None:
            return None
        self.start()
        return max(0.0, self._deadline - self._clock())

    def expired(self):
        """Non-raising deadline probe.

        Mirrors :meth:`check` exactly: probing starts the clock (so a
        budget with a timeout reports expiry relative to first use
        instead of always ``False`` before an explicit ``start``), and
        the comparison is the same strict one ``check`` uses — at the
        exact deadline instant the budget is not yet expired on either
        path.
        """
        if self.timeout is None:
            return False
        self.start()
        return self._clock() > self._deadline

    def usage(self, stats=None):
        """What this budget's run actually consumed, for quota charging.

        Returns ``{"seconds", "rounds", "facts"}`` — wall-clock seconds
        since :meth:`start`, budget checkpoints passed, and (when the
        engine's ``stats`` are supplied) distinct facts derived.  The
        tenancy layer (:mod:`repro.tenancy`) charges these against a
        tenant's cumulative resource pools after each attempt, whether
        it completed or aborted.
        """
        return {
            "seconds": self.elapsed(),
            "rounds": self.rounds,
            "facts": 0 if stats is None else stats.facts_derived,
        }

    def child(self, timeout=None, max_facts=None, max_rounds=None,
              token=None):
        """Derive a fresh budget bounded by this budget's remaining time.

        Budgets are single-use, but a request that retries (or fans out
        into per-attempt budgets) must not be granted a fresh deadline
        each time: the child's ``timeout`` is clamped to the parent's
        :meth:`remaining` wall-clock allowance, so the *request*
        deadline propagates through every derived attempt.  Calling
        :meth:`child` starts the parent clock (deriving "remaining"
        implies the request is in flight).

        ``max_facts`` / ``max_rounds`` / ``token`` default to the
        parent's values; pass explicit ones to override.  The parent's
        injectable clock is always inherited, so tests driving a fake
        clock see the same time in every generation.
        """
        remaining = self.remaining()
        if remaining is not None:
            remaining = max(0.0, remaining)
            timeout = remaining if timeout is None \
                else min(timeout, remaining)
        return ResourceBudget(
            timeout=timeout,
            max_facts=self.max_facts if max_facts is None else max_facts,
            max_rounds=self.max_rounds if max_rounds is None
            else max_rounds,
            token=self.token if token is None else token,
            clock=self._clock,
        )

    def check(self, stats=None):
        """Raise a typed budget error if any limit is exhausted.

        Called at round boundaries; ``stats`` (the engine's partial
        :class:`EvalStats`) is attached to the error so the caller can
        inspect how much work completed before the abort.
        """
        self.start()
        self.rounds += 1
        if self.token is not None and self.token.cancelled:
            raise EvaluationCancelled(
                "evaluation cancelled by caller after %.4fs"
                % self.elapsed(),
                stats=stats, elapsed=self.elapsed(),
            )
        if self._deadline is not None and self._clock() > self._deadline:
            raise DeadlineExceeded(
                "wall-clock deadline of %.4fs exceeded (%.4fs elapsed)"
                % (self.timeout, self.elapsed()),
                stats=stats, elapsed=self.elapsed(),
            )
        if (
            self.max_facts is not None
            and stats is not None
            and stats.facts_derived > self.max_facts
        ):
            raise FactBudgetExceeded(
                "derived-fact budget of %d exceeded (%d derived)"
                % (self.max_facts, stats.facts_derived),
                stats=stats, elapsed=self.elapsed(),
            )
        if self.max_rounds is not None and self.rounds > self.max_rounds:
            raise RoundBudgetExceeded(
                "round budget of %d exceeded" % self.max_rounds,
                stats=stats, elapsed=self.elapsed(),
            )

    def __repr__(self):
        limits = []
        if self.timeout is not None:
            limits.append("timeout=%gs" % self.timeout)
        if self.max_facts is not None:
            limits.append("max_facts=%d" % self.max_facts)
        if self.max_rounds is not None:
            limits.append("max_rounds=%d" % self.max_rounds)
        if self.token is not None:
            limits.append("token=%r" % self.token)
        return "ResourceBudget(%s)" % (
            ", ".join(limits) if limits else "unlimited"
        )
