"""Column-major integer-id storage for relations.

The paper's counting methods assume tuple access is "a direct access to
the memory"; the biggest remaining gap between that model and this
engine was row storage — Python tuples of interned objects, hashed
object-at-a-time.  This module provides the dense half of the storage
layer: every relation can mirror its rows as parallel ``array('q')``
columns of **intern-pool ids** (see
:meth:`~repro.engine.interning.InternPool.ident`).  Planning and the
value-level join semantics stay exactly as they were; the id columns
are a parallel, losslessly decodable view used for

* O(rows) machine-word serialization (:meth:`ColumnStore.to_bytes`) —
  the substrate for shard exchange and mmap persistence (ROADMAP items
  2 and 4);
* columnar prefix pinning: an epoch snapshot of a relation slices its
  column arrays instead of re-encoding rows;
* vectorized scans over a single column without touching row objects
  (:meth:`ColumnStore.matching`), with an optional numpy fast path.

Feature flags
-------------

``REPRO_COLUMNAR`` (default on) selects the columnar backend: id
columns are maintained on database relations and the compiled join
executor uses the generated nested-loop/vectorized-emit form
(:mod:`repro.engine.codegen`).  Setting ``REPRO_COLUMNAR=0`` restores
the legacy row-at-a-time storage and the interpreted slot-array
executor — kept as an ablation and as the differential-testing
baseline; both backends are required to produce byte-identical rendered
answers and identical work counters.

``REPRO_NUMPY`` (default off) additionally routes
:meth:`ColumnStore.matching` through numpy when it is importable.  The
flag is off by default so the default build has zero third-party
dependencies; enabling it never changes results, only the scan speed.
"""

import os
from array import array

#: Module-level backend switch, initialized from the environment once.
_COLUMNAR = os.environ.get("REPRO_COLUMNAR", "1") != "0"

_NUMPY_WANTED = os.environ.get("REPRO_NUMPY", "0") != "0"
_numpy = None
if _NUMPY_WANTED:  # pragma: no cover - depends on the environment
    try:
        import numpy as _numpy
    except ImportError:
        _numpy = None


def columnar_enabled():
    """True when the columnar backend is selected."""
    return _COLUMNAR


def set_columnar(enabled):
    """Flip the backend switch; returns the previous value.

    Only relations and compiled bodies *created after* the flip observe
    the new value — existing objects keep the backend they were built
    with, which is what lets the differential suite hold one relation
    per backend side by side.
    """
    global _COLUMNAR
    previous = _COLUMNAR
    _COLUMNAR = bool(enabled)
    return previous


class use_backend:
    """Context manager pinning the backend flag for a ``with`` block."""

    __slots__ = ("_enabled", "_previous")

    def __init__(self, enabled):
        self._enabled = bool(enabled)
        self._previous = None

    def __enter__(self):
        self._previous = set_columnar(self._enabled)
        return self

    def __exit__(self, exc_type, exc, tb):
        set_columnar(self._previous)
        return False


def numpy_active():
    """True when the optional numpy fast path is available and enabled."""
    return _numpy is not None


class ColumnStore:
    """Parallel ``array('q')`` id columns for one relation.

    Row *ordinals* (0-based insertion positions) are the row identity;
    the store never reorders or deletes, matching the append-only
    insertion log of :class:`~repro.engine.relation.Relation`.  All ids
    are intern-pool idents, so two stores over the same pool can be
    compared, merged, or shipped between processes as raw bytes.
    """

    __slots__ = ("arity", "_columns",)

    def __init__(self, arity, columns=None):
        if arity < 0:
            raise ValueError("arity must be non-negative, got %d" % arity)
        self.arity = arity
        if columns is None:
            self._columns = tuple(array("q") for _ in range(arity))
        else:
            columns = tuple(columns)
            if len(columns) != arity:
                raise ValueError(
                    "expected %d columns, got %d" % (arity, len(columns))
                )
            self._columns = columns

    def __len__(self):
        return len(self._columns[0]) if self._columns else 0

    def append(self, ids):
        """Append one id-encoded row (one id per column)."""
        for column, ident in zip(self._columns, ids):
            column.append(ident)

    def column(self, position):
        """The id array for ``position`` — the live array, do not mutate."""
        return self._columns[position]

    def row(self, ordinal):
        """The id tuple stored at ``ordinal``."""
        return tuple(column[ordinal] for column in self._columns)

    def prefix(self, count):
        """A new store holding the first ``count`` rows.

        Column slicing is a C-level copy of machine words — this is
        what makes epoch pinning of a columnar relation O(rows) memcpy
        instead of a per-row re-encode.
        """
        if count < 0 or count > len(self):
            raise ValueError(
                "cannot take a %d-row prefix of %d rows"
                % (count, len(self))
            )
        return ColumnStore(
            self.arity,
            tuple(column[:count] for column in self._columns),
        )

    def copy(self):
        return ColumnStore(
            self.arity, tuple(array("q", c) for c in self._columns)
        )

    def matching(self, positions, ids):
        """Row ordinals whose ``positions`` hold exactly ``ids``.

        The vectorized scan primitive: each bound column is compared
        wholesale.  With numpy enabled the comparison runs as a fused
        boolean mask; the portable path walks the first bound column at
        C speed and verifies the remaining positions per candidate.
        """
        if not positions:
            return list(range(len(self)))
        if _numpy is not None:  # pragma: no cover - optional fast path
            mask = None
            for position, ident in zip(positions, ids):
                column = _numpy.frombuffer(
                    self._columns[position], dtype=_numpy.int64
                )
                this = column == ident
                mask = this if mask is None else (mask & this)
            return _numpy.nonzero(mask)[0].tolist()
        first, rest = positions[0], positions[1:]
        column = self._columns[first]
        target = ids[0]
        ordinals = []
        start = 0
        while True:
            try:
                ordinal = column.index(target, start)
            except ValueError:
                break
            start = ordinal + 1
            ok = True
            for position, ident in zip(rest, ids[1:]):
                if self._columns[position][ordinal] != ident:
                    ok = False
                    break
            if ok:
                ordinals.append(ordinal)
        return ordinals

    def nbytes(self):
        """Total machine bytes held by the columns."""
        return sum(len(c) * c.itemsize for c in self._columns)

    def to_bytes(self):
        """Serialize as raw little-endian machine words.

        Layout: 8-byte arity, 8-byte row count, then each column's
        words back to back.  No per-row framing — a deserializer
        reslices by count, which is what makes shard serialization
        proportional to raw data size instead of row count times
        object overhead.
        """
        import struct
        import sys

        header = struct.pack("<qq", self.arity, len(self))
        parts = [header]
        for column in self._columns:
            if sys.byteorder == "big":  # pragma: no cover
                column = array("q", column)
                column.byteswap()
            parts.append(column.tobytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data):
        """Rebuild a store serialized by :meth:`to_bytes`."""
        import struct
        import sys

        arity, count = struct.unpack_from("<qq", data, 0)
        if arity < 0 or count < 0:
            raise ValueError("corrupt column store header")
        word = array("q").itemsize
        expected = 16 + arity * count * word
        if len(data) != expected:
            raise ValueError(
                "corrupt column store: expected %d bytes, got %d"
                % (expected, len(data))
            )
        columns = []
        offset = 16
        for _ in range(arity):
            column = array("q")
            column.frombytes(data[offset:offset + count * word])
            if sys.byteorder == "big":  # pragma: no cover
                column.byteswap()
            columns.append(column)
            offset += count * word
        return cls(arity, tuple(columns))

    def __eq__(self, other):
        if not isinstance(other, ColumnStore):
            return NotImplemented
        return (self.arity == other.arity
                and self._columns == other._columns)

    def __repr__(self):
        return "ColumnStore(arity=%d, rows=%d, %d bytes)" % (
            self.arity, len(self), self.nbytes()
        )
