"""Bottom-up evaluation engine: relations, database, stratified
semi-naive fixpoint and instrumentation."""

from .builtins import eval_comparison
from .compile import BoundQuery, CompiledBody, CompiledRule, compile_body
from .database import Database, DatabaseSnapshot
from .faults import FaultInjector, InjectedFault
from .fixpoint import QueryResult, evaluate_query, goal_filter, project_free
from .guard import CancellationToken, ResourceBudget
from .instrumentation import EvalStats
from .interning import InternPool
from .join import evaluate_body, evaluate_rule, ground_head, match_atom
from .planner import reorder_body, reorder_program_rules
from .relation import EmptyRelation, Relation, WILDCARD
from .seminaive import SemiNaiveEngine, evaluate_program
from .stratify import check_stratified, is_stratified
from .tracing import DerivationNode, DerivationTrace

__all__ = [
    "BoundQuery",
    "CancellationToken",
    "CompiledBody",
    "CompiledRule",
    "Database",
    "DatabaseSnapshot",
    "FaultInjector",
    "InjectedFault",
    "InternPool",
    "ResourceBudget",
    "compile_body",
    "DerivationNode",
    "DerivationTrace",
    "EmptyRelation",
    "EvalStats",
    "reorder_body",
    "reorder_program_rules",
    "QueryResult",
    "Relation",
    "SemiNaiveEngine",
    "WILDCARD",
    "check_stratified",
    "eval_comparison",
    "evaluate_body",
    "evaluate_program",
    "evaluate_query",
    "evaluate_rule",
    "goal_filter",
    "ground_head",
    "is_stratified",
    "match_atom",
    "project_free",
]
