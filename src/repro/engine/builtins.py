"""Evaluation of built-in comparison literals.

Given a substitution, :func:`eval_comparison` yields the (possibly
extended) substitutions under which the comparison holds:

* test operators (``= != < <= > >=``) succeed or fail on ground values;
  ``=`` additionally binds a still-unbound plain-variable side;
* ``X is Expr`` evaluates the arithmetic expression and binds/tests
  ``X``;
* ``X in S`` enumerates the members of a bound set/list value ``S`` and
  binds ``X`` to each (the cyclic counting method's ``A in T`` goals).
"""

from ..datalog.terms import Constant
from ..datalog.unify import resolve, unify
from ..errors import EvaluationError


def _ordered(op, a, b):
    try:
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    except TypeError:
        raise EvaluationError(
            "cannot order values %r and %r" % (a, b)
        ) from None
    raise EvaluationError("unknown ordering operator %r" % op)


def eval_comparison(comparison, subst):
    """Yield substitutions under which ``comparison`` holds."""
    op = comparison.op
    left = resolve(comparison.left, subst)
    right = resolve(comparison.right, subst)
    if op in ("is", "in"):
        if not isinstance(right, Constant):
            raise EvaluationError(
                "right side of %r is not ground: %r" % (op, right)
            )
        if op == "is":
            extended = unify(left, right, subst)
            if extended is not None:
                yield extended
            return
        members = right.value
        if isinstance(members, (tuple, frozenset, set)):
            for member in members:
                extended = unify(left, Constant(member), subst)
                if extended is not None:
                    yield extended
            return
        raise EvaluationError(
            "right side of 'in' is not a collection: %r" % (members,)
        )
    if op == "=":
        extended = unify(left, right, subst)
        if extended is not None:
            yield extended
        return
    if not isinstance(left, Constant) or not isinstance(right, Constant):
        raise EvaluationError(
            "comparison %s on non-ground terms %r, %r" % (op, left, right)
        )
    a, b = left.value, right.value
    if op == "!=":
        if a != b:
            yield subst
        return
    if _ordered(op, a, b):
        yield subst
