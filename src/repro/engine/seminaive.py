"""Stratified semi-naive bottom-up evaluation.

Programs are evaluated clique by clique in topological order (Section 2
of the paper: "the computation follows the topological order").  Inside
a recursive clique the classical semi-naive discipline applies: after an
initial naive round, each subsequent round evaluates every recursive
rule once per occurrence of a same-clique body atom, with that
occurrence restricted to the facts newly derived in the previous round.

Facts derived for lower cliques are visible to higher ones exactly like
database facts, matching the paper's evaluation model.
"""

from time import perf_counter

from ..datalog.analysis import ProgramAnalysis
from ..datalog.atoms import Atom
from ..errors import EvaluationError
from . import faults
from .compile import CompiledRule, compiled_rule
from .instrumentation import EvalStats
from .join import evaluate_body, evaluate_rule, ground_atom, ground_head
from .relation import EmptyRelation, Relation
from .stratify import check_stratified


class SemiNaiveEngine:
    """Evaluator holding derived relations for one program run."""

    def __init__(self, program, db, stats=None, max_iterations=None,
                 reorder=False, seminaive=True, trace=None, budget=None,
                 compiled_cache=None):
        if reorder:
            from ..datalog.rules import Program
            from .planner import reorder_program_rules

            program = Program(reorder_program_rules(program.rules))
        self.program = program
        self.db = db
        self.stats = stats if stats is not None else EvalStats()
        self.max_iterations = max_iterations
        #: Optional :class:`~repro.engine.guard.ResourceBudget` checked
        #: at every round boundary (never mid-round), so deadlines and
        #: fact budgets fire within one round of being exceeded.
        self.budget = budget
        #: With ``seminaive=False`` recursive rounds re-evaluate every
        #: rule against the full relations (the textbook naive
        #: fixpoint) — kept as an ablation baseline.
        self.seminaive = seminaive
        #: Optional :class:`~repro.engine.tracing.DerivationTrace`;
        #: when set, the first derivation of every fact is recorded.
        self.trace = trace
        self.analysis = ProgramAnalysis(program)
        check_stratified(self.analysis)
        #: Rule → :class:`CompiledRule` cache, filled on first use.
        #: Rules whose bodies lie outside the compiled fragment keep
        #: ``supported=False`` and run through the legacy evaluator.
        #: Callers that evaluate the same rule objects repeatedly (the
        #: prepared-query layer) may pass a pre-populated
        #: ``compiled_cache`` dict (``id(rule) -> CompiledRule``) so
        #: compilation happens once per query form instead of once per
        #: engine instance.
        self._compiled = compiled_cache if compiled_cache is not None \
            else {}
        self.derived = {}
        #: Program facts for predicates with no rules are base facts
        #: (the paper's definition); they overlay the database.
        self._overlay = {}
        self._load_program_facts()

    # -- relation plumbing ------------------------------------------

    def _load_program_facts(self):
        for key, values in self.program.facts():
            if key in self.analysis.derived:
                self._relation(key).add(values)
            else:
                overlay = self._overlay.get(key)
                if overlay is None:
                    base = self.db.get(key)
                    overlay = Relation(key[0], key[1])
                    for row in base:
                        overlay.add(row)
                    self._overlay[key] = overlay
                overlay.add(values)

    def _relation(self, key):
        rel = self.derived.get(key)
        if rel is None:
            rel = Relation(key[0], key[1])
            self.derived[key] = rel
        return rel

    def full(self, key):
        """The current full relation for ``key`` (derived or base)."""
        if key in self.analysis.derived:
            return self._relation(key)
        overlay = self._overlay.get(key)
        if overlay is not None:
            return overlay
        return self.db.get(key)

    def _full_resolver(self, _index, atom):
        return self.full(atom.key)

    def _delta_resolver(self, deltas, target_index):
        def resolver(index, atom):
            if index == target_index:
                return deltas.get(
                    atom.key, EmptyRelation(atom.key[0], atom.key[1])
                )
            return self.full(atom.key)

        return resolver

    # -- evaluation ---------------------------------------------------

    def run(self):
        """Evaluate the whole program; returns the derived relations."""
        for clique in self.analysis.components:
            self._evaluate_clique(clique)
        return self.derived

    def relation(self, key):
        """Post-run lookup: derived, overlay or database relation."""
        return self.full(key)

    def _emit(self, key, rows, delta):
        relation = self._relation(key)
        for row in rows:
            if relation.add(row):
                self.stats.facts_derived += 1
                delta.setdefault(
                    key, Relation(key[0], key[1])
                ).add(row)
            else:
                self.stats.facts_duplicate += 1

    def _compiled_rule(self, rule):
        compiled = self._compiled.get(id(rule))
        if compiled is None:
            # The module-global CompiledRule is a test seam (patched to
            # force the legacy path); the shared cache steps aside for
            # any patched factory.
            compiled = compiled_rule(rule, factory=CompiledRule)
            self._compiled[id(rule)] = compiled
        return compiled

    def _apply_rule(self, rule, resolver, delta):
        """Run one rule pass, optionally recording derivations."""
        stats = self.stats
        started = perf_counter()
        derived_before = stats.facts_derived
        compiled = self._compiled_rule(rule)
        if self.trace is None:
            if compiled.supported:
                self._apply_compiled(compiled, resolver, delta)
            else:
                rows = evaluate_rule(rule, resolver, stats)
                self._emit(rule.head.key, rows, delta)
        else:
            self._apply_traced(rule, compiled, resolver, delta)
        stats.note_rule(
            rule.label,
            perf_counter() - started,
            stats.facts_derived - derived_before,
        )

    def _apply_compiled(self, compiled, resolver, delta):
        """Set-at-a-time rule pass: batched probes, direct tuple writes.

        When the body has a vectorized emitter (columnar backend on,
        innermost step a plain scan) the head projection happens inside
        a generated list comprehension, one whole batch per innermost
        probe; each batch is drained into the relation before the next
        is produced, so derivations become visible to subsequent probes
        exactly as they did row at a time.
        """
        stats = self.stats
        stats.rule_firings += 1
        key = compiled.rule.head.key
        relation = self._relation(key)
        body = compiled.compiled
        delta_rel = None
        emit = body.emitter(compiled.head_spec)
        if emit is not None:
            for batch in emit(resolver, body.make_slots(), stats):
                for row in batch:
                    if relation.add(row):
                        stats.facts_derived += 1
                        if delta_rel is None:
                            delta_rel = delta.setdefault(
                                key, Relation(key[0], key[1])
                            )
                        delta_rel.add(row)
                    else:
                        stats.facts_duplicate += 1
            return
        head = compiled.head
        for slots in body.execute(resolver, body.make_slots(), stats):
            row = head(slots)
            if relation.add(row):
                stats.facts_derived += 1
                if delta_rel is None:
                    delta_rel = delta.setdefault(
                        key, Relation(key[0], key[1])
                    )
                delta_rel.add(row)
            else:
                stats.facts_duplicate += 1

    def _apply_traced(self, rule, compiled, resolver, delta):
        """Rule pass recording the first derivation of every fact."""
        stats = self.stats
        stats.rule_firings += 1
        key = rule.head.key
        relation = self._relation(key)
        if compiled.supported and compiled.traceable:
            premise_keys = tuple(
                atom.key for atom in rule.body_atoms()
            )
            body = compiled.compiled
            head = compiled.head
            for slots in body.execute(resolver, body.make_slots(), stats):
                row = head(slots)
                if relation.add(row):
                    stats.facts_derived += 1
                    delta.setdefault(key, Relation(key[0], key[1])).add(row)
                    premises = tuple(
                        (pkey, fn(slots))
                        for pkey, fn in zip(premise_keys, compiled.premises)
                    )
                    self.trace.record(key, row, rule.label, premises)
                else:
                    stats.facts_duplicate += 1
            return
        for subst in evaluate_body(rule.body, resolver, {}, stats):
            row = ground_head(rule.head, subst)
            if relation.add(row):
                stats.facts_derived += 1
                delta.setdefault(key, Relation(key[0], key[1])).add(row)
                premises = tuple(
                    (atom.key, ground_atom(atom, subst))
                    for atom in rule.body_atoms()
                )
                self.trace.record(key, row, rule.label, premises)
            else:
                stats.facts_duplicate += 1

    def _round_boundary(self, rounds):
        """Pre-round checkpoint: iteration cap, budget, fault hook.

        Runs *before* the round it guards, so ``max_iterations=N``
        executes at most N rounds per clique and budget errors fire
        before — never after — an over-limit round would start.
        """
        if (
            self.max_iterations is not None
            and rounds >= self.max_iterations
        ):
            raise EvaluationError(
                "fixpoint did not converge within %d iterations"
                % self.max_iterations
            )
        if self.budget is not None:
            self.budget.check(self.stats)
        faults.fire("round", self.stats)

    def _evaluate_clique(self, clique):
        delta = {}
        rounds = 0
        self._round_boundary(rounds)
        # Initial naive round over every rule of the clique.
        for rule in clique.rules:
            if rule.is_fact():
                continue
            self._apply_rule(rule, self._full_resolver, delta)
        rounds += 1
        self.stats.iterations += 1
        if not clique.is_recursive():
            return
        # Recursive occurrences: (rule, body index) pairs to drive with
        # the delta relation.
        # Positive atoms only: a Negation wrapping a same-clique atom
        # must never become a delta-driven occurrence (stratification
        # already rejects such programs at construction time), and duck
        # typing on ``.key`` would silently misclassify literal kinds.
        occurrences = []
        for rule in clique.recursive_rules:
            for index, lit in enumerate(rule.body):
                if isinstance(lit, Atom) and lit.key in clique.predicates:
                    occurrences.append((rule, index))
        while delta:
            self._round_boundary(rounds)
            rounds += 1
            self.stats.iterations += 1
            new_delta = {}
            if self.seminaive:
                for rule, index in occurrences:
                    resolver = self._delta_resolver(delta, index)
                    self._apply_rule(rule, resolver, new_delta)
            else:
                for rule in clique.recursive_rules:
                    self._apply_rule(
                        rule, self._full_resolver, new_delta
                    )
            delta = new_delta


def evaluate_program(program, db, stats=None, max_iterations=None,
                     reorder=False, budget=None):
    """Evaluate ``program`` over ``db``; returns {key: Relation}."""
    engine = SemiNaiveEngine(
        program, db, stats=stats, max_iterations=max_iterations,
        reorder=reorder, budget=budget,
    )
    return engine.run()
