"""The extensional database: a mapping from predicate keys to relations.

Facts can be loaded three ways:

* programmatically with :meth:`Database.add_fact`;
* from an iterable of ``(name, values)`` pairs with :meth:`add_facts`;
* from program text containing ground facts via :meth:`Database.from_text`.

The database only ever stores plain Python values (strings, ints,
tuples, frozensets) — terms are normalized before insertion.

Concurrency: mutators (:meth:`Database.add_fact` / :meth:`add_facts` /
:meth:`relation`) serialize on an internal lock, and concurrent readers
take :meth:`Database.snapshot` — a cheap epoch-pinned read view whose
relations never change, so a reader can never observe a half-applied
``add_facts`` batch.  The snapshot is lazy: pinning records only the
per-relation epochs (taken under the mutation lock); row sets
materialize from each relation's insertion log on first access.
"""

import os
import threading

from ..datalog.parser import parse_program
from .interning import InternPool
from .relation import EmptyRelation, Relation


def fresh_lineage():
    """A new lineage token: a short random hex string.

    Lineage identifies one logical mutation *history*.  Two databases
    share a lineage only when one is provably a view or a faithful
    replay of the other (snapshots, durable recovery) — then an equal
    epoch table implies equal contents, which is what lets the answer
    cache (:mod:`repro.exec.cache`) trust entries across instances.
    Everything else (fresh databases, ``copy()`` clones whose futures
    may diverge) gets its own token.
    """
    return os.urandom(12).hex()


class Database:
    """A collection of named base relations.

    Constant values are interned on insertion (see
    :mod:`repro.engine.interning`): equal values share one canonical
    instance, which makes the join engine's hash probes and equality
    checks cheap, and every constant gets a stable integer id available
    through :attr:`intern_pool` for encoded strategies.  Interning never
    changes what a relation *contains* — canonical instances are ``==``
    to the originals.
    """

    def __init__(self):
        self._relations = {}
        self.intern_pool = InternPool()
        #: Identity of this database's mutation history (see
        #: :func:`fresh_lineage`).  Snapshots inherit it; durable
        #: recovery restores it from disk, so a recovered database can
        #: keep serving a warm answer cache.
        self.lineage = fresh_lineage()
        #: Serializes mutations against snapshot pinning.  Reads do not
        #: take it — they either race benignly (single monotone facts)
        #: or go through an epoch-pinned :meth:`snapshot`.
        self._lock = threading.RLock()

    @classmethod
    def from_facts(cls, facts):
        """Build a database from ``(predicate_name, values_tuple)`` pairs."""
        db = cls()
        db.add_facts(facts)
        return db

    @classmethod
    def from_text(cls, text):
        """Build a database from program text of ground facts."""
        program = parse_program(text)
        db = cls()
        for rule in program:
            if not rule.is_fact():
                raise ValueError(
                    "database text contains a rule: %r" % (rule,)
                )
            if not rule.head.is_ground():
                raise ValueError(
                    "database fact is not ground: %r" % (rule.head,)
                )
        for key, values in program.facts():
            db.relation(key[0], key[1]).add(
                db.intern_pool.intern_row(values)
            )
        return db

    def add_fact(self, name, *values):
        """Insert one fact, e.g. ``db.add_fact("up", "a", "b")``."""
        with self._lock:
            self.relation(name, len(values)).add(
                self.intern_pool.intern_row(values)
            )

    def add_facts(self, facts):
        """Insert many facts as one atomic batch.

        The whole batch runs under the mutation lock, so an epoch
        snapshot taken concurrently sees either none of it or all of it
        — never a half-applied batch.
        """
        with self._lock:
            intern_row = self.intern_pool.intern_row
            for name, values in facts:
                self.relation(name, len(values)).add(
                    intern_row(tuple(values))
                )

    def relation(self, name, arity):
        """The relation for ``name/arity``, created empty on first use."""
        key = (name, arity)
        rel = self._relations.get(key)
        if rel is None:
            with self._lock:
                rel = self._relations.get(key)
                if rel is None:
                    # Base relations carry the intern pool so the
                    # columnar backend (when enabled) can mirror rows
                    # into id columns; see repro.engine.columnar.
                    rel = Relation(name, arity, pool=self.intern_pool)
                    self._relations[key] = rel
        return rel

    def get(self, key):
        """The relation for ``key`` or an empty stand-in."""
        rel = self._relations.get(key)
        if rel is None:
            return EmptyRelation(key[0], key[1])
        return rel

    def epoch_of(self, key):
        """The mutation epoch of the relation for ``key`` (0 if absent).

        Relation epochs are monotone insertion counters (see
        :attr:`~repro.engine.relation.Relation.epoch`); a relation that
        does not exist yet reports epoch 0, the same value it will
        report right up until its first fact arrives.
        """
        rel = self._relations.get(key)
        return 0 if rel is None else rel.epoch

    def epochs(self, keys):
        """Epoch snapshot for ``keys``, in the given order.

        The returned tuple is the invalidation fingerprint used by the
        cross-query caches: two snapshots over the same keys are equal
        exactly when none of those relations gained a fact in between.
        """
        return tuple(self.epoch_of(key) for key in keys)

    def keys(self):
        return set(self._relations)

    def predicates(self):
        """Predicate keys that actually hold tuples."""
        return {k for k, rel in self._relations.items() if len(rel)}

    def total_facts(self):
        return sum(len(rel) for rel in self._relations.values())

    def constants(self, keys=None):
        """All constant values appearing in the given relations.

        With ``keys=None`` every relation contributes.  Used to bound
        the classical counting index for divergence detection.
        """
        values = set()
        relations = (
            self._relations.values()
            if keys is None
            else [self.get(key) for key in keys]
        )
        for rel in relations:
            for row in rel:
                values.update(row)
        return values

    def copy(self):
        clone = Database()
        # The pool is append-only, so sharing it keeps interned ids
        # stable across snapshots at zero copying cost.  The lock keeps
        # a concurrent add_facts batch from landing half inside the
        # copy.
        clone.intern_pool = self.intern_pool
        with self._lock:
            for key, rel in self._relations.items():
                clone._relations[key] = rel.copy()
        return clone

    def snapshot(self):
        """A cheap epoch-pinned read view of this database.

        Pinning records each relation's current epoch under the
        mutation lock — O(#relations), no row copying — and the
        returned :class:`DatabaseSnapshot` serves every read from that
        frozen point: rows added afterwards (or whole new relations)
        are invisible, and a concurrent :meth:`add_facts` batch is
        either fully visible or fully absent.  Row sets materialize
        lazily from the relations' insertion logs on first access, so
        snapshots of relations the reader never touches stay free.
        """
        return DatabaseSnapshot(self)

    def storage_info(self):
        """Storage descriptor: backend, per-relation rows and bytes.

        The ``storage`` block of the bench artifacts reads this to
        record which backend a measurement ran under and how many
        machine bytes the id columns hold.
        """
        relations = {}
        column_bytes = 0
        backend = "rows"
        with self._lock:
            for key, rel in sorted(self._relations.items()):
                info = rel.storage_info()
                relations["%s/%d" % key] = info
                if info["backend"] == "columnar":
                    backend = "columnar"
                    column_bytes += info["column_bytes"]
        return {
            "backend": backend,
            "relations": relations,
            "column_bytes": column_bytes,
            "interned_ids": len(self.intern_pool),
        }

    def to_text(self):
        """Serialize as program text; inverse of :meth:`from_text`.

        Relations and rows are emitted in sorted order, so the output
        is deterministic and diff-friendly.
        """
        from ..datalog.pretty import format_value

        lines = []
        for key in sorted(self._relations):
            relation = self._relations[key]
            for row in sorted(relation, key=repr):
                lines.append(
                    "%s(%s)."
                    % (key[0], ", ".join(format_value(v) for v in row))
                )
        return "\n".join(lines)

    def __contains__(self, key):
        return key in self._relations

    def __repr__(self):
        inner = ", ".join(
            "%s/%d:%d" % (k[0], k[1], len(rel))
            for k, rel in sorted(self._relations.items())
        )
        return "Database(%s)" % inner


class _PinnedRelation:
    """A lazy, read-only view of one relation frozen at a pinned epoch.

    Creation is O(1): it stores the source and the epoch to pin at.
    The first read access materializes a frozen
    :class:`~repro.engine.relation.Relation` from the source's
    insertion log (safe against concurrent appends — the log is
    append-only and the pin never reaches past its epoch) and delegates
    everything to it from then on.  Should two threads race the
    materialization, both build equivalent frozen relations and the
    last assignment wins — wasted work, never wrong answers.
    """

    __slots__ = ("name", "arity", "epoch", "_source", "_frozen")

    def __init__(self, source, epoch):
        self.name = source.name
        self.arity = source.arity
        #: The pinned epoch — reported to cache-key snapshots in place
        #: of the live relation's moving counter.
        self.epoch = epoch
        self._source = source
        self._frozen = None

    def _rel(self):
        rel = self._frozen
        if rel is None:
            rel = self._source.pinned(self.epoch)
            self._frozen = rel
        return rel

    def __len__(self):
        return len(self._rel())

    def __iter__(self):
        return iter(self._rel())

    def __contains__(self, row):
        return row in self._rel()

    def match(self, pattern, stats=None):
        return self._rel().match(pattern, stats)

    def lookup(self, positions, key, stats=None):
        return self._rel().lookup(positions, key, stats)

    def probe_index(self, positions, stats=None):
        return self._rel().probe_index(positions, stats)

    def probe_set(self):
        return self._rel().probe_set()

    def storage_info(self):
        return self._rel().storage_info()

    def ensure_index(self, positions, stats=None):
        return self._rel().ensure_index(positions, stats)

    def copy(self):
        """A mutable copy of the pinned contents."""
        return self._rel().copy()

    def __repr__(self):
        return "_PinnedRelation(%s/%d @ epoch %d)" % (
            self.name, self.arity, self.epoch
        )


class DatabaseSnapshot(Database):
    """An epoch-pinned, read-only view of a :class:`Database`.

    Behaves like the source database for every *read* — ``get`` /
    ``epochs`` / ``constants`` / ``copy`` and the full evaluation stack
    work unchanged — but its contents are frozen at the epochs observed
    when the snapshot was taken, so readers on other threads never see
    a half-applied mutation.  ``epoch_of``/``epochs`` report the pinned
    values, which keeps cross-query cache keys stable for as long as a
    service generation serves from one snapshot.

    Mutating a snapshot raises ``TypeError``; the interning pool is
    shared with the source (append-only, so canonical instances and ids
    agree across the pin).
    """

    def __init__(self, source):
        self._relations = {}
        self.intern_pool = source.intern_pool
        # A snapshot is a view of the source's history, so it shares the
        # source's lineage: cache entries written against the snapshot
        # stay valid for the live database (and vice versa) as long as
        # the epochs agree.
        self.lineage = source.lineage
        self._lock = threading.RLock()
        with source._lock:
            for key, rel in source._relations.items():
                self._relations[key] = _PinnedRelation(rel, rel.epoch)

    def snapshot(self):
        """Snapshots are immutable; re-snapshotting returns ``self``."""
        return self

    def add_fact(self, name, *values):
        raise TypeError(
            "DatabaseSnapshot is read-only; mutate the source database "
            "and take a new snapshot"
        )

    def add_facts(self, facts):
        raise TypeError(
            "DatabaseSnapshot is read-only; mutate the source database "
            "and take a new snapshot"
        )

    def relation(self, name, arity):
        """The pinned relation, or an empty stand-in (never creates)."""
        rel = self._relations.get((name, arity))
        if rel is None:
            return EmptyRelation(name, arity)
        return rel

    def __repr__(self):
        inner = ", ".join(
            "%s/%d@%d" % (k[0], k[1], rel.epoch)
            for k, rel in sorted(self._relations.items())
        )
        return "DatabaseSnapshot(%s)" % inner
