"""The extensional database: a mapping from predicate keys to relations.

Facts can be loaded three ways:

* programmatically with :meth:`Database.add_fact`;
* from an iterable of ``(name, values)`` pairs with :meth:`add_facts`;
* from program text containing ground facts via :meth:`Database.from_text`.

The database only ever stores plain Python values (strings, ints,
tuples, frozensets) — terms are normalized before insertion.
"""

from ..datalog.parser import parse_program
from .interning import InternPool
from .relation import EmptyRelation, Relation


class Database:
    """A collection of named base relations.

    Constant values are interned on insertion (see
    :mod:`repro.engine.interning`): equal values share one canonical
    instance, which makes the join engine's hash probes and equality
    checks cheap, and every constant gets a stable integer id available
    through :attr:`intern_pool` for encoded strategies.  Interning never
    changes what a relation *contains* — canonical instances are ``==``
    to the originals.
    """

    def __init__(self):
        self._relations = {}
        self.intern_pool = InternPool()

    @classmethod
    def from_facts(cls, facts):
        """Build a database from ``(predicate_name, values_tuple)`` pairs."""
        db = cls()
        db.add_facts(facts)
        return db

    @classmethod
    def from_text(cls, text):
        """Build a database from program text of ground facts."""
        program = parse_program(text)
        db = cls()
        for rule in program:
            if not rule.is_fact():
                raise ValueError(
                    "database text contains a rule: %r" % (rule,)
                )
            if not rule.head.is_ground():
                raise ValueError(
                    "database fact is not ground: %r" % (rule.head,)
                )
        for key, values in program.facts():
            db.relation(key[0], key[1]).add(
                db.intern_pool.intern_row(values)
            )
        return db

    def add_fact(self, name, *values):
        """Insert one fact, e.g. ``db.add_fact("up", "a", "b")``."""
        self.relation(name, len(values)).add(
            self.intern_pool.intern_row(values)
        )

    def add_facts(self, facts):
        intern_row = self.intern_pool.intern_row
        for name, values in facts:
            self.relation(name, len(values)).add(
                intern_row(tuple(values))
            )

    def relation(self, name, arity):
        """The relation for ``name/arity``, created empty on first use."""
        key = (name, arity)
        rel = self._relations.get(key)
        if rel is None:
            rel = Relation(name, arity)
            self._relations[key] = rel
        return rel

    def get(self, key):
        """The relation for ``key`` or an empty stand-in."""
        rel = self._relations.get(key)
        if rel is None:
            return EmptyRelation(key[0], key[1])
        return rel

    def epoch_of(self, key):
        """The mutation epoch of the relation for ``key`` (0 if absent).

        Relation epochs are monotone insertion counters (see
        :attr:`~repro.engine.relation.Relation.epoch`); a relation that
        does not exist yet reports epoch 0, the same value it will
        report right up until its first fact arrives.
        """
        rel = self._relations.get(key)
        return 0 if rel is None else rel.epoch

    def epochs(self, keys):
        """Epoch snapshot for ``keys``, in the given order.

        The returned tuple is the invalidation fingerprint used by the
        cross-query caches: two snapshots over the same keys are equal
        exactly when none of those relations gained a fact in between.
        """
        return tuple(self.epoch_of(key) for key in keys)

    def keys(self):
        return set(self._relations)

    def predicates(self):
        """Predicate keys that actually hold tuples."""
        return {k for k, rel in self._relations.items() if len(rel)}

    def total_facts(self):
        return sum(len(rel) for rel in self._relations.values())

    def constants(self, keys=None):
        """All constant values appearing in the given relations.

        With ``keys=None`` every relation contributes.  Used to bound
        the classical counting index for divergence detection.
        """
        values = set()
        relations = (
            self._relations.values()
            if keys is None
            else [self.get(key) for key in keys]
        )
        for rel in relations:
            for row in rel:
                values.update(row)
        return values

    def copy(self):
        clone = Database()
        # The pool is append-only, so sharing it keeps interned ids
        # stable across snapshots at zero copying cost.
        clone.intern_pool = self.intern_pool
        for key, rel in self._relations.items():
            clone._relations[key] = rel.copy()
        return clone

    def to_text(self):
        """Serialize as program text; inverse of :meth:`from_text`.

        Relations and rows are emitted in sorted order, so the output
        is deterministic and diff-friendly.
        """
        from ..datalog.pretty import format_value

        lines = []
        for key in sorted(self._relations):
            relation = self._relations[key]
            for row in sorted(relation, key=repr):
                lines.append(
                    "%s(%s)."
                    % (key[0], ", ".join(format_value(v) for v in row))
                )
        return "\n".join(lines)

    def __contains__(self, key):
        return key in self._relations

    def __repr__(self):
        inner = ", ".join(
            "%s/%d:%d" % (k[0], k[1], len(rel))
            for k, rel in sorted(self._relations.items())
        )
        return "Database(%s)" % inner
