"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the stages of
the pipeline: parsing, static analysis, rewriting applicability and runtime
evaluation.
"""


class ReproError(Exception):
    """Base class of all errors raised by this library."""


def _rebuild_error(cls, args, attrs):
    """Reconstruct a typed error without calling ``__init__``.

    Several errors in this hierarchy attach payloads (``stats``,
    ``elapsed``, ``report``) after construction or take keyword-only
    extras; the default exception reduction replays ``__init__`` with
    ``args`` alone and silently drops them.  Rebuilding from the
    instance dict preserves every payload across a pickle boundary —
    which the multiprocess executor relies on to ship worker failures
    back to the coordinator.
    """
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(attrs)
    return error


class ParseError(ReproError):
    """Raised when a program or query text cannot be parsed.

    Carries the source position so callers can point at the offending
    token.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        parts = []
        if line is not None:
            parts.append("line %d" % line)
        if column is not None:
            parts.append("column %d" % column)
        if parts:
            message = "%s: %s" % (", ".join(parts), message)
        super().__init__(message)


class SafetyError(ReproError):
    """Raised when a rule violates the safety (range restriction) rules."""


class AnalysisError(ReproError):
    """Raised for malformed programs detected during static analysis."""


class NotStratifiedError(AnalysisError):
    """Raised when a program uses negation inside a recursive clique."""


class RewritingError(ReproError):
    """Base class for errors raised by the rewriting algorithms."""


class NotApplicableError(RewritingError):
    """A rewriting method's preconditions are not met for this query.

    The message explains which precondition failed (e.g. a non-linear
    recursive rule for the counting method, or a cyclic left-part graph
    for the acyclic variants).
    """


class CountingDivergenceError(RewritingError):
    """The classical counting method diverged on cyclic data.

    The classical counting set is infinite when the graph of the left
    part of the recursive rule contains a cycle reachable from the query
    constant; the executor detects indexes exceeding the number of
    reachable nodes and raises this error instead of looping forever.
    """


class EvaluationError(ReproError):
    """Raised for runtime evaluation failures (e.g. unbound arithmetic).

    ``stats`` optionally carries the partial
    :class:`~repro.engine.instrumentation.EvalStats` accumulated before
    the failure; parallel workers attach it so the coordinator can fold
    partial work into the merged counters.  Instances round-trip through
    ``multiprocessing``'s pickle channel with the payload intact.
    """

    def __init__(self, message="", stats=None):
        super().__init__(message)
        self.stats = stats

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, self.__dict__))


class WorkerCrashError(EvaluationError):
    """A parallel pool worker died or its channel broke mid-evaluation.

    An :class:`EvaluationError`, so the resilient runner treats the
    crash like any other strategy failure and degrades to the next
    (serial) strategy in the chain.  Under a self-healing
    :class:`~repro.parallel.supervisor.RecoveryPolicy` the executor
    repairs the pool in place instead and this error is raised only
    when the policy forbids repair (``mode="serial"``).
    """


class WorkerHungError(WorkerCrashError):
    """A parallel pool worker stopped responding without dying.

    Raised when a worker's heartbeats go silent while its process is
    still alive, or when it overstays the coordinator's barrier
    deadline — the wedged-process and stuck-round cases a plain
    ``is_alive`` check can never see.  A :class:`WorkerCrashError`
    subtype: every handler that survives a dead worker survives a hung
    one the same way.
    """


class PlanViolationError(EvaluationError):
    """A parallel worker observed state the partition plan promised
    impossible.

    The canonical case is a derived value missing from the worker's
    intern pool: the planner guarantees all derivable values are known
    at pool start, so a miss means the plan mis-classified the program
    and the only safe move is to abandon the parallel attempt.
    """


class RecoveryExhaustedError(EvaluationError):
    """The self-healing executor ran out of repair allowance.

    Raised when worker failures outnumber
    :class:`~repro.parallel.supervisor.RecoveryPolicy`'s
    ``max_repairs`` (or no survivor remains to reassign onto).  Still
    an :class:`EvaluationError`: the resilient chain treats it as the
    signal to degrade to a serial strategy — serial restart is the
    *last* resort, after in-place repair has been tried.

    ``repairs`` carries the repair log (one dict per recovery event,
    crashes and repairs alike) and ``rounds`` how many fixpoint rounds
    completed before the executor gave up; both survive pickling.
    """

    def __init__(self, message="", stats=None, repairs=None, rounds=0):
        super().__init__(message, stats=stats)
        self.repairs = list(repairs) if repairs else []
        self.rounds = rounds


class BudgetExceededError(ReproError):
    """A resource budget was exhausted before evaluation converged.

    Deliberately *not* an :class:`EvaluationError`: the strategy
    executors translate engine-level ``EvaluationError``s into
    method-specific failures (divergence, for the counting family), and
    a budget firing must never be relabelled that way — it describes
    the caller's limits, not the method's applicability.

    ``stats`` carries the partial :class:`~repro.engine.instrumentation.
    EvalStats` accumulated up to the abort, so callers can see how far
    evaluation got; ``elapsed`` is the wall-clock seconds consumed.
    """

    def __init__(self, message, stats=None, elapsed=None):
        super().__init__(message)
        self.stats = stats
        self.elapsed = elapsed

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, self.__dict__))


class DeadlineExceeded(BudgetExceededError):
    """The wall-clock deadline of a :class:`ResourceBudget` passed."""


class FactBudgetExceeded(BudgetExceededError):
    """Evaluation derived more facts than the budget allows."""


class RoundBudgetExceeded(BudgetExceededError):
    """Evaluation ran more fixpoint rounds than the budget allows."""


class EvaluationCancelled(BudgetExceededError):
    """A cooperative :class:`CancellationToken` was triggered."""


class ServiceError(ReproError):
    """Base class for query-service failures (:mod:`repro.serve`)."""


class Overloaded(ServiceError):
    """Admission control rejected or shed a request.

    Raised *fast* at submit time when the service queue is at capacity
    (``reason='queue_full'``), and recorded as a request's outcome when
    its deadline expired while it sat in the queue, so it was shed
    without evaluation (``reason='expired'``).  Either way the service
    spent no join work on the request — callers are expected to back
    off and retry, not to treat this as a query failure.

    ``tenant`` names the admission lane that was full (``None`` on an
    untenanted service) and ``retry_after`` is a machine-readable
    backoff hint in seconds, derived from the lane's queue depth and
    the service's recent per-request service time — clients that honour
    it come back when a slot is plausibly free instead of hammering.
    """

    def __init__(self, message, reason="queue_full", tenant=None,
                 retry_after=None):
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant
        self.retry_after = retry_after


class QuotaExceeded(ServiceError):
    """A tenant's quota rejected a request at admission.

    Unlike :class:`Overloaded` (the *service* is out of room), this is
    the *tenant* being out of allowance — its token-bucket request
    rate (``resource='rate'``), concurrent-slot cap
    (``resource='concurrency'``), or one of its cumulative resource
    pools (``resource='facts'`` / ``'rounds'`` / ``'seconds'``) is
    exhausted.  Other tenants are unaffected by construction.

    ``retry_after`` is the seconds until the violated quota plausibly
    admits again (token-bucket refill time, or the pool's refill to a
    positive balance); the request was never queued, so backing off
    for that long and resubmitting is the intended client behaviour.
    """

    def __init__(self, message, tenant=None, resource="rate",
                 retry_after=None):
        super().__init__(message)
        self.tenant = tenant
        self.resource = resource
        self.retry_after = retry_after


class UnknownFormError(ServiceError):
    """A request named a query form the registry does not hold.

    Raised at submit time (the request never counts as submitted) and
    by :meth:`~repro.tenancy.forms.FormRegistry.get` for unregistered
    names or versions.
    """


class ServiceClosed(ServiceError):
    """A request was submitted to a draining or shut-down service."""


class CircuitOpenError(ServiceError):
    """A strategy was skipped because its circuit breaker is open.

    Recorded on the skipped :class:`~repro.exec.resilient.AttemptRecord`
    (the chain degrades past it like any other failure) and raised to
    the caller only when *no* strategy was allowed to run.
    """


class DurabilityError(ReproError):
    """Base class for crash-consistency failures (:mod:`repro.durability`)."""


class WalError(DurabilityError):
    """The write-ahead log is unusable (failed handle, bad header,
    unloggable batch)."""


class CheckpointError(DurabilityError):
    """A checkpoint file is corrupt or structurally invalid.

    Recovery treats this as a *soft* failure: the corrupt checkpoint is
    skipped and the previous one (plus a longer WAL replay) is used
    instead.  Only when no usable state remains does recovery surface a
    :class:`RecoveryError`.
    """


class RecoveryError(DurabilityError):
    """Recovered state contradicts the write-ahead log.

    Raised when replaying a WAL record finds the database at an epoch
    other than the one the record was stamped with — the on-disk files
    describe two different histories, and continuing would silently
    serve wrong answers.
    """


class ResilienceExhaustedError(ReproError):
    """Every strategy in a resilient fallback chain failed.

    Carries the :class:`~repro.exec.resilient.ExecutionReport` whose
    ``attempts`` list the per-strategy failures.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report
