"""Wavefront evaluation of the node-keyed counting program (§3.4/§4).

The paper's per-node counting program is *weakly stratified*: its
counting rule negates its own predicate,

    c_p(X1, <(R, C, Id)>)  <-  Id : c_p(X, _), ahead(X, X1, C, R),
                               not (ahead(W, X1, _, _), W != X,
                                    not c_p(W, _)).

meaning a node enters the counting set only once **all** of its ahead
predecessors have entered it — so each node receives a single
identifier carrying the full set of predecessor triples.  Theorem 2(1)
states the rewritten program is weakly stratified; this module
implements the corresponding evaluation discipline directly: a
wavefront (Kahn-style) pass over the ahead-arc DAG that fires the rule
for a node exactly when the negated subgoal has become definitively
false.

The result is, by construction, the same model the Bushy-Depth-First
fixpoint computes — and the same table
:class:`~repro.exec.counting_engine.CountingEngine` builds during its
DFS.  ``tests/test_weak_stratification.py`` checks that agreement on
the paper's examples and on random graphs, which is the executable
content of Theorem 2(1) in this reproduction.
"""

from ..graph.dfs import classify_arcs
from .counting_engine import SOURCE_TRIPLE, CountingTable


def wavefront_counting_table(classification):
    """Build the per-node counting table by weakly stratified rounds.

    ``classification`` is the DFS arc classification of the reachable
    left graph.  Nodes are admitted in rounds: a node fires when every
    ahead predecessor has already been admitted (the negation in the
    counting rule is then definitively false).  Back arcs never gate
    admission — they are re-attached afterwards, exactly like the
    paper's ``cycle`` rules.

    Returns a :class:`CountingTable`; row ids reflect admission order.
    """
    ahead_preds = classification.ahead_predecessors()
    back_preds = classification.back_predecessors()
    table = CountingTable()
    source = classification.source

    # Admission: Kahn topological order over ahead arcs.
    remaining = {
        node: len(arcs) for node, arcs in ahead_preds.items()
    }
    admitted = []
    ready = [source]
    seen = {source}
    out_arcs = {}
    for arc in classification.ahead:
        out_arcs.setdefault(arc.source, []).append(arc)
    while ready:
        # Each pop is one firing of the weakly stratified rule: the
        # node's negated subgoal just became false.
        node = ready.pop(0)
        admitted.append(node)
        for arc in out_arcs.get(node, ()):
            remaining[arc.target] -= 1
            if remaining[arc.target] == 0 and arc.target not in seen:
                seen.add(arc.target)
                ready.append(arc.target)

    if len(admitted) != len(classification.order):
        # Cannot happen: ahead arcs form a DAG (tests assert this).
        raise AssertionError(
            "wavefront did not admit every reachable node"
        )

    source_row = table.row_for(*source)
    table.source_id = source_row.id
    source_row.triples.append(SOURCE_TRIPLE)
    for node in admitted:
        table.row_for(*node)
    for node in admitted:
        row = table.row_for(*node)
        for arc in ahead_preds.get(node, ()):
            label, shared = arc.label
            row.triples.append(
                (label, shared, table.row_for(*arc.source).id)
            )
            table.ahead_arc_count += 1
    # Cycle rules: back arcs join after the counting set is complete.
    for node, arcs in back_preds.items():
        row = table.row_for(*node)
        for arc in arcs:
            label, shared = arc.label
            row.triples.append(
                (label, shared, table.row_for(*arc.source).id)
            )
            table.back_arc_count += 1
    return table


def tables_equivalent(left, right):
    """Structural equality of two counting tables up to id renaming.

    Ids are local to each construction (DFS discovery order vs
    wavefront admission order); equivalence means: same node set, and
    for every node the same multiset of (rule, shared, predecessor
    *node*) in-triples.
    """
    def normalize(table):
        node_of = {
            row.id: (row.pred, row.values) for row in table.rows
        }
        normalized = {}
        for row in table.rows:
            triples = sorted(
                (label, shared,
                 None if prev is None else node_of[prev])
                for label, shared, prev in row.triples
            )
            normalized[(row.pred, row.values)] = triples
        return normalized

    return normalize(left) == normalize(right)


def weakly_stratified_counting_table(source, successors):
    """Classify arcs from ``source`` and build the wavefront table."""
    return wavefront_counting_table(classify_arcs(source, successors))
