"""The magic-counting hybrid of Saccà & Zaniolo [16].

Section 4 of the paper cites two earlier ways out of the counting
method's divergence on cyclic data: extending counting itself (which
became Algorithm 2) and *magic counting* — "based on the combination
of the magic-set and the counting method".  This module implements the
hybrid as an additional comparison strategy:

* the reachable left graph is split into the **non-recurring** nodes
  ``A`` (finitely many source paths; the subgraph they induce is
  acyclic) and the **recurring** nodes ``R`` (on or below a cycle —
  §2's node classes);
* the recursive predicate restricted to ``R`` is evaluated by the
  magic-set method: seeds are the *boundary* nodes (targets in ``R``
  of arcs leaving ``A``, or the source itself when it is recurring),
  and a standard magic program runs to a fixpoint — no level
  synchronization, cycles are harmless;
* the ``A`` part runs the pointer-counting unwinding: exit rules seed
  states at ``A`` rows as usual, and each boundary arc contributes
  "virtual exit" states by applying its rule's right part to the
  magic-computed answers at the boundary node.

When the data is acyclic ``R`` is empty and the method degenerates to
the §3.4 pointer implementation; when the source itself is recurring
it degenerates to pure magic.  Either way the answers equal the
original query's (tested against naive evaluation on the paper's
examples and on random cyclic data).
"""

from ..datalog.atoms import Atom
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..engine import faults
from ..engine.instrumentation import EvalStats
from ..engine.relation import WILDCARD
from ..engine.seminaive import SemiNaiveEngine
from ..graph.dfs import classify_arcs
from ..graph.properties import strongly_connected_components
from .counting_engine import SOURCE_TRIPLE, CountingEngine, CountingTable

#: Prefixes of the hybrid's internal predicates (kept out of the way
#: of user predicates and of the other rewritings).
MAGIC_PART_PREFIX = "mcm_"
ANSWER_PART_PREFIX = "mca_"


class _ResolverDatabase:
    """Duck-typed database over a ``key -> relation`` lookup."""

    def __init__(self, get_relation):
        self._get = get_relation

    def get(self, key):
        return self._get(key)


def recurring_nodes(classification):
    """Nodes of the reachable left graph with infinitely many paths.

    A node is recurring iff it lies on a cycle or is reachable from
    one; cycles are SCCs of size > 1 plus self-loops.
    """
    adjacency = {}
    for arc in classification.arcs:
        adjacency.setdefault(arc.source, set()).add(arc.target)
    sccs = strongly_connected_components(
        adjacency, nodes=set(classification.order)
    )
    by_component = {}
    for node, component in sccs.items():
        by_component.setdefault(component, []).append(node)
    cyclic = set()
    for component, members in by_component.items():
        if len(members) > 1:
            cyclic.update(members)
    for node, targets in adjacency.items():
        if node in targets:
            cyclic.add(node)
    recurring = set()
    stack = list(cyclic)
    while stack:
        node = stack.pop()
        if node in recurring:
            continue
        recurring.add(node)
        stack.extend(adjacency.get(node, ()))
    return recurring


class MagicCountingEngine:
    """Hybrid evaluator; same interface as :class:`CountingEngine`."""

    def __init__(self, canonical, goal_key, source_values, get_relation,
                 stats=None, budget=None):
        self.canonical = canonical
        self.goal_key = goal_key
        self.source_values = tuple(source_values)
        self.get_relation = get_relation
        self.stats = stats if stats is not None else EvalStats()
        #: Optional :class:`~repro.engine.guard.ResourceBudget`; shared
        #: with the embedded pointer engine and the magic-part
        #: semi-naive run, and checked per frontier pop here.
        self.budget = budget
        self._pointer = CountingEngine(
            canonical, goal_key, source_values, get_relation,
            stats=self.stats, budget=budget,
        )
        self.table = None
        self.recurring = frozenset()
        self.magic_relations = None
        self._state_count = 0

    # -- structure ---------------------------------------------------

    def _classify(self):
        source = (self.goal_key, self.source_values)
        return classify_arcs(source, self._pointer._successors)

    def _magic_part_program(self, boundary_seeds):
        """Magic program computing the recursive predicate over R.

        ``boundary_seeds`` maps predicate key -> set of bound-value
        tuples (the magic seeds).  Magic rules follow the recursive
        clique's left parts; answer rules are the canonical exit and
        recursive rules guarded by the magic predicate.
        """
        rules = []
        for key, seeds in boundary_seeds.items():
            name = MAGIC_PART_PREFIX + key[0]
            for values in sorted(seeds, key=repr):
                rules.append(
                    Rule(Atom(name, tuple(Constant(v) for v in values)))
                )
        for rule in self.canonical.recursive_rules:
            if rule.is_left_linear_shape():
                continue
            magic_head = Atom(
                MAGIC_PART_PREFIX + rule.rec_key[0],
                tuple(Variable(v) for v in rule.rec_bound_vars),
            )
            guard = Atom(
                MAGIC_PART_PREFIX + rule.head_key[0],
                tuple(Variable(v) for v in rule.bound_vars),
            )
            rules.append(
                Rule(magic_head, (guard,) + rule.left,
                     label="m_%s" % rule.label)
            )
        for exit_rule in self.canonical.exit_rules:
            guard = Atom(
                MAGIC_PART_PREFIX + exit_rule.head_key[0],
                tuple(Variable(v) for v in exit_rule.bound_vars),
            )
            head = Atom(
                ANSWER_PART_PREFIX + exit_rule.head_key[0],
                tuple(Variable(v) for v in exit_rule.bound_vars)
                + tuple(Variable(v) for v in exit_rule.free_vars),
            )
            rules.append(
                Rule(head, (guard,) + exit_rule.body,
                     label=exit_rule.label)
            )
        for rule in self.canonical.recursive_rules:
            guard = Atom(
                MAGIC_PART_PREFIX + rule.head_key[0],
                tuple(Variable(v) for v in rule.bound_vars),
            )
            rec_answer = Atom(
                ANSWER_PART_PREFIX + rule.rec_key[0],
                tuple(Variable(v) for v in rule.rec_bound_vars)
                + tuple(Variable(v) for v in rule.rec_free_vars),
            )
            head = Atom(
                ANSWER_PART_PREFIX + rule.head_key[0],
                tuple(Variable(v) for v in rule.bound_vars)
                + tuple(Variable(v) for v in rule.free_vars),
            )
            rules.append(
                Rule(
                    head,
                    (guard,) + rule.left + (rec_answer,) + rule.right,
                    label=rule.label,
                )
            )
        return Program(rules)

    # -- phases -------------------------------------------------------

    def run(self):
        classification = self._classify()
        self.recurring = frozenset(recurring_nodes(classification))
        source = (self.goal_key, self.source_values)

        # Boundary seeds: recurring targets of arcs from the acyclic
        # part, plus the source itself when recurring.
        boundary = {}
        for arc in classification.arcs:
            if arc.source not in self.recurring and \
                    arc.target in self.recurring:
                pred, values = arc.target
                boundary.setdefault(pred, set()).add(values)
        if source in self.recurring:
            boundary.setdefault(source[0], set()).add(source[1])

        self.magic_relations = {}
        if boundary:
            program = self._magic_part_program(boundary)
            engine = SemiNaiveEngine(
                program,
                _ResolverDatabase(self.get_relation),
                stats=self.stats,
                budget=self.budget,
            )
            self.magic_relations = engine.run()

        if source in self.recurring:
            # Pure magic: read the answers straight off.
            relation = self.magic_relations.get(
                (ANSWER_PART_PREFIX + source[0][0],
                 len(source[1]) + self._free_arity(source[0]))
            )
            answers = set()
            if relation is not None:
                width = len(source[1])
                for row in relation:
                    if row[:width] == source[1]:
                        answers.add(row[width:])
            return frozenset(answers)

        # Counting table over the acyclic (non-recurring) part.
        table = CountingTable()
        source_row = table.row_for(*source)
        table.source_id = source_row.id
        source_row.triples.append(SOURCE_TRIPLE)
        for node in classification.order:
            if node not in self.recurring:
                table.row_for(*node)
        boundary_arcs = []
        for arc in classification.arcs:
            if arc.source in self.recurring:
                continue
            if arc.target in self.recurring:
                boundary_arcs.append(arc)
                continue
            label, shared = arc.label
            table.row_for(*arc.target).triples.append(
                (label, shared, table.row_for(*arc.source).id)
            )
            table.ahead_arc_count += 1
        self.table = table
        self._pointer.table = table

        seen = set()
        frontier = []

        def push(state):
            if state in seen:
                self.stats.facts_duplicate += 1
                return
            seen.add(state)
            self.stats.facts_derived += 1
            frontier.append(state)

        for state, _label in self._pointer._exit_states():
            push(state)
        for state, _label in self._boundary_states(boundary_arcs, table):
            push(state)

        answers = set()
        index = 0
        while index < len(frontier):
            if self.budget is not None:
                self.budget.check(self.stats)
            faults.fire("unwind", self.stats)
            state = frontier[index]
            index += 1
            if state[2] == table.source_id and state[0] == self.goal_key:
                answers.add(state[1])
            for producer in (self._pointer._unwind,
                             self._pointer._apply_left_linear):
                for new_state, _label in producer(state):
                    push(new_state)
        self._state_count = len(seen)
        return frozenset(answers)

    def _free_arity(self, key):
        for rule in self.canonical.exit_rules:
            if rule.head_key == key:
                return len(rule.free_vars)
        for rule in self.canonical.recursive_rules:
            if rule.head_key == key:
                return len(rule.free_vars)
            if rule.rec_key == key:
                return len(rule.rec_free_vars)
        raise KeyError(key)

    def _boundary_states(self, boundary_arcs, table):
        """Virtual exits: magic answers at boundary nodes, pulled one
        right-part application back into the acyclic part."""
        rules_by_label = self._pointer.rules_by_label
        for arc in boundary_arcs:
            label, shared = arc.label
            rule = rules_by_label[label]
            pred, target_values = arc.target
            answer_key = (
                ANSWER_PART_PREFIX + pred[0],
                len(target_values) + self._free_arity(pred),
            )
            relation = self.magic_relations.get(answer_key)
            if relation is None:
                continue
            row_id = table.row_for(*arc.source).id
            source_pred, source_values = arc.source
            width = len(target_values)
            pattern = tuple(target_values) + (WILDCARD,) * (
                relation.arity - width
            )
            # Reuse the pointer engine's compiled unwind query (bound
            # to its resolver, which is this engine's too) — the
            # binding order (rec_free, shared, bound, rec_bound) is
            # identical to the triple-consuming pop step.
            query = self._pointer._query(
                "unwind", rule, rule.right,
                rule.rec_free_vars + rule.shared_vars + rule.bound_vars
                + rule.rec_bound_vars,
                rule.free_vars,
            )
            for row in relation.match(pattern, self.stats):
                self.stats.tuples_scanned += 1
                y1_values = row[width:]
                self.stats.rule_firings += 1
                for out in query(
                    y1_values + shared + source_values + target_values,
                    self.stats,
                ):
                    yield (rule.head_key, out, row_id), rule.label

    @property
    def state_count(self):
        return self._state_count
